//! Heterogeneous fleet scheduling with cost-predicted placement.
//!
//! The paper compiles one program for one device; a rendering farm or a
//! cloud tier runs the same program across a *fleet* of unlike devices —
//! an iGPU next to an HPC part — where the right home for a launch depends
//! on both the launch (tiny inputs waste a wide device's launch overhead,
//! huge inputs starve on a narrow one) and the moment (the best device may
//! already be buried in work). This module extends the kernel-management
//! unit across devices: one [`KernelManager`] per device, each with its
//! own recalibrating variant table, and a [`Fleet`] scheduler that places
//! every launch on the node minimizing
//!
//! ```text
//! corrected_cost(x)            // analytical model × measured/predicted EWMA
//!   + queue.backlog_us()       // predicted work already waiting there
//! ```
//!
//! — the same "model, corrected by measurement" signal the single-device
//! KMU recalibrates boundaries with, reused as a placement oracle. Two
//! baselines calibrate the benefit: round-robin (ignores everything) and
//! static affinity (best *offline* model cost, ignoring both measured
//! corrections and backlog).
//!
//! What is and is not shared across the fleet: nothing learned crosses
//! devices. Each node's boundaries, histograms and breakers are keyed to
//! its own device (a learned state's [`crate::ArtifactKey`] embeds the
//! device fingerprint, so cross-device imports fail closed); only the
//! telemetry *rollup* ([`TelemetrySnapshot::fleet_rollup`]) aggregates.
//!
//! The fleet is also where "few fit most" variant-set pruning
//! ([`perfmodel::prune_variant_set`]) pays off: per-device variant tables
//! multiply with fleet size, and [`Fleet::prune`] shrinks each node's
//! table to the smallest subset within a stated overhead bound of the full
//! table — bounding plan bytes, artifact footprint, and breaker surface
//! fleet-wide.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use gpu_sim::{DeviceQueue, DeviceSpec};
use perfmodel::{prune_variant_set, PruneSelection};
use streamir::error::{Error, Result};
use streamir::graph::Program;

use crate::kmu::KernelManager;
use crate::plan::{compile, InputAxis};
use crate::runtime::{ExecutionReport, RunOptions, StateBinding};
use crate::telemetry::TelemetrySnapshot;

/// How a [`Fleet`] chooses the device for each launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Minimize EWMA-corrected predicted cost **plus** the predicted
    /// backlog already queued on the node — the adaptive policy.
    CostPredicted,
    /// Cycle through nodes in order, ignoring cost and backlog — the
    /// "fair share" baseline.
    RoundRobin,
    /// Pin each launch to the node whose *offline* analytical model is
    /// cheapest for that input, ignoring measured corrections and backlog
    /// — what a static ahead-of-time placement would do.
    StaticAffinity,
}

/// One device of the fleet: its kernel-management unit plus the
/// outstanding-work ledger the scheduler reads.
#[derive(Debug)]
pub struct FleetNode {
    name: String,
    manager: KernelManager,
    queue: Arc<DeviceQueue>,
}

impl FleetNode {
    /// Wrap an existing manager as a fleet node. The name is free-form
    /// (defaults to the device's marketing name via [`Fleet::compile`]).
    pub fn new(name: impl Into<String>, manager: KernelManager) -> FleetNode {
        FleetNode::with_queue(name, manager, Arc::new(DeviceQueue::new()))
    }

    /// Wrap a manager as a node over an externally owned backlog ledger.
    /// Several nodes (across several fleets) sharing one [`DeviceQueue`]
    /// model independent schedulers contending for the *same physical
    /// device*: each fleet's placement sees work every other fleet has
    /// admitted there. The serving plane uses this to give each tenant a
    /// private fleet (isolated managers, breakers, learned state) over
    /// shared hardware.
    pub fn with_queue(
        name: impl Into<String>,
        manager: KernelManager,
        queue: Arc<DeviceQueue>,
    ) -> FleetNode {
        FleetNode {
            name: name.into(),
            manager,
            queue,
        }
    }

    /// The node's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's kernel-management unit.
    pub fn manager(&self) -> &KernelManager {
        &self.manager
    }

    /// The node's outstanding-work ledger.
    pub fn queue(&self) -> &DeviceQueue {
        &self.queue
    }

    /// A shareable handle to the node's ledger, for building another
    /// node over the same physical device (see [`FleetNode::with_queue`]).
    pub fn queue_handle(&self) -> Arc<DeviceQueue> {
        Arc::clone(&self.queue)
    }

    /// Offline model cost for `x` on this node: the planner's uncorrected
    /// prediction for the variant the *static* table picks. `None` when the
    /// node cannot price `x`.
    fn static_cost(&self, x: i64) -> Option<f64> {
        let program = self.manager.program();
        let (v, _) = program.try_variant_for(x).ok()?;
        program.predicted_time_us(x, v)
    }
}

/// One unit of work for [`Fleet::dispatch_concurrent`]: an axis value plus
/// the borrowed input/state it runs over.
#[derive(Debug, Clone, Copy)]
pub struct FleetJob<'a> {
    /// Input-axis value (e.g. total input size) the launch is priced by.
    pub x: i64,
    /// Input stream, at least as long as the program's per-firing pop.
    pub input: &'a [f32],
    /// Stateful-actor bindings, usually empty.
    pub state: &'a [StateBinding],
}

/// Where one launch was placed and at what predicted price.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// Index of the chosen node in [`Fleet::nodes`].
    pub node: usize,
    /// EWMA-corrected predicted device time (µs) charged to the node's
    /// backlog until the launch completes.
    pub predicted_us: f64,
}

/// One node's outcome from a [`Fleet::prune`] pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneOutcome {
    /// The node's name.
    pub node: String,
    /// Which variants survived and the overhead bound they achieve.
    pub selection: PruneSelection,
    /// Variant count before pruning.
    pub full_variants: usize,
    /// Full-table plan artifact size in bytes (encoded, framing included).
    pub full_bytes: usize,
    /// Pruned-table plan artifact size in bytes.
    pub pruned_bytes: usize,
}

/// A set of heterogeneous devices fronted by one placement scheduler.
#[derive(Debug)]
pub struct Fleet {
    nodes: Vec<FleetNode>,
    rr_cursor: AtomicUsize,
    shared_artifact_store: bool,
}

impl Fleet {
    /// Assemble a fleet from prebuilt nodes. Set `shared_artifact_store`
    /// when the nodes' managers share one [`crate::ArtifactStore`] — it
    /// controls double-count avoidance in [`Fleet::telemetry`]
    /// (store-wide artifact counters are taken once, not once per node).
    pub fn new(nodes: Vec<FleetNode>, shared_artifact_store: bool) -> Fleet {
        Fleet {
            nodes,
            rr_cursor: AtomicUsize::new(0),
            shared_artifact_store,
        }
    }

    /// Compile `program` over `axis` once per device and stand up one
    /// node per device, named after it. Each node gets a private manager;
    /// no artifact store is attached (use [`Fleet::new`] with
    /// [`KernelManager::with_artifacts`] for warm-started fleets).
    ///
    /// # Errors
    ///
    /// The first device whose compilation fails aborts fleet construction.
    pub fn compile(program: &Program, axis: &InputAxis, devices: &[DeviceSpec]) -> Result<Fleet> {
        let nodes = devices
            .iter()
            .map(|d| {
                let compiled = compile(program, d, axis)?;
                Ok(FleetNode::new(d.name.clone(), KernelManager::new(compiled)))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Fleet::new(nodes, false))
    }

    /// The fleet's nodes, in placement-index order.
    pub fn nodes(&self) -> &[FleetNode] {
        &self.nodes
    }

    /// Decide where axis value `x` should run under `policy`, without
    /// launching or charging anything. Nodes that cannot price `x` (input
    /// outside their compiled range, empty table) are skipped under every
    /// policy.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyVariantTable`] for an empty fleet; when *no* node can
    /// price `x`, the last node's selection error propagates.
    pub fn place(&self, x: i64, policy: PlacementPolicy) -> Result<Placement> {
        if self.nodes.is_empty() {
            return Err(Error::EmptyVariantTable);
        }
        // Every policy charges the node's corrected cost to its backlog —
        // the ledger tracks the scheduler's honest estimate even when the
        // policy ignored it for the placement decision.
        let mut priced: Vec<(usize, f64)> = Vec::with_capacity(self.nodes.len());
        let mut last_err = None;
        for (i, node) in self.nodes.iter().enumerate() {
            match node.manager.corrected_cost(x) {
                Ok(c) => priced.push((i, c)),
                Err(e) => last_err = Some(e),
            }
        }
        if priced.is_empty() {
            return Err(last_err.unwrap_or(Error::EmptyVariantTable));
        }
        let (node, predicted_us) = match policy {
            PlacementPolicy::CostPredicted => priced
                .iter()
                .copied()
                .min_by(|a, b| {
                    let ka = a.1 + self.nodes[a.0].queue.backlog_us();
                    let kb = b.1 + self.nodes[b.0].queue.backlog_us();
                    ka.total_cmp(&kb)
                })
                .expect("priced is non-empty"),
            PlacementPolicy::RoundRobin => {
                let turn = self.rr_cursor.fetch_add(1, Ordering::Relaxed);
                priced[turn % priced.len()]
            }
            PlacementPolicy::StaticAffinity => priced
                .iter()
                .copied()
                .min_by(|a, b| {
                    let ka = self.nodes[a.0].static_cost(x).unwrap_or(f64::INFINITY);
                    let kb = self.nodes[b.0].static_cost(x).unwrap_or(f64::INFINITY);
                    ka.total_cmp(&kb)
                })
                .expect("priced is non-empty"),
        };
        Ok(Placement { node, predicted_us })
    }

    /// Place one launch under `policy` **and charge the chosen node's
    /// backlog** with the predicted cost. The launch is now outstanding:
    /// subsequent placements see it as queued work, which is what lets
    /// cost-predicted placement spread a burst of requests instead of
    /// piling them all on the momentarily-cheapest device. Pair every
    /// `admit` with exactly one [`Fleet::settle`].
    ///
    /// # Errors
    ///
    /// The errors of [`Fleet::place`]; nothing is charged on error.
    pub fn admit(&self, x: i64, policy: PlacementPolicy) -> Result<Placement> {
        let placement = self.place(x, policy)?;
        self.nodes[placement.node]
            .queue
            .enqueue(placement.predicted_us);
        Ok(placement)
    }

    /// Run an admitted launch on its placed node (variant selection,
    /// recalibration, resilience all apply) and settle its backlog ticket
    /// against the measured time. Failed launches settle with zero busy
    /// time — the ledger never leaks backlog.
    ///
    /// # Errors
    ///
    /// Whatever the node's [`KernelManager::run`] returns; the ticket is
    /// settled either way.
    pub fn settle(
        &self,
        placement: Placement,
        x: i64,
        input: &[f32],
        state: &[StateBinding],
        opts: RunOptions<'_>,
    ) -> Result<ExecutionReport> {
        let node = &self.nodes[placement.node];
        match node.manager.run(x, input, state, opts) {
            Ok(report) => {
                node.queue.complete(placement.predicted_us, report.time_us);
                Ok(report)
            }
            Err(e) => {
                node.queue.complete(placement.predicted_us, 0.0);
                Err(e)
            }
        }
    }

    /// [`Fleet::admit`] + [`Fleet::settle`] back to back — the one-at-a-time
    /// path for callers with no burst to pack.
    ///
    /// # Errors
    ///
    /// Placement errors ([`Fleet::place`]) and whatever the chosen node's
    /// [`KernelManager::run`] returns.
    pub fn dispatch(
        &self,
        x: i64,
        input: &[f32],
        state: &[StateBinding],
        opts: RunOptions<'_>,
        policy: PlacementPolicy,
    ) -> Result<(Placement, ExecutionReport)> {
        let placement = self.admit(x, policy)?;
        let report = self.settle(placement, x, input, state, opts)?;
        Ok((placement, report))
    }

    /// Admit a whole burst, then settle it with **one worker thread per
    /// node**, each draining its node's share in admission order. Admission
    /// happens up front on the caller's thread so every placement sees the
    /// backlog the earlier jobs charged (the same burst-spreading behaviour
    /// as serial [`Fleet::admit`]); settlement is truly concurrent across
    /// nodes, the way distinct devices really overlap.
    ///
    /// Returns one result per job, in job order: `Err` is either that job's
    /// admission error (nothing was charged) or its node's
    /// [`KernelManager::run`] failure (ticket settled regardless). A
    /// poisoned result slot — a settle worker panicking mid-job — also
    /// settles as the panic unwinds past [`Fleet::settle`]'s completion
    /// handling only if the panic happened inside the manager; panics
    /// propagate out of this call either way.
    pub fn dispatch_concurrent(
        &self,
        jobs: &[FleetJob<'_>],
        opts: RunOptions<'_>,
        policy: PlacementPolicy,
    ) -> Vec<Result<(Placement, ExecutionReport)>> {
        let placements: Vec<Result<Placement>> =
            jobs.iter().map(|j| self.admit(j.x, policy)).collect();
        let mut per_node: Vec<Vec<usize>> = vec![Vec::new(); self.nodes.len()];
        for (i, p) in placements.iter().enumerate() {
            if let Ok(p) = p {
                per_node[p.node].push(i);
            }
        }
        type Slot = Mutex<Option<Result<(Placement, ExecutionReport)>>>;
        let slots: Vec<Slot> = jobs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for mine in &per_node {
                if mine.is_empty() {
                    continue;
                }
                let (placements, slots) = (&placements, &slots);
                scope.spawn(move || {
                    for &i in mine {
                        let p = placements[i].as_ref().copied().expect("grouped as Ok");
                        let job = &jobs[i];
                        let out = self
                            .settle(p, job.x, job.input, job.state, opts)
                            .map(|report| (p, report));
                        *slots[i].lock().expect("result slot poisoned") = Some(out);
                    }
                });
            }
        });
        placements
            .into_iter()
            .zip(slots)
            .map(|(admitted, slot)| match admitted {
                Err(e) => Err(e),
                Ok(_) => slot
                    .into_inner()
                    .expect("result slot poisoned")
                    .expect("admitted job settled by its node worker"),
            })
            .collect()
    }

    /// Fleet makespan: the busiest node's accumulated measured device time
    /// (µs). With every node started at zero this is the simulated
    /// wall-clock a fixed workload took — the figure throughput numbers
    /// divide by.
    pub fn makespan_us(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.queue.busy_us())
            .fold(0.0, f64::max)
    }

    /// Total measured device time across the fleet (µs) — makespan times
    /// node count when perfectly balanced; the gap between the two is the
    /// imbalance a placement policy left on the table.
    pub fn total_busy_us(&self) -> f64 {
        self.nodes.iter().map(|n| n.queue.busy_us()).sum()
    }

    /// One fleet-wide telemetry view: the latest snapshot of every node's
    /// manager, rolled up with
    /// [`TelemetrySnapshot::fleet_rollup`] under this fleet's
    /// artifact-store sharing mode. `None` for an empty fleet.
    pub fn telemetry(&self) -> Option<TelemetrySnapshot> {
        let snaps: Vec<TelemetrySnapshot> =
            self.nodes.iter().map(|n| n.manager.telemetry()).collect();
        TelemetrySnapshot::fleet_rollup(&snaps, self.shared_artifact_store)
    }

    /// "Few fit most" pass: shrink every node's variant table to the
    /// smallest subset whose predicted cost stays within `tolerance`
    /// (fractional) of the full table at every one of `samples` axis
    /// points. Cost curves are scaled by each variant's measured/predicted
    /// EWMA ratio first, so a device whose measurements contradict the
    /// model prunes against *corrected* curves.
    ///
    /// Nodes are rebuilt on their pruned programs with fresh managers:
    /// learned boundaries/histograms are indexed by full-table variant
    /// numbers and do not transfer (recalibration re-learns on the smaller
    /// table). No artifact store is re-attached — a pruned table keeps its
    /// parent's content hash, and persisting it would clobber the full
    /// plan's entry.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::CompiledProgram::prune_to`] failures; the fleet
    /// is unchanged on error.
    pub fn prune(&mut self, samples: usize, tolerance: f64) -> Result<Vec<PruneOutcome>> {
        let mut rebuilt = Vec::with_capacity(self.nodes.len());
        let mut outcomes = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let program = node.manager.program();
            let ratios: Vec<f64> = node
                .manager
                .export_learned()
                .histograms
                .iter()
                .map(|h| h.ratio)
                .collect();
            let (_, costs) =
                program.sample_cost_matrix(samples, |v| ratios.get(v).copied().unwrap_or(1.0));
            let selection = prune_variant_set(&costs, tolerance);
            let pruned = program.prune_to(&selection.kept)?;
            outcomes.push(PruneOutcome {
                node: node.name.clone(),
                selection,
                full_variants: program.variant_count(),
                full_bytes: program.export_plan().byte_size(),
                pruned_bytes: pruned.export_plan().byte_size(),
            });
            rebuilt.push(FleetNode::new(
                node.name.clone(),
                KernelManager::new(pruned),
            ));
        }
        self.nodes = rebuilt;
        Ok(outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::ExecMode;
    use streamir::parse::parse_program;

    fn program() -> Program {
        // Work scales with the axis (pop N): predictions genuinely differ
        // across input sizes, which placement tests depend on.
        parse_program(
            r#"pipeline Sum(N) {
                actor Sum(pop N, push 1) {
                    acc = 0.0;
                    for i in 0..N { acc = acc + pop(); }
                    push(acc);
                }
            }"#,
        )
        .unwrap()
    }

    fn fleet() -> Fleet {
        let axis = InputAxis::total_size("N", 1 << 6, 1 << 18);
        Fleet::compile(
            &program(),
            &axis,
            &[DeviceSpec::igpu_small(), DeviceSpec::hpc_wide()],
        )
        .unwrap()
    }

    fn opts() -> RunOptions<'static> {
        RunOptions {
            mode: ExecMode::SampledStats(2),
            ..RunOptions::default()
        }
    }

    #[test]
    fn fleet_compiles_one_node_per_device() {
        let f = fleet();
        assert_eq!(f.nodes().len(), 2);
        assert_eq!(f.nodes()[0].name(), "Iris iGPU-S");
        assert_ne!(
            f.nodes()[0].manager().program().artifact_key(),
            f.nodes()[1].manager().program().artifact_key(),
            "per-device plans must key separately"
        );
    }

    #[test]
    fn cost_predicted_placement_respects_device_strengths() {
        let f = fleet();
        // Tiny launch: the iGPU's 2µs launch overhead beats the HPC
        // part's 12µs. Huge launch: 900 GB/s swamps 25.6.
        let tiny = f.place(1 << 6, PlacementPolicy::CostPredicted).unwrap();
        let huge = f.place(1 << 18, PlacementPolicy::CostPredicted).unwrap();
        assert_eq!(f.nodes()[tiny.node].name(), "Iris iGPU-S");
        assert_eq!(f.nodes()[huge.node].name(), "HPC Wide-80");
        assert!(tiny.predicted_us > 0.0 && huge.predicted_us > 0.0);
    }

    #[test]
    fn backlog_steers_placement_away_from_busy_nodes() {
        let f = fleet();
        let first = f.place(1 << 18, PlacementPolicy::CostPredicted).unwrap();
        // Bury the preferred node in (predicted) work; the scheduler must
        // divert the same launch elsewhere.
        f.nodes()[first.node].queue().enqueue(1e9);
        let diverted = f.place(1 << 18, PlacementPolicy::CostPredicted).unwrap();
        assert_ne!(diverted.node, first.node);
        // Static affinity ignores backlog and keeps pinning.
        let pinned = f.place(1 << 18, PlacementPolicy::StaticAffinity).unwrap();
        assert_eq!(pinned.node, first.node);
    }

    #[test]
    fn round_robin_cycles_and_dispatch_settles_queues() {
        let f = fleet();
        let input = vec![1.0f32; 1 << 10];
        let mut seen = [0usize; 2];
        for _ in 0..4 {
            let (p, report) = f
                .dispatch(1 << 10, &input, &[], opts(), PlacementPolicy::RoundRobin)
                .unwrap();
            assert!(report.time_us > 0.0);
            seen[p.node] += 1;
        }
        assert_eq!(seen, [2, 2], "round robin must alternate");
        for n in f.nodes() {
            assert_eq!(n.queue().depth(), 0, "every ticket settled");
            assert_eq!(n.queue().enqueued(), 2);
            assert!(n.queue().busy_us() > 0.0);
        }
        assert!(f.makespan_us() > 0.0);
        assert!(f.total_busy_us() >= f.makespan_us());
    }

    #[test]
    fn admitted_burst_spreads_across_the_fleet() {
        let f = fleet();
        // A burst of identical launches admitted before any completes:
        // backlog charging must spread them instead of piling every one
        // onto the momentarily-cheapest node.
        let placements: Vec<Placement> = (0..8)
            .map(|_| f.admit(1 << 12, PlacementPolicy::CostPredicted).unwrap())
            .collect();
        let used: std::collections::BTreeSet<usize> = placements.iter().map(|p| p.node).collect();
        assert!(
            used.len() > 1,
            "one node took the whole burst: {placements:?}"
        );
        let input = vec![1.0f32; 1 << 12];
        for p in placements {
            f.settle(p, 1 << 12, &input, &[], opts()).unwrap();
        }
        for n in f.nodes() {
            assert_eq!(n.queue().depth(), 0, "every ticket settled");
        }
    }

    #[test]
    fn fleet_telemetry_rolls_up_across_nodes() {
        let f = fleet();
        let input = vec![1.0f32; 1 << 10];
        for _ in 0..6 {
            f.dispatch(1 << 10, &input, &[], opts(), PlacementPolicy::RoundRobin)
                .unwrap();
        }
        let t = f.telemetry().unwrap();
        assert_eq!(t.launches, 6, "3 per node, summed once each");
        assert!(t.boundaries.is_empty(), "per-table state dropped");
    }

    #[test]
    fn prune_shrinks_tables_within_bound() {
        let mut f = fleet();
        let before: Vec<usize> = f
            .nodes()
            .iter()
            .map(|n| n.manager().program().variant_count())
            .collect();
        let outcomes = f.prune(32, 0.10).unwrap();
        for (o, b) in outcomes.iter().zip(&before) {
            assert_eq!(o.full_variants, *b);
            assert!(o.selection.max_overhead <= 0.10 + 1e-9);
            assert!(!o.selection.kept.is_empty());
            assert!(o.pruned_bytes <= o.full_bytes);
            if o.selection.kept.len() < o.full_variants {
                assert!(o.pruned_bytes < o.full_bytes, "fewer variants, fewer bytes");
            }
        }
        // The fleet still schedules and runs after the swap.
        let input = vec![1.0f32; 1 << 10];
        f.dispatch(1 << 10, &input, &[], opts(), PlacementPolicy::CostPredicted)
            .unwrap();
    }

    #[test]
    fn dispatch_concurrent_settles_every_job_across_nodes() {
        let f = fleet();
        let input = vec![1.0f32; 1 << 14];
        // Mixed sizes so both devices win some placements.
        let xs: Vec<i64> = (0..12)
            .map(|i| if i % 2 == 0 { 1 << 7 } else { 1 << 14 })
            .collect();
        let jobs: Vec<FleetJob<'_>> = xs
            .iter()
            .map(|&x| FleetJob {
                x,
                input: &input[..x as usize],
                state: &[],
            })
            .collect();
        let results = f.dispatch_concurrent(&jobs, opts(), PlacementPolicy::CostPredicted);
        assert_eq!(results.len(), jobs.len());
        let mut used = std::collections::BTreeSet::new();
        for (r, &x) in results.iter().zip(&xs) {
            let (p, report) = r.as_ref().expect("job settles");
            used.insert(p.node);
            let expected: f32 = x as f32;
            assert!((report.output[0] - expected).abs() <= expected * 1e-5);
        }
        assert!(used.len() > 1, "burst must use more than one node");
        for n in f.nodes() {
            assert_eq!(n.queue().depth(), 0, "every ticket settled");
        }
        // Admission errors come back in-slot, without poisoning the rest.
        let bad = [FleetJob {
            x: i64::MAX,
            input: &input,
            state: &[],
        }];
        let r = f.dispatch_concurrent(&bad, opts(), PlacementPolicy::CostPredicted);
        assert!(r[0].is_err());
        assert_eq!(
            f.nodes()[0].queue().depth() + f.nodes()[1].queue().depth(),
            0
        );
    }

    #[test]
    fn shared_queues_make_backlog_visible_across_fleets() {
        // Two fleets (think: two tenants) over the SAME two physical
        // devices. Work admitted by fleet A must steer fleet B's
        // cost-predicted placement away from the busy device.
        let a = fleet();
        let axis = InputAxis::total_size("N", 1 << 6, 1 << 18);
        let devices = [DeviceSpec::igpu_small(), DeviceSpec::hpc_wide()];
        let nodes = devices
            .iter()
            .zip(a.nodes())
            .map(|(d, an)| {
                let compiled = compile(&program(), d, &axis).unwrap();
                FleetNode::with_queue(&d.name, KernelManager::new(compiled), an.queue_handle())
            })
            .collect();
        let b = Fleet::new(nodes, false);
        let preferred = b.place(1 << 18, PlacementPolicy::CostPredicted).unwrap();
        // Fleet A buries the preferred device in admitted work…
        a.nodes()[preferred.node].queue().enqueue(1e9);
        // …and fleet B, which never touched its own queue, sees it.
        let diverted = b.place(1 << 18, PlacementPolicy::CostPredicted).unwrap();
        assert_ne!(diverted.node, preferred.node);
    }

    #[test]
    fn empty_fleet_and_unpriceable_inputs_error() {
        let f = Fleet::new(Vec::new(), false);
        assert!(f.place(10, PlacementPolicy::CostPredicted).is_err());
        let f = fleet();
        assert!(f.place(i64::MAX, PlacementPolicy::CostPredicted).is_err());
    }
}
