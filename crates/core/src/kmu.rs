//! The online kernel-management unit (§5 of the paper), with
//! measured-feedback recalibration.
//!
//! The planner places variant boundaries where the *analytical* model says
//! two lowerings break even. When the model is wrong for a device — and
//! Hong & Kim-style models routinely are, by tens of percent — the table
//! keeps launching the wrong variant near the boundary forever. The
//! [`KernelManager`] closes the loop: every launch records measured cost
//! (the simulated-cycle estimate read back from `gpu_sim` accounting plus
//! host time) into a per-variant [`VariantHistogram`]; once enough samples
//! disagree with the prediction, the break-even point is re-located from
//! *measurement-corrected* cost curves and the boundary shifts — with
//! hysteresis, so noise never makes it flap.
//!
//! The correction is a per-variant multiplicative ratio
//! (EWMA of `measured / predicted`), learned from each variant's own
//! launches. A boundary the model *overextended* is therefore fixed
//! without any exploration: the variant being launched in the disputed
//! region reveals its own underestimated cost, and the corrected crossover
//! hands the region to the neighbor.
//!
//! Selection changes never change results: every variant of the table
//! computes the same function (the conformance suite pins this
//! bit-for-bit), so a boundary move only moves *time*.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use gpu_sim::{ExecMode, ExecPolicy, ShardedLaunchCache, StatsCache};
use perfmodel::{recalibrated_boundary, Hysteresis};
use streamir::error::{Error, Result};

use crate::artifact::{ArtifactError, ArtifactStore, LearnedState};
use crate::plan::CompiledProgram;
use crate::runtime::{ExecutionReport, RunOptions, StateBinding};
use crate::telemetry::{TelemetryCounters, TelemetrySnapshot};

/// EWMA weight of the newest measured/predicted ratio sample.
const RATIO_ALPHA: f64 = 0.3;

/// Per-variant circuit breaker: quarantines a variant whose launches keep
/// failing, so selection stops feeding inputs to a lowering the device
/// currently cannot run.
///
/// Time is the manager's *logical clock* (one tick per
/// [`KernelManager::run`]), not wall time — deterministic under fault
/// injection, and a quarantined variant is re-probed after a bounded
/// number of subsequent runs rather than a wall-clock timeout.
///
/// States: **closed** (`open_until == 0`, healthy), **open**
/// (`tick < open_until`, quarantined — never selected), **half-open**
/// (`open_until != 0 && tick >= open_until` — the next selection is a
/// probe: success re-admits the variant, failure re-opens it with a
/// doubled window).
#[derive(Debug, Clone, Default)]
struct Breaker {
    /// Launch failures since the last success (closed state only).
    consecutive_failures: u32,
    /// Logical tick at which quarantine ends; 0 = not tripped.
    open_until: u64,
    /// Window applied at the last trip (doubles while probes keep failing).
    window: u64,
}

impl Breaker {
    fn is_open(&self, tick: u64) -> bool {
        tick < self.open_until
    }

    fn is_half_open(&self, tick: u64) -> bool {
        self.open_until != 0 && tick >= self.open_until
    }

    /// Record a successful launch. Returns `true` when this was a
    /// half-open probe succeeding (the variant is re-admitted).
    fn record_success(&mut self) -> bool {
        let readmitted = self.open_until != 0;
        self.consecutive_failures = 0;
        self.open_until = 0;
        self.window = 0;
        readmitted
    }

    /// Record a launch failure at `tick`. Returns `true` when this trips
    /// the breaker open (first quarantine or a failed probe re-opening it).
    fn record_failure(&mut self, tick: u64, threshold: u32, base_window: u64) -> bool {
        if self.open_until != 0 {
            // A half-open probe failed: re-open with a doubled window.
            self.window = self.window.saturating_mul(2).max(1);
            self.open_until = tick.saturating_add(self.window);
            true
        } else {
            self.consecutive_failures += 1;
            if self.consecutive_failures >= threshold.max(1) {
                self.consecutive_failures = 0;
                self.window = base_window.max(1);
                self.open_until = tick.saturating_add(self.window);
                true
            } else {
                false
            }
        }
    }
}

/// Measured-cost history of one variant of the table.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantHistogram {
    /// Launches of this variant recorded so far.
    pub samples: u64,
    /// Samples since a boundary adjacent to this variant last moved.
    pub since_move: u64,
    /// EWMA of `measured / predicted` (1.0 = the model is exact).
    pub ratio: f64,
    /// Running `Σ |measured - predicted| / predicted` for telemetry.
    sum_rel_err: f64,
}

impl VariantHistogram {
    /// Reassemble a histogram from persisted fields (the artifact codec).
    pub fn from_raw(samples: u64, since_move: u64, ratio: f64, sum_rel_err: f64) -> Self {
        VariantHistogram {
            samples,
            since_move,
            ratio,
            sum_rel_err,
        }
    }

    /// Running `Σ |measured - predicted| / predicted`.
    pub fn sum_rel_err(&self) -> f64 {
        self.sum_rel_err
    }
}

impl Default for VariantHistogram {
    fn default() -> Self {
        VariantHistogram {
            samples: 0,
            since_move: 0,
            ratio: 1.0,
            sum_rel_err: 0.0,
        }
    }
}

/// Mutable selector state, guarded by one short-held mutex (launches
/// themselves run outside it; only bookkeeping locks).
#[derive(Debug)]
struct KmuState {
    /// Current (possibly recalibrated) sub-range per variant. Always tiles
    /// the axis exactly.
    ranges: Vec<(i64, i64)>,
    hist: Vec<VariantHistogram>,
    /// Multiplier applied to the model's prediction per variant — 1.0
    /// normally; tests inject a deliberate misprediction here.
    skew: Vec<f64>,
    /// Per-variant circuit breakers (quarantine on repeated failure).
    breakers: Vec<Breaker>,
    /// Logical clock: one tick per [`KernelManager::run`] call; breakers
    /// measure quarantine windows against it.
    clock: u64,
}

/// Everything the unlocked boundary search needs about one adjacent pair,
/// copied out of [`KmuState`] under the lock. `lo`/`hi`/`current` double as
/// the validity witness: a move is applied only if they still match.
#[derive(Debug, Clone, Copy)]
struct PairSnapshot {
    /// Index of the pair's left variant (the boundary is `ranges[left + 1].0`).
    left: usize,
    lo: i64,
    hi: i64,
    current: i64,
    /// Ratio-corrected cost multipliers (EWMA ratio × model skew) of the
    /// left and right variants at snapshot time.
    cl: f64,
    cr: f64,
}

/// The online kernel-management unit: wraps a [`CompiledProgram`] with a
/// recalibrating selector, a sharded launch-stats cache and telemetry.
///
/// `&KernelManager` is `Sync`: many threads can call
/// [`run`](KernelManager::run) concurrently. Launches execute outside the
/// selector lock, cache stripes are independently locked, and counters are
/// atomic.
#[derive(Debug)]
pub struct KernelManager {
    program: CompiledProgram,
    cache: ShardedLaunchCache,
    counters: TelemetryCounters,
    state: Mutex<KmuState>,
    hysteresis: Hysteresis,
    /// Combined fresh samples an adjacent pair needs before its boundary
    /// is re-examined.
    min_samples: u64,
    /// Consecutive launch failures that quarantine a variant.
    quarantine_threshold: u32,
    /// Initial quarantine length in logical ticks (doubles while half-open
    /// probes keep failing).
    quarantine_window: u64,
    /// Attached artifact store: learned boundaries/histograms are seeded
    /// from it at attach time and written back by
    /// [`KernelManager::persist_learned`]. `None` = persistence off.
    store: Option<Arc<crate::artifact::ArtifactStore>>,
    /// Declared rate window: the `[lo, hi]` firing-rate range this
    /// manager's plan was conditioned on. `None` = static plan, no rate
    /// observation.
    rate_window: Option<(i64, i64)>,
}

impl KernelManager {
    /// Manage `program` with default cache geometry, hysteresis and
    /// sample threshold.
    pub fn new(program: CompiledProgram) -> KernelManager {
        let ranges: Vec<(i64, i64)> = program.variants.iter().map(|v| (v.lo, v.hi)).collect();
        let n = ranges.len();
        KernelManager {
            counters: TelemetryCounters::new(n),
            state: Mutex::new(KmuState {
                ranges,
                hist: vec![VariantHistogram::default(); n],
                skew: vec![1.0; n],
                breakers: vec![Breaker::default(); n],
                clock: 0,
            }),
            cache: ShardedLaunchCache::default(),
            hysteresis: Hysteresis::default(),
            min_samples: 4,
            quarantine_threshold: 3,
            quarantine_window: 8,
            store: None,
            rate_window: None,
            program,
        }
    }

    /// Declare the rate window this manager's plan was conditioned on.
    /// Every [`run`](KernelManager::run) whose axis value falls outside
    /// the window is tallied as a `rate_exits` telemetry event — the
    /// signal a rate governor watches to decide when the region needs
    /// re-planning. The window does not change selection or admission;
    /// the compiled axis still decides what is runnable.
    pub fn with_rate_window(mut self, lo: i64, hi: i64) -> KernelManager {
        self.rate_window = Some((lo.min(hi), lo.max(hi)));
        self
    }

    /// The declared rate window, if any.
    pub fn rate_window(&self) -> Option<(i64, i64)> {
        self.rate_window
    }

    /// Replace the circuit-breaker policy: `threshold` consecutive launch
    /// failures quarantine a variant for `window` logical ticks (both
    /// clamped to at least 1; the window doubles while half-open probes
    /// keep failing).
    pub fn with_quarantine(mut self, threshold: u32, window: u64) -> KernelManager {
        self.quarantine_threshold = threshold.max(1);
        self.quarantine_window = window.max(1);
        self
    }

    /// Replace the launch-stats cache geometry.
    pub fn with_cache(mut self, shards: usize, capacity_per_shard: usize) -> KernelManager {
        self.cache = ShardedLaunchCache::new(shards, capacity_per_shard);
        self
    }

    /// Replace the recalibration hysteresis thresholds.
    pub fn with_hysteresis(mut self, hysteresis: Hysteresis) -> KernelManager {
        self.hysteresis = hysteresis;
        self
    }

    /// Replace the recalibration hysteresis thresholds in place (the
    /// builder form consumes the manager, which an owner embedding one —
    /// e.g. [`crate::DynamicRegion`] — cannot do).
    pub fn set_hysteresis(&mut self, hysteresis: Hysteresis) {
        self.hysteresis = hysteresis;
    }

    /// Replace the fresh-sample threshold that arms recalibration.
    pub fn with_min_samples(mut self, min_samples: u64) -> KernelManager {
        self.min_samples = min_samples.max(1);
        self
    }

    /// Override the selector's boundaries directly (one `(lo, hi)` per
    /// variant). Tests use this to start the manager from a deliberately
    /// wrong table.
    ///
    /// # Panics
    ///
    /// Panics when the ranges do not exactly tile the compiled axis in
    /// variant order.
    pub fn with_boundaries(self, ranges: Vec<(i64, i64)>) -> KernelManager {
        {
            let mut st = self.lock_state();
            let (lo, hi) = self.program.axis_range();
            assert_eq!(ranges.len(), st.ranges.len(), "one range per variant");
            assert!(
                ranges.first().map(|r| r.0) == Some(lo)
                    && ranges.last().map(|r| r.1) == Some(hi)
                    && ranges.iter().all(|r| r.0 <= r.1)
                    && ranges.windows(2).all(|w| w[0].1 + 1 == w[1].0),
                "ranges must tile [{lo}, {hi}]: {ranges:?}"
            );
            st.ranges = ranges;
        }
        self
    }

    /// Deliberately skew the model's prediction per variant (multiplier;
    /// 1.0 = honest) and re-place every boundary from the skewed curves,
    /// exactly as the planner would have if the model were *actually* this
    /// wrong. The demo for measured-feedback convergence: skew a variant's
    /// predicted cost down and watch the manager claw the boundary back
    /// from measurements.
    ///
    /// # Panics
    ///
    /// Panics when `skews` does not have one entry per variant.
    pub fn with_model_skew(self, skews: Vec<f64>) -> KernelManager {
        {
            let mut st = self.lock_state();
            assert_eq!(skews.len(), st.ranges.len(), "one skew per variant");
            st.skew = skews;
            // Re-place each boundary from the skewed curves (ratios are
            // all 1.0 at this point), with hysteresis off: this *is* the
            // table such a model would have produced.
            let free = Hysteresis {
                min_rel_shift: 0.0,
                min_abs_shift: 1,
            };
            for left in 0..st.ranges.len().saturating_sub(1) {
                let (lo, hi) = (st.ranges[left].0, st.ranges[left + 1].1);
                let current = st.ranges[left + 1].0;
                let (sl, sr) = (st.skew[left], st.skew[left + 1]);
                let moved = recalibrated_boundary(
                    lo,
                    hi,
                    current,
                    |x| sl * self.predicted(x, left),
                    |x| sr * self.predicted(x, left + 1),
                    free,
                );
                if let Some(b) = moved {
                    st.ranges[left].1 = b - 1;
                    st.ranges[left + 1].0 = b;
                }
            }
        }
        self
    }

    /// Attach a persistent [`ArtifactStore`] and warm-start from it: if
    /// the store holds learned state for this program on this device (and
    /// it validates against the current variant table), boundaries and
    /// histograms are seeded from it — the manager starts where the last
    /// process left off instead of relearning from the planner's table.
    /// A miss, a corrupt file or a version mismatch is a counted non-event
    /// (see [`ArtifactStore`] telemetry) and the manager starts cold.
    ///
    /// Circuit-breaker/quarantine state is **never** loaded (or stored):
    /// a reloaded process always starts with closed breakers.
    pub fn with_artifacts(mut self, store: Arc<ArtifactStore>) -> KernelManager {
        {
            let mut st = self.lock_state();
            let (lo, hi) = self.program.axis_range();
            if let Some(learned) =
                store.load_learned(self.program.artifact_key(), st.ranges.len(), lo, hi)
            {
                st.ranges = learned.boundaries;
                st.hist = learned.histograms;
            }
        }
        self.store = Some(store);
        self
    }

    /// The attached artifact store, if any.
    pub fn artifact_store(&self) -> Option<&ArtifactStore> {
        self.store.as_deref()
    }

    /// A copy of the current learned state — recalibrated boundaries plus
    /// per-variant histograms — suitable for persisting or for shipping to
    /// a peer node ([`LearnedState::to_bytes`]). Run-time quarantine state
    /// is deliberately excluded.
    pub fn export_learned(&self) -> LearnedState {
        let st = self.lock_state();
        LearnedState {
            boundaries: st.ranges.clone(),
            histograms: st.hist.clone(),
        }
    }

    /// Adopt a peer's learned state: replaces boundaries and histograms
    /// after validating that `learned` matches this program's variant
    /// count and exactly tiles its axis, and that every histogram carries
    /// finite, positive ratios. Breakers and the logical clock are
    /// untouched.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Malformed`] when the state does not fit this
    /// program; the manager's state is unchanged on error.
    pub fn import_learned(&self, learned: &LearnedState) -> std::result::Result<(), ArtifactError> {
        let (lo, hi) = self.program.axis_range();
        let n = self.program.variants.len();
        if !learned.fits(n, lo, hi) {
            return Err(ArtifactError::Malformed(format!(
                "learned state does not tile {n} variants over [{lo}, {hi}]"
            )));
        }
        if let Some(h) = learned
            .histograms
            .iter()
            .find(|h| !(h.ratio.is_finite() && h.ratio > 0.0 && h.sum_rel_err().is_finite()))
        {
            return Err(ArtifactError::Malformed(format!(
                "non-finite histogram {h:?}"
            )));
        }
        let mut st = self.lock_state();
        st.ranges = learned.boundaries.clone();
        st.hist = learned.histograms.clone();
        Ok(())
    }

    /// Write the current learned state back to the attached store
    /// (atomic replace); a no-op without one. Call at shutdown — or
    /// periodically — so the next process warm-starts.
    ///
    /// # Errors
    ///
    /// Propagates the store's filesystem errors.
    pub fn persist_learned(&self) -> std::result::Result<(), ArtifactError> {
        let Some(store) = &self.store else {
            return Ok(());
        };
        store.store_learned(self.program.artifact_key(), &self.export_learned())
    }

    /// Lock the selector state, recovering from poison: state mutations
    /// are single-field scalar/element writes, so a panic mid-critical
    /// section cannot leave the table half-updated — the recovered state
    /// is always consistent.
    fn lock_state(&self) -> MutexGuard<'_, KmuState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The managed program.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// The launch-stats cache (hit/miss/eviction counters live here).
    pub fn cache(&self) -> &ShardedLaunchCache {
        &self.cache
    }

    /// The variant the *current* (possibly recalibrated) table selects for
    /// axis value `x`.
    ///
    /// # Errors
    ///
    /// [`Error::EmptyVariantTable`] when there is nothing to select from;
    /// [`Error::InputOutOfRange`] when `x` is outside the compiled range —
    /// typed errors, never a panic or a silent clamp.
    pub fn select(&self, x: i64) -> Result<usize> {
        let st = self.lock_state();
        self.select_locked(&st, x)
    }

    /// The manager's best current estimate of what running axis value `x`
    /// here would cost, in µs: the analytical model's prediction for the
    /// variant the *recalibrated* table selects, scaled by that variant's
    /// measured/predicted EWMA ratio (1.0 until measurements arrive). This
    /// is the per-device cost term a fleet scheduler compares across
    /// heterogeneous devices — it sharpens online as histograms fill in,
    /// without ever launching anything.
    ///
    /// # Errors
    ///
    /// The selection errors of [`KernelManager::select`].
    pub fn corrected_cost(&self, x: i64) -> Result<f64> {
        let (v, correction, skew) = {
            let st = self.lock_state();
            let v = self.select_locked(&st, x)?;
            (v, st.hist[v].ratio, st.skew[v])
        };
        // Price outside the lock: predicted() flattens and rate-matches.
        Ok(correction * skew * self.predicted(x, v))
    }

    fn select_locked(&self, st: &KmuState, x: i64) -> Result<usize> {
        if st.ranges.is_empty() {
            return Err(Error::EmptyVariantTable);
        }
        let (lo, hi) = self.program.axis_range();
        if x < lo || x > hi {
            return Err(Error::InputOutOfRange { x, lo, hi });
        }
        Ok(st
            .ranges
            .iter()
            .position(|r| x >= r.0 && x <= r.1)
            .expect("ranges tile the axis"))
    }

    /// Skewed model prediction of variant `v` at `x` (∞ when the model
    /// cannot price it, so a crossover search treats it as never-winning).
    fn predicted(&self, x: i64, v: usize) -> f64 {
        self.program
            .predicted_time_us(x, v)
            .unwrap_or(f64::INFINITY)
    }

    /// Run the program at axis value `x`, selecting the variant from the
    /// recalibrated table, recording measured cost, and re-examining the
    /// adjacent boundaries.
    ///
    /// Launches are resilient: a variant whose launch fails (after the
    /// runtime's own retry budget, [`crate::RetryPolicy`]) is retried on
    /// the next-nearest non-quarantined variant — every variant computes
    /// the same function, so a fallback changes only time, never results.
    /// A variant that keeps failing is *quarantined* by a per-variant
    /// circuit breaker (see [`KernelManager::with_quarantine`]) and
    /// re-probed half-open after its window of logical ticks. When every
    /// variant is unavailable, the run completes on the serial engine with
    /// a doubled retry budget — the degraded-but-correct last resort.
    ///
    /// The launch-stats cache is engaged only for
    /// [`ExecMode::SampledExec`] runs — the cache skips execution on hits,
    /// which is only sound where outputs are already being discarded.
    /// The returned report carries a [`TelemetrySnapshot`].
    ///
    /// # Errors
    ///
    /// Selection errors ([`Error::EmptyVariantTable`],
    /// [`Error::InputOutOfRange`]), everything
    /// [`CompiledProgram::run_opts`] returns, and
    /// [`Error::LaunchFailed`] only when the entire degradation ladder —
    /// every admitted variant plus the serial last resort — failed.
    pub fn run(
        &self,
        x: i64,
        input: &[f32],
        state: &[StateBinding],
        opts: RunOptions<'_>,
    ) -> Result<ExecutionReport> {
        if let Some((lo, hi)) = self.rate_window {
            if x < lo || x > hi {
                self.counters.record_rate_exit();
            }
        }
        let primary = self.select(x)?;
        let cache: Option<&dyn StatsCache> = match opts.mode {
            ExecMode::SampledExec(_) => Some(&self.cache),
            _ => None,
        };

        // Admission, under the lock: advance the logical clock and build
        // the candidate ladder — the primary first, then the remaining
        // variants by distance from it, skipping quarantined (open)
        // breakers. A half-open breaker is admitted as a probe.
        let (tick, candidates) = {
            let mut st = self.lock_state();
            st.clock += 1;
            let tick = st.clock;
            let mut order: Vec<usize> = (0..st.ranges.len()).collect();
            order.sort_by_key(|&v| (v.abs_diff(primary), v));
            let candidates: Vec<(usize, bool)> = order
                .into_iter()
                .filter(|&v| !st.breakers[v].is_open(tick))
                .map(|v| (v, st.breakers[v].is_half_open(tick)))
                .collect();
            (tick, candidates)
        };

        // The retry policy's wall-clock budget bounds the whole ladder:
        // after at least one attempt, a spent budget stops the walk down
        // the fallback variants (and the degraded resort) with the last
        // failure instead of retrying past the caller's deadline.
        let ladder_started = std::time::Instant::now();
        let budget_us = opts.retry.deadline_us;
        let budget_spent =
            || budget_us > 0 && ladder_started.elapsed().as_micros() as u64 >= budget_us;
        let mut last_err: Option<Error> = None;
        for (v, probe) in candidates {
            if let Some(e) = last_err.take_if(|_| budget_spent()) {
                self.counters
                    .deadline_overruns
                    .fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
            if probe {
                self.counters
                    .half_open_probes
                    .fetch_add(1, Ordering::Relaxed);
            }
            match self
                .program
                .run_opts(x, input, state, opts.with_variant(v), cache)
            {
                Ok(report) => {
                    let readmitted = self.lock_state().breakers[v].record_success();
                    if readmitted {
                        self.counters.readmissions.fetch_add(1, Ordering::Relaxed);
                    }
                    if v != primary {
                        self.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
                    }
                    return self.finish_run(x, v, opts, report);
                }
                Err(e) => {
                    let Error::LaunchFailed { attempts, .. } = &e else {
                        // Not a launch failure (bad input, semantic error,
                        // ...): no other variant can do better — propagate.
                        return Err(e);
                    };
                    self.counters.record_resilience(
                        u64::from(attempts.saturating_sub(1)),
                        u64::from(*attempts),
                        0,
                    );
                    let opened = self.lock_state().breakers[v].record_failure(
                        tick,
                        self.quarantine_threshold,
                        self.quarantine_window,
                    );
                    if opened {
                        self.counters.quarantines.fetch_add(1, Ordering::Relaxed);
                    }
                    last_err = Some(e);
                }
            }
        }
        if let Some(e) = last_err {
            if budget_spent() {
                self.counters
                    .deadline_overruns
                    .fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        }

        // Degraded-but-correct last resort: every variant is quarantined
        // or just failed, so run the primary on the serial engine with a
        // doubled retry budget. Faults are still injected here — an
        // injector hot enough to kill this too surfaces as
        // `Error::LaunchFailed` to the caller.
        let mut degraded = RunOptions {
            policy: ExecPolicy::Serial,
            ..opts
        };
        degraded.retry.max_attempts = degraded.retry.max_attempts.max(1).saturating_mul(2);
        match self
            .program
            .run_opts(x, input, state, degraded.with_variant(primary), cache)
        {
            Ok(report) => {
                self.counters.degraded_runs.fetch_add(1, Ordering::Relaxed);
                self.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
                self.finish_run(x, primary, opts, report)
            }
            Err(e) => {
                if let Error::LaunchFailed { attempts, .. } = &e {
                    self.counters.record_resilience(
                        u64::from(attempts.saturating_sub(1)),
                        u64::from(*attempts),
                        0,
                    );
                }
                if let Some(f) = opts.faults {
                    self.counters.record_faults_injected(f.injected());
                }
                Err(e)
            }
        }
    }

    /// Post-success bookkeeping for a run that executed variant `idx`:
    /// selection and resilience telemetry, measured-feedback recording,
    /// boundary re-examination, and the report's telemetry snapshot.
    fn finish_run(
        &self,
        x: i64,
        idx: usize,
        opts: RunOptions<'_>,
        mut report: ExecutionReport,
    ) -> Result<ExecutionReport> {
        self.counters.record_selection(idx);
        self.counters.record_resilience(
            report.retries,
            report.faults_observed,
            report.deadline_overruns,
        );
        if let Some(f) = opts.faults {
            self.counters.record_faults_injected(f.injected());
        }

        let measured = report.time_us + report.host_time_us;
        // Price the launch before taking the lock: predicted_time_us does
        // a full program flatten + rate_match, far too slow to serialize
        // concurrent callers behind.
        let base_pred = self.predicted(x, idx);
        let candidates = {
            let mut st = self.lock_state();
            let predicted = st.skew[idx] * base_pred;
            let mut out = Vec::new();
            if predicted.is_finite() && predicted > 0.0 && measured.is_finite() {
                let h = &mut st.hist[idx];
                let ratio = measured / predicted;
                h.ratio = if h.samples == 0 {
                    ratio
                } else {
                    RATIO_ALPHA * ratio + (1.0 - RATIO_ALPHA) * h.ratio
                };
                h.samples += 1;
                h.since_move += 1;
                h.sum_rel_err += (measured - predicted).abs() / predicted;
                if idx > 0 {
                    out.extend(self.pair_snapshot(&st, idx - 1));
                }
                out.extend(self.pair_snapshot(&st, idx));
            }
            out
        };
        // Solve each armed boundary from the snapshot, unlocked — this is
        // the O(log range)-probes binary search over the cost curves — then
        // re-validate under the lock before applying.
        let moves: Vec<(PairSnapshot, i64)> = candidates
            .into_iter()
            .filter_map(|c| self.solve_boundary(&c).map(|b| (c, b)))
            .collect();
        let st = {
            let mut st = self.lock_state();
            for (c, b) in moves {
                self.apply_boundary_move(&mut st, &c, b);
            }
            st
        };
        report.telemetry = Some(self.snapshot_locked(&st));
        Ok(report)
    }

    /// Under the lock: if the boundary between `left` and `left + 1` has
    /// accumulated enough fresh samples, copy everything the unlocked
    /// crossover search needs.
    fn pair_snapshot(&self, st: &KmuState, left: usize) -> Option<PairSnapshot> {
        let right = left + 1;
        if right >= st.ranges.len() {
            return None;
        }
        if st.hist[left].since_move + st.hist[right].since_move < self.min_samples {
            return None;
        }
        Some(PairSnapshot {
            left,
            lo: st.ranges[left].0,
            hi: st.ranges[right].1,
            current: st.ranges[right].0,
            cl: st.hist[left].ratio * st.skew[left],
            cr: st.hist[right].ratio * st.skew[right],
        })
    }

    /// Outside the lock: re-locate the snapshotted pair's boundary from
    /// its ratio-corrected cost curves.
    fn solve_boundary(&self, c: &PairSnapshot) -> Option<i64> {
        recalibrated_boundary(
            c.lo,
            c.hi,
            c.current,
            |x| c.cl * self.predicted(x, c.left),
            |x| c.cr * self.predicted(x, c.left + 1),
            self.hysteresis,
        )
    }

    /// Back under the lock: apply a solved move only if the pair's span and
    /// boundary still match the snapshot (a concurrent caller may have
    /// moved either in the meantime — then this solution priced a stale
    /// table and is dropped; the pair's freshness is untouched, so the next
    /// launch re-examines it). An applied move resets both sides'
    /// freshness, so the next move needs new evidence.
    fn apply_boundary_move(&self, st: &mut KmuState, c: &PairSnapshot, b: i64) {
        let right = c.left + 1;
        if right >= st.ranges.len()
            || st.ranges[c.left].0 != c.lo
            || st.ranges[right].1 != c.hi
            || st.ranges[right].0 != c.current
        {
            return;
        }
        st.ranges[c.left].1 = b - 1;
        st.ranges[right].0 = b;
        st.hist[c.left].since_move = 0;
        st.hist[right].since_move = 0;
        self.counters.record_move();
    }

    /// A point-in-time copy of all telemetry.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let st = self.lock_state();
        self.snapshot_locked(&st)
    }

    fn snapshot_locked(&self, st: &KmuState) -> TelemetrySnapshot {
        let samples: u64 = st.hist.iter().map(|h| h.samples).sum();
        let sum_err: f64 = st.hist.iter().map(|h| h.sum_rel_err).sum();
        let artifacts = self
            .store
            .as_deref()
            .map(ArtifactStore::counters)
            .unwrap_or_default();
        let c = &self.counters;
        TelemetrySnapshot {
            artifact_hits: artifacts.hits,
            artifact_misses: artifacts.misses,
            artifact_rejects: artifacts.rejects,
            launches: c.launches.load(Ordering::Relaxed),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_evictions: self.cache.evictions(),
            selections: c.selection_counts(),
            recalibration_moves: c.recalibration_moves.load(Ordering::Relaxed),
            mean_model_error: if samples > 0 {
                sum_err / samples as f64
            } else {
                0.0
            },
            boundaries: st.ranges.clone(),
            retries: c.retries.load(Ordering::Relaxed),
            faults_observed: c.faults_observed.load(Ordering::Relaxed),
            faults_injected: c.faults_injected.load(Ordering::Relaxed),
            deadline_overruns: c.deadline_overruns.load(Ordering::Relaxed),
            fallbacks: c.fallbacks.load(Ordering::Relaxed),
            quarantines: c.quarantines.load(Ordering::Relaxed),
            half_open_probes: c.half_open_probes.load(Ordering::Relaxed),
            readmissions: c.readmissions.load(Ordering::Relaxed),
            degraded_runs: c.degraded_runs.load(Ordering::Relaxed),
            rate_exits: c.rate_exits.load(Ordering::Relaxed),
            reschedules: c.reschedules.load(Ordering::Relaxed),
            quarantined_variants: st
                .breakers
                .iter()
                .enumerate()
                .filter(|(_, b)| b.is_open(st.clock))
                .map(|(i, _)| i)
                .collect(),
            // Serving-plane counters live above the manager; a serving
            // front-end fills them per tenant.
            ..TelemetrySnapshot::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{compile, InputAxis};
    use gpu_sim::{DeviceSpec, Fault, FaultInjector};
    use std::sync::atomic::{AtomicBool, AtomicU64};
    use streamir::parse::parse_program;

    const SUM_SRC: &str = r#"pipeline P(N) {
        actor Sum(pop N, push 1) {
            acc = 0.0;
            for i in 0..N { acc = acc + pop(); }
            push(acc);
        }
    }"#;

    fn compiled_sum() -> CompiledProgram {
        let p = parse_program(SUM_SRC).unwrap();
        let axis = InputAxis::total_size("N", 64, 1 << 20);
        compile(&p, &DeviceSpec::tesla_c2050(), &axis).unwrap()
    }

    #[test]
    fn selector_rejects_out_of_range_and_empty_table() {
        let compiled = compiled_sum();
        let kmu = KernelManager::new(compiled.clone());
        assert!(matches!(
            kmu.select(63),
            Err(Error::InputOutOfRange { x: 63, lo: 64, .. })
        ));
        assert!(matches!(
            kmu.select((1 << 20) + 1),
            Err(Error::InputOutOfRange { .. })
        ));
        assert!(matches!(
            kmu.run(1 << 30, &[1.0; 4], &[], RunOptions::default()),
            Err(Error::InputOutOfRange { .. })
        ));

        let mut empty = compiled;
        empty.variants.clear();
        assert!(matches!(
            empty.try_variant_for(1024),
            Err(Error::EmptyVariantTable)
        ));
        let kmu = KernelManager::new(empty);
        assert!(matches!(kmu.select(1024), Err(Error::EmptyVariantTable)));
    }

    #[test]
    fn rate_window_exits_are_counted_but_do_not_gate() {
        let kmu = KernelManager::new(compiled_sum()).with_rate_window(256, 4096);
        assert_eq!(kmu.rate_window(), Some((256, 4096)));
        let opts = RunOptions::serial(ExecMode::SampledStats(32));

        // In-window run: no exit.
        kmu.run(1024, &vec![1.0; 1024], &[], opts).unwrap();
        assert_eq!(kmu.telemetry().rate_exits, 0);

        // Outside the window but inside the compiled axis: counted as an
        // exit, yet the run still completes (the axis gates, not the window).
        kmu.run(8192, &vec![1.0; 8192], &[], opts).unwrap();
        assert_eq!(kmu.telemetry().rate_exits, 1);

        // Outside the compiled axis: counted, then rejected by selection.
        assert!(matches!(
            kmu.run(1 << 30, &[1.0; 4], &[], opts),
            Err(Error::InputOutOfRange { .. })
        ));
        let snap = kmu.telemetry();
        assert_eq!(snap.rate_exits, 2);
        assert_eq!(snap.reschedules, 0);

        // No declared window: nothing is ever counted.
        let plain = KernelManager::new(compiled_sum());
        assert_eq!(plain.rate_window(), None);
        plain.run(8192, &vec![1.0; 8192], &[], opts).unwrap();
        assert_eq!(plain.telemetry().rate_exits, 0);
    }

    #[test]
    fn hysteresis_freezes_and_recalibration_keeps_tiling() {
        let compiled = compiled_sum();
        let before: Vec<(i64, i64)> = compiled.variants.iter().map(|v| (v.lo, v.hi)).collect();
        let opts = RunOptions::serial(ExecMode::SampledStats(32));
        let sizes = [256usize, 1024, 4096, 16384, 65536];

        // An insurmountable hysteresis bar: measured-vs-model disagreement
        // never moves a boundary, no matter how many samples accrue.
        let frozen = KernelManager::new(compiled.clone())
            .with_min_samples(2)
            .with_hysteresis(Hysteresis {
                min_rel_shift: f64::INFINITY,
                min_abs_shift: i64::MAX,
            });
        for &n in &sizes {
            let input = vec![1.0f32; n];
            let rep = frozen.run(n as i64, &input, &[], opts).unwrap();
            assert_eq!(rep.telemetry.unwrap().boundaries, before);
        }
        let snap = frozen.telemetry();
        assert_eq!(snap.recalibration_moves, 0);
        assert_eq!(snap.launches, 5);
        assert_eq!(snap.selections.iter().sum::<u64>(), 5);

        // Default hysteresis: moves may happen (measurement legitimately
        // disagrees with the analytical model), but the table always keeps
        // tiling the declared axis exactly.
        let live = KernelManager::new(compiled.clone()).with_min_samples(2);
        for &n in &sizes {
            let input = vec![1.0f32; n];
            let snap = live
                .run(n as i64, &input, &[], opts)
                .unwrap()
                .telemetry
                .unwrap();
            let (lo, hi) = compiled.axis_range();
            assert_eq!(snap.boundaries.first().unwrap().0, lo);
            assert_eq!(snap.boundaries.last().unwrap().1, hi);
            for w in snap.boundaries.windows(2) {
                assert_eq!(w[0].1 + 1, w[1].0, "gap/overlap in {:?}", snap.boundaries);
            }
        }
    }

    /// The ISSUE's acceptance demo: the model deliberately mispredicts a
    /// break-even point (variant 0's cost skewed 5x low, so its region
    /// swallows its neighbor's); measured feedback converges the selector
    /// to the measured-faster variant within a handful of launches, and
    /// the telemetry counters prove the recalibration happened.
    #[test]
    fn kmu_converges_to_measured_faster_variant() {
        let compiled = compiled_sum();
        assert!(compiled.variant_count() >= 2, "need a boundary to move");
        let true_boundary = compiled.variants[1].lo;

        let mut skews = vec![1.0; compiled.variant_count()];
        skews[0] = 0.2; // model claims variant 0 is 5x cheaper than it is
        let kmu = KernelManager::new(compiled.clone())
            .with_min_samples(3)
            .with_model_skew(skews);
        let skewed_boundary = kmu.telemetry().boundaries[1].0;
        assert!(
            skewed_boundary > true_boundary,
            "skewed model must overextend variant 0: {skewed_boundary} vs {true_boundary}"
        );

        // A disputed input: the skewed table says variant 0, measurement
        // says variant 1.
        let x = ((true_boundary as f64) * (skewed_boundary as f64)).sqrt() as i64;
        assert!(x > true_boundary && x < skewed_boundary);
        let input = vec![1.0f32; x as usize];
        let opts = RunOptions::serial(ExecMode::SampledStats(32));
        let forced0 = compiled
            .run_opts(x, &input, &[], opts.with_variant(0), None)
            .unwrap();
        let forced1 = compiled
            .run_opts(x, &input, &[], opts.with_variant(1), None)
            .unwrap();
        assert!(
            forced1.time_us < forced0.time_us,
            "variant 1 must measure faster at x={x}: {} vs {}",
            forced1.time_us,
            forced0.time_us
        );

        let mut converged_at = None;
        for launch in 0..12 {
            let rep = kmu.run(x, &input, &[], opts).unwrap();
            if rep.variant_index == 1 {
                converged_at = Some(launch);
                break;
            }
        }
        let converged_at = converged_at.expect("KMU converged to the measured-faster variant");
        assert!(
            converged_at <= 6,
            "convergence took {converged_at} launches"
        );

        let snap = kmu.telemetry();
        assert!(snap.recalibration_moves >= 1, "a boundary must have moved");
        assert!(
            snap.boundaries[1].0 <= x,
            "recalibrated boundary {} must hand x={x} to variant 1",
            snap.boundaries[1].0
        );
        assert!(snap.selections[0] >= 1 && snap.selections[1] >= 1);
        assert!(
            snap.mean_model_error > 1.0,
            "a 5x misprediction shows up as model error: {}",
            snap.mean_model_error
        );
        // Recalibration stays within the declared range and keeps tiling.
        let (lo, hi) = compiled.axis_range();
        assert_eq!(snap.boundaries.first().unwrap().0, lo);
        assert_eq!(snap.boundaries.last().unwrap().1, hi);
        for w in snap.boundaries.windows(2) {
            assert_eq!(w[0].1 + 1, w[1].0);
        }
    }

    #[test]
    fn concurrent_runs_keep_the_table_tiling() {
        // Many threads recording measurements and recalibrating at once:
        // boundary moves are solved outside the state lock and re-validated
        // before applying, so a stale solution must never break the tiling
        // invariant or lose the axis endpoints.
        let compiled = compiled_sum();
        let (lo, hi) = compiled.axis_range();
        let kmu = KernelManager::new(compiled).with_min_samples(2);
        let opts = RunOptions::serial(ExecMode::SampledStats(16));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let kmu = &kmu;
                scope.spawn(move || {
                    for n in [256usize, 1024, 4096, 16384] {
                        let n = n << (t % 2);
                        let input = vec![1.0f32; n];
                        let snap = kmu
                            .run(n as i64, &input, &[], opts)
                            .unwrap()
                            .telemetry
                            .unwrap();
                        assert_eq!(snap.boundaries.first().unwrap().0, lo);
                        assert_eq!(snap.boundaries.last().unwrap().1, hi);
                        for w in snap.boundaries.windows(2) {
                            assert_eq!(w[0].1 + 1, w[1].0, "gap/overlap in {:?}", snap.boundaries);
                        }
                    }
                });
            }
        });
        let snap = kmu.telemetry();
        assert_eq!(snap.launches, 16);
        assert_eq!(snap.selections.iter().sum::<u64>(), 16);
    }

    #[test]
    fn forced_variants_compute_identical_results() {
        // Selection changes must never change results: every variant is
        // the same function. (The conformance suite pins this across
        // engines; this pins it across the table.)
        let compiled = compiled_sum();
        let n = 8192usize;
        let input: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
        let baseline = compiled.run(n as i64, &input).unwrap();
        for v in 0..compiled.variant_count() {
            let forced = compiled
                .run_opts(
                    n as i64,
                    &input,
                    &[],
                    RunOptions::default().with_variant(v),
                    None,
                )
                .unwrap();
            assert_eq!(forced.variant_index, v);
            let expected: f32 = input.iter().sum();
            assert!(
                (forced.output[0] - expected).abs() <= 1e-3 * expected,
                "variant {v}: {} vs {expected}",
                forced.output[0]
            );
            assert_eq!(forced.output.len(), baseline.output.len());
        }
    }

    /// An injector with an on/off switch: while hot it rejects every
    /// launch; cold it is inert. Lets a test script "the whole device is
    /// failing, then recovers" without counting consultations.
    #[derive(Debug)]
    struct Switchable {
        hot: AtomicBool,
        handed: AtomicU64,
    }

    impl Switchable {
        fn new(hot: bool) -> Switchable {
            Switchable {
                hot: AtomicBool::new(hot),
                handed: AtomicU64::new(0),
            }
        }
    }

    impl FaultInjector for Switchable {
        fn on_launch(&self, _kernel: &str) -> Option<Fault> {
            if self.hot.load(Ordering::Relaxed) {
                self.handed.fetch_add(1, Ordering::Relaxed);
                Some(Fault::LaunchReject)
            } else {
                None
            }
        }

        fn injected(&self) -> u64 {
            self.handed.load(Ordering::Relaxed)
        }
    }

    #[test]
    fn kmu_quarantines_failing_variants_and_readmits_after_probe() {
        let kmu = KernelManager::new(compiled_sum()).with_quarantine(1, 2);
        let inj = Switchable::new(true);
        let n = 4096usize;
        let input = vec![1.0f32; n];
        let opts = RunOptions::serial(ExecMode::Full).with_faults(&inj);

        // Tick 1: the injector rejects every launch, so every admitted
        // variant fails and trips its breaker (threshold 1), and the
        // serial last resort fails too — the whole ladder is exhausted.
        let err = kmu.run(n as i64, &input, &[], opts).unwrap_err();
        assert!(matches!(err, Error::LaunchFailed { .. }), "{err}");
        let snap = kmu.telemetry();
        assert!(snap.quarantines >= 1);
        assert!(!snap.quarantined_variants.is_empty());
        assert!(snap.faults_observed > 0 && snap.retries > 0);
        assert!(snap.faults_injected > 0);
        assert_eq!(snap.launches, 0, "no launch completed");

        // The fault clears, but the breakers are still open (window 2):
        // tick 2 completes on the degraded serial last resort, correctly.
        inj.hot.store(false, Ordering::Relaxed);
        let rep = kmu.run(n as i64, &input, &[], opts).unwrap();
        assert!((rep.output[0] - n as f32).abs() <= 1e-3 * n as f32);
        let snap = rep.telemetry.clone().expect("kmu run carries telemetry");
        assert!(snap.degraded_runs >= 1);
        assert!(snap.fallbacks >= 1);
        assert!(!snap.quarantined_variants.is_empty());

        // Tick 3: the window elapsed — the primary is probed half-open,
        // the probe succeeds, and the variant is re-admitted.
        let rep = kmu.run(n as i64, &input, &[], opts).unwrap();
        let snap = rep.telemetry.expect("kmu run carries telemetry");
        assert!(snap.half_open_probes >= 1);
        assert!(snap.readmissions >= 1);
        assert!(snap.quarantined_variants.is_empty());
    }

    /// An injector that rejects only the first `limit` consultations: with
    /// `limit` = the runtime's per-launch attempt budget, it deterministically
    /// kills exactly the first candidate the manager tries (its first kernel
    /// burns the whole budget) and lets every later candidate through.
    #[derive(Debug)]
    struct FirstN {
        limit: u64,
        seen: AtomicU64,
        handed: AtomicU64,
    }

    impl FirstN {
        fn new(limit: u64) -> FirstN {
            FirstN {
                limit,
                seen: AtomicU64::new(0),
                handed: AtomicU64::new(0),
            }
        }
    }

    impl FaultInjector for FirstN {
        fn on_launch(&self, _kernel: &str) -> Option<Fault> {
            if self.seen.fetch_add(1, Ordering::Relaxed) < self.limit {
                self.handed.fetch_add(1, Ordering::Relaxed);
                Some(Fault::LaunchReject)
            } else {
                None
            }
        }

        fn injected(&self) -> u64 {
            self.handed.load(Ordering::Relaxed)
        }
    }

    #[test]
    fn kmu_falls_back_past_a_flaky_variant_then_stops_launching_it() {
        let compiled = compiled_sum();
        assert!(compiled.variant_count() >= 2, "need a fallback target");
        let kmu = KernelManager::new(compiled).with_quarantine(2, 64);
        let x = kmu.telemetry().boundaries[0].0; // primary = variant 0
        let input = vec![1.0f32; x as usize];
        let expected: f32 = x as f32;
        let budget = u64::from(crate::runtime::RetryPolicy::default().max_attempts);

        // Runs 1-2: the primary burns its whole attempt budget on a
        // rejected first kernel, the run falls back to the next variant and
        // still computes the right answer; the second failure trips the
        // primary's breaker.
        for _ in 0..2 {
            let inj = FirstN::new(budget);
            let rep = kmu
                .run(
                    x,
                    &input,
                    &[],
                    RunOptions::serial(ExecMode::Full).with_faults(&inj),
                )
                .unwrap();
            assert_ne!(
                rep.variant_index, 0,
                "must not complete on the flaky variant"
            );
            assert!((rep.output[0] - expected).abs() <= 1e-3 * expected);
            assert_eq!(inj.injected(), budget, "primary burned its budget");
        }
        let snap = kmu.telemetry();
        assert_eq!(snap.quarantined_variants, vec![0]);
        assert_eq!(snap.quarantines, 1);
        assert!(snap.fallbacks >= 2);
        assert!(snap.faults_observed >= 2 * budget && snap.retries >= 2);

        // Run 3 (fault-free): the quarantined variant is skipped outright —
        // selection goes straight to a healthy neighbor.
        let rep = kmu
            .run(x, &input, &[], RunOptions::serial(ExecMode::Full))
            .unwrap();
        assert_ne!(rep.variant_index, 0);
        assert!((rep.output[0] - expected).abs() <= 1e-3 * expected);
        let snap = rep.telemetry.expect("kmu run carries telemetry");
        assert_eq!(snap.quarantined_variants, vec![0], "window 64 still open");
        assert!(snap.degraded_runs == 0, "healthy fallback, not degraded");
    }

    #[test]
    fn kmu_cache_engages_only_for_sampled_exec() {
        let compiled = compiled_sum();
        let kmu = KernelManager::new(compiled);
        let n = 4096usize;
        let input = vec![1.0f32; n];
        // Full mode: no cache traffic.
        kmu.run(n as i64, &input, &[], RunOptions::serial(ExecMode::Full))
            .unwrap();
        assert_eq!(kmu.cache().hits() + kmu.cache().misses(), 0);
        // SampledExec: cold misses, then hits.
        let opts = RunOptions::serial(ExecMode::SampledExec(8));
        let cold = kmu.run(n as i64, &input, &[], opts).unwrap();
        assert!(cold.cache_misses > 0);
        let warm = kmu.run(n as i64, &input, &[], opts).unwrap();
        assert_eq!(warm.cache_misses, 0);
        assert_eq!(warm.cache_hits, cold.cache_misses);
        let snap = kmu.telemetry();
        assert_eq!(snap.cache_hits, warm.cache_hits);
        assert_eq!(snap.cache_misses, cold.cache_misses);
    }
}
