//! Rate-conditioned re-scheduling: the runtime half of dynamic-rate
//! support.
//!
//! `streamir` lets actors declare a rate parameter as *dynamic* over an
//! interval ([`RateInterval`]) and partitions the graph into
//! rate-conditioned regions ([`streamir::schedule::partition_rate_regions`]).
//! This module plans each dynamic region against a *window* inside its
//! declared interval and keeps the plan honest at runtime:
//!
//! * a [`RateGovernor`] watches the per-firing rate against the planned
//!   window and — with hysteresis, so oscillating traffic cannot thrash —
//!   proposes a new window once the observed rate has *sustainably* left
//!   the old one;
//! * a [`DynamicRegion`] owns the region's [`KernelManager`] and swaps in
//!   a freshly planned one when the governor commits a proposal, reusing
//!   [`crate::compile_with_store`] so revisited regimes hit the artifact
//!   store instead of re-planning, and carrying learned KMU state across
//!   the swap through the same store;
//! * a [`DynamicPipeline`] splits a program along its region partition and
//!   re-schedules **only the affected region** — static regions keep their
//!   plan for the life of the pipeline.
//!
//! Windows are quantized to powers of two around the observed rate, so a
//! regime that recurs proposes the *same* window every time — the same
//! content hash, and therefore a plan-artifact hit on every revisit.
//!
//! Firings whose rate is outside the current window never fail and are
//! never dropped: they are served through the current plan's clamped
//! variant selection (possibly mis-tuned, always correct) while the
//! governor decides whether the traffic shift is real.

use std::collections::BTreeSet;
use std::sync::Arc;

use gpu_sim::DeviceSpec;
use streamir::error::{Error, Result};
use streamir::graph::StreamNode;
use streamir::rates::RateInterval;
use streamir::schedule::merged_rate_intervals;
use streamir::Program;

use crate::artifact::ArtifactStore;
use crate::kmu::KernelManager;
use crate::plan::{compile_with_options, compile_with_store, CompileOptions, InputAxis};
use crate::runtime::{ExecutionReport, RunOptions, StateBinding};
use crate::telemetry::TelemetrySnapshot;

/// Hysteresis policy of the rate governor: when does a window exit become
/// a re-plan?
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReschedPolicy {
    /// Consecutive out-of-window firings required before a re-plan is
    /// proposed. A single outlier (or an oscillation that re-enters the
    /// window) resets the streak and never re-plans.
    pub exit_streak: u32,
    /// Minimum firings between two committed re-plans. Even a sustained
    /// exit immediately after a re-plan waits this long — the second half
    /// of the thrash protection.
    pub cooldown: u64,
    /// Geometric half-width of a proposed window: the window spans
    /// `[rate / spread, rate * spread]` (power-of-two quantized) around
    /// the smoothed exit rate. Must be >= 1.
    pub spread: f64,
    /// EWMA weight of the newest sample when smoothing the exit rate a
    /// proposal centers on (in `(0, 1]`).
    pub alpha: f64,
}

impl Default for ReschedPolicy {
    fn default() -> Self {
        ReschedPolicy {
            exit_streak: 3,
            cooldown: 8,
            spread: 4.0,
            alpha: 0.5,
        }
    }
}

/// What one observed firing did to the governor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateEvent {
    /// The firing's rate was outside the planned window.
    pub exited: bool,
    /// A new window the caller should re-plan against — set only when the
    /// exit streak and cooldown thresholds are both met.
    pub proposal: Option<RateInterval>,
}

/// Pure per-region state machine deciding *when* to re-plan and against
/// *which* window. Deterministic: its decisions depend only on the
/// observed rate sequence and the policy, never on time or randomness.
#[derive(Debug, Clone)]
pub struct RateGovernor {
    declared: RateInterval,
    window: RateInterval,
    policy: ReschedPolicy,
    /// Consecutive out-of-window firings (resets on any in-window firing).
    streak: u32,
    /// EWMA of the rates seen during the current exit streak.
    streak_mean: f64,
    /// Firings since the last committed re-plan.
    since_commit: u64,
    observations: u64,
    exits: u64,
    commits: u64,
}

impl RateGovernor {
    /// Govern `declared` with `policy`, starting from the window planned
    /// for `initial_rate` (see [`RateGovernor::window_for`]).
    pub fn new(declared: RateInterval, initial_rate: i64, policy: ReschedPolicy) -> RateGovernor {
        let mut g = RateGovernor {
            declared,
            window: declared,
            policy,
            streak: 0,
            streak_mean: 0.0,
            // No commit has happened yet, so no cooldown is pending.
            since_commit: policy.cooldown,
            observations: 0,
            exits: 0,
            commits: 0,
        };
        g.window = g.window_for(initial_rate as f64);
        g
    }

    /// The currently planned window.
    pub fn window(&self) -> RateInterval {
        self.window
    }

    /// The declared interval the window always stays inside.
    pub fn declared(&self) -> RateInterval {
        self.declared
    }

    /// The governing policy.
    pub fn policy(&self) -> ReschedPolicy {
        self.policy
    }

    /// Firings observed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Firings whose rate was outside the window at observation time.
    pub fn exits(&self) -> u64 {
        self.exits
    }

    /// Committed re-plans.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// The power-of-two quantized window for a rate: the smallest
    /// `[2^a, 2^b]` window containing `[rate / spread, rate * spread]`,
    /// clamped into the declared interval. Quantization makes the mapping
    /// from traffic regime to window (and so to plan content hash)
    /// deterministic and coarse — recurring regimes re-propose identical
    /// windows, which re-plans resolve from the artifact store.
    pub fn window_for(&self, rate: f64) -> RateInterval {
        let rate = rate.clamp(self.declared.lo as f64, self.declared.hi as f64);
        let spread = self.policy.spread.max(1.0);
        let lo = pow2_floor(rate / spread).max(self.declared.lo);
        let hi = pow2_ceil(rate * spread).min(self.declared.hi);
        if lo > hi {
            // Degenerate declared interval (narrower than one quantum).
            return self.declared;
        }
        RateInterval { lo, hi }
    }

    /// Feed one observed firing rate through the governor.
    ///
    /// In-window firings reset the exit streak. Out-of-window firings
    /// extend it; once the streak reaches `policy.exit_streak` *and* at
    /// least `policy.cooldown` firings have passed since the last commit,
    /// the event carries a window proposal. The governor itself does not
    /// switch windows — the caller re-plans and then calls
    /// [`RateGovernor::commit`], so a failed re-plan leaves the governor
    /// ready to re-propose.
    pub fn observe(&mut self, rate: i64) -> RateEvent {
        self.observations += 1;
        self.since_commit = self.since_commit.saturating_add(1);
        if self.window.contains(rate) {
            self.streak = 0;
            return RateEvent {
                exited: false,
                proposal: None,
            };
        }
        self.exits += 1;
        self.streak_mean = if self.streak == 0 {
            rate as f64
        } else {
            self.policy.alpha * rate as f64 + (1.0 - self.policy.alpha) * self.streak_mean
        };
        self.streak = self.streak.saturating_add(1);
        let armed = self.streak >= self.policy.exit_streak.max(1)
            && self.since_commit >= self.policy.cooldown;
        let proposal = if armed {
            let w = self.window_for(self.streak_mean);
            // A proposal identical to the current window would re-plan to
            // the same plan — suppress it (the rate is outside even the
            // declared interval's best window; clamped serving handles it).
            (w != self.window).then_some(w)
        } else {
            None
        };
        RateEvent {
            exited: true,
            proposal,
        }
    }

    /// Record that the caller re-planned against `window`. Resets the exit
    /// streak and starts a new cooldown period.
    pub fn commit(&mut self, window: RateInterval) {
        self.window = window;
        self.streak = 0;
        self.since_commit = 0;
        self.commits += 1;
    }
}

/// Largest power of two `<= v` (at least 1).
fn pow2_floor(v: f64) -> i64 {
    let v = v.max(1.0).min(2f64.powi(62));
    1i64 << (v.log2().floor() as u32).min(62)
}

/// Smallest power of two `>= v` (at least 1).
fn pow2_ceil(v: f64) -> i64 {
    let v = v.max(1.0).min(2f64.powi(62));
    1i64 << (v.log2().ceil() as u32).min(62)
}

/// One dynamic region at runtime: a compiled plan conditioned on a rate
/// window, a [`KernelManager`] running it, and a [`RateGovernor`] deciding
/// when to throw both away and re-plan.
///
/// Telemetry is cumulative across re-plans: snapshots of retired managers
/// are folded into every [`DynamicRegion::telemetry`] result, with
/// `reschedules` counted by the region itself.
#[derive(Debug)]
pub struct DynamicRegion {
    program: Program,
    device: DeviceSpec,
    options: CompileOptions,
    store: Option<Arc<ArtifactStore>>,
    /// The single dynamic parameter governing this region's rates.
    param: String,
    governor: RateGovernor,
    kmu: KernelManager,
    /// Folded telemetry of managers retired by re-plans.
    retired: Option<TelemetrySnapshot>,
    reschedules: u64,
    /// Firings served through clamped selection because their rate was
    /// outside the current plan's window.
    clamped_runs: u64,
    /// Wall-clock µs spent planning (initial compile plus every re-plan),
    /// so callers can charge re-scheduling overhead against its payoff.
    plan_wall_us: f64,
    /// Recalibration hysteresis override, applied to the live manager and
    /// every re-planned one (tests freeze it for replay determinism).
    hysteresis: Option<perfmodel::Hysteresis>,
}

impl DynamicRegion {
    /// Plan `program` for the window around `initial_rate` on `device`.
    ///
    /// The program must declare exactly one dynamic rate parameter (see
    /// [`streamir::ActorDef::with_rate_interval`]); its merged declared
    /// interval bounds every window this region will ever plan against.
    /// With a `store`, plans are resolved through
    /// [`crate::compile_with_store`] and learned KMU state is persisted at
    /// each swap — revisited regimes warm-start from disk.
    ///
    /// # Errors
    ///
    /// [`Error::Semantic`] unless exactly one dynamic parameter is
    /// declared; otherwise whatever compilation returns.
    pub fn new(
        program: &Program,
        device: &DeviceSpec,
        options: CompileOptions,
        policy: ReschedPolicy,
        initial_rate: i64,
        store: Option<Arc<ArtifactStore>>,
    ) -> Result<DynamicRegion> {
        let dynamic = merged_rate_intervals(program)?;
        let (param, declared) = match dynamic.len() {
            1 => {
                let (p, iv) = dynamic.into_iter().next().expect("len checked");
                (p, iv)
            }
            0 => {
                return Err(Error::Semantic(
                    "dynamic region needs a dynamic rate declaration \
                     (ActorDef::with_rate_interval)"
                        .into(),
                ))
            }
            n => {
                return Err(Error::Semantic(format!(
                    "dynamic region must be governed by exactly one rate \
                     parameter, found {n}"
                )))
            }
        };
        let governor = RateGovernor::new(declared, initial_rate, policy);
        let t = std::time::Instant::now();
        let kmu = plan_manager(
            program,
            device,
            options,
            store.as_ref(),
            &param,
            governor.window(),
        )?;
        let plan_wall_us = t.elapsed().as_secs_f64() * 1e6;
        Ok(DynamicRegion {
            program: program.clone(),
            device: device.clone(),
            options,
            store,
            param,
            governor,
            kmu,
            retired: None,
            reschedules: 0,
            clamped_runs: 0,
            plan_wall_us,
            hysteresis: None,
        })
    }

    /// Pin the recalibration hysteresis of the live manager and of every
    /// manager a future re-plan installs. Tests freeze it
    /// (`min_rel_shift: INFINITY`) so wall-clock measurement noise cannot
    /// move variant boundaries between replays.
    pub fn with_kmu_hysteresis(mut self, hysteresis: perfmodel::Hysteresis) -> DynamicRegion {
        self.hysteresis = Some(hysteresis);
        self.kmu.set_hysteresis(hysteresis);
        self
    }

    /// Compile the region's program for `window` and wrap it in a manager
    /// declaring that window as its rate window.
    fn build_manager(&self, window: RateInterval) -> Result<KernelManager> {
        let mut kmu = plan_manager(
            &self.program,
            &self.device,
            self.options,
            self.store.as_ref(),
            &self.param,
            window,
        )?;
        if let Some(h) = self.hysteresis {
            kmu.set_hysteresis(h);
        }
        Ok(kmu)
    }

    /// Retire the current manager and install one planned for `window`.
    /// On a compile error the current plan stays; the governor is not
    /// committed, so the next sustained exit re-proposes.
    fn replan(&mut self, window: RateInterval) -> Result<()> {
        let t = std::time::Instant::now();
        let next = self.build_manager(window)?;
        self.plan_wall_us += t.elapsed().as_secs_f64() * 1e6;
        let _ = self.kmu.persist_learned();
        let outgoing = self.kmu.telemetry();
        match &mut self.retired {
            Some(acc) => acc.merge(&outgoing, self.store.is_some()),
            None => {
                let mut acc = outgoing;
                acc.boundaries.clear();
                acc.quarantined_variants.clear();
                self.retired = Some(acc);
            }
        }
        self.kmu = next;
        self.governor.commit(window);
        self.reschedules += 1;
        Ok(())
    }

    /// Run one firing at rate `x`.
    ///
    /// The governor observes `x` first; if that makes a window proposal,
    /// the region re-plans *before* serving the firing. In-window firings
    /// go through the [`KernelManager`] (recalibration, degradation
    /// ladder, quarantine). Out-of-window firings are served through the
    /// current plan's clamped variant selection — executed at the real
    /// `x`, so outputs are exact — and tallied in `clamped_runs`, with the
    /// manager counting the `rate_exits` telemetry event.
    ///
    /// # Errors
    ///
    /// Re-plan compile errors and the run errors of
    /// [`KernelManager::run`] / [`crate::CompiledProgram::run_opts`].
    pub fn run(
        &mut self,
        x: i64,
        input: &[f32],
        state: &[StateBinding],
        opts: RunOptions<'_>,
    ) -> Result<ExecutionReport> {
        let event = self.governor.observe(x);
        if let Some(window) = event.proposal {
            self.replan(window)?;
        }
        let (lo, hi) = self.kmu.program().axis_range();
        let mut report = if x >= lo && x <= hi {
            self.kmu.run(x, input, state, opts)?
        } else {
            // Outside the plan's axis: the manager cannot admit it (and
            // run() tallies the rate exit); serve it through clamped
            // selection on the same compiled program.
            let _ = self.kmu.run(x, input, state, opts);
            self.clamped_runs += 1;
            match self.kmu.program().run_opts(x, input, state, opts, None) {
                Ok(r) => r,
                Err(Error::LaunchFailed { .. }) => {
                    // Same degraded-but-correct last resort as the
                    // manager's ladder: serial engine, doubled retry
                    // budget. Variant fallback is unavailable here — a
                    // forced variant rejects out-of-axis `x` by contract.
                    let mut degraded = RunOptions {
                        policy: gpu_sim::ExecPolicy::Serial,
                        ..opts
                    };
                    degraded.retry.max_attempts =
                        degraded.retry.max_attempts.max(1).saturating_mul(2);
                    self.kmu
                        .program()
                        .run_opts(x, input, state, degraded, None)?
                }
                Err(e) => return Err(e),
            }
        };
        if let Some(t) = &mut report.telemetry {
            self.fold_region_counters(t);
        } else {
            report.telemetry = Some(self.telemetry());
        }
        Ok(report)
    }

    /// Cumulative telemetry: retired managers' snapshots folded into the
    /// live manager's, with region-level counters patched in. The
    /// boundaries and quarantine list are the *live* table's.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let mut snap = self.kmu.telemetry();
        self.fold_region_counters(&mut snap);
        snap
    }

    fn fold_region_counters(&self, snap: &mut TelemetrySnapshot) {
        if let Some(retired) = &self.retired {
            let live_boundaries = snap.boundaries.clone();
            let live_quarantined = snap.quarantined_variants.clone();
            let mut acc = retired.clone();
            acc.merge(snap, self.store.is_some());
            acc.boundaries = live_boundaries;
            acc.quarantined_variants = live_quarantined;
            *snap = acc;
        }
        snap.reschedules = self.reschedules;
    }

    /// The live manager (plan, table, learned state of the current window).
    pub fn manager(&self) -> &KernelManager {
        &self.kmu
    }

    /// The rate governor (window, streak/cooldown state, counters).
    pub fn governor(&self) -> &RateGovernor {
        &self.governor
    }

    /// The dynamic parameter governing this region.
    pub fn param(&self) -> &str {
        &self.param
    }

    /// Firings served through clamped selection (rate outside the plan).
    pub fn clamped_runs(&self) -> u64 {
        self.clamped_runs
    }

    /// Committed re-plans.
    pub fn reschedules(&self) -> u64 {
        self.reschedules
    }

    /// Wall-clock µs spent planning so far (initial compile + re-plans).
    pub fn plan_wall_us(&self) -> f64 {
        self.plan_wall_us
    }

    /// Persist the live manager's learned state to the attached store
    /// (no-op without one).
    pub fn persist_learned(&self) -> std::result::Result<(), crate::artifact::ArtifactError> {
        self.kmu.persist_learned()
    }
}

/// Compile `program` for `window` on `device` and wrap the plan in a
/// [`KernelManager`] declaring that window as its rate window. With a
/// store, the plan resolves content-addressed and learned KMU state
/// warm-starts from disk.
fn plan_manager(
    program: &Program,
    device: &DeviceSpec,
    options: CompileOptions,
    store: Option<&Arc<ArtifactStore>>,
    param: &str,
    window: RateInterval,
) -> Result<KernelManager> {
    let axis = InputAxis::total_size(param, window.lo, window.hi);
    let compiled = match store {
        Some(store) => compile_with_store(program, device, &axis, options, store)?,
        None => compile_with_options(program, device, &axis, options)?,
    };
    let mut kmu = KernelManager::new(compiled).with_rate_window(window.lo, window.hi);
    if let Some(store) = store {
        kmu = kmu.with_artifacts(Arc::clone(store));
    }
    Ok(kmu)
}

/// One stage of a [`DynamicPipeline`].
#[derive(Debug)]
enum Stage {
    /// Rate-static: planned once over the declared interval, never
    /// re-planned. Selection still adapts per firing via clamped lookup.
    Static {
        program: Program,
        compiled: Box<crate::plan::CompiledProgram>,
    },
    /// Rate-dynamic: owns a [`DynamicRegion`].
    Dynamic {
        program: Program,
        region: Box<DynamicRegion>,
    },
}

/// The report of one [`DynamicPipeline`] firing: the final output plus
/// each stage's execution report, in pipeline order.
#[derive(Debug)]
pub struct PipelineReport {
    /// Output of the last stage.
    pub output: Vec<f32>,
    /// Per-stage reports, in pipeline order.
    pub stages: Vec<ExecutionReport>,
}

/// A program split along its rate-region partition: consecutive top-level
/// pipeline children with the same dynamic-rate dependence form one stage.
/// Dynamic stages re-plan independently through their own
/// [`DynamicRegion`]; static stages are planned exactly once — a rate
/// regime change re-schedules **only the affected region**.
#[derive(Debug)]
pub struct DynamicPipeline {
    stages: Vec<Stage>,
}

impl DynamicPipeline {
    /// Split `program` into rate-conditioned stages and plan each.
    ///
    /// All dynamic stages must be governed by the same single parameter
    /// (the one whose per-firing value [`DynamicPipeline::run`] takes).
    ///
    /// # Errors
    ///
    /// [`Error::Semantic`] when dynamic declarations are missing or
    /// involve more than one parameter; otherwise compile errors.
    pub fn new(
        program: &Program,
        device: &DeviceSpec,
        options: CompileOptions,
        policy: ReschedPolicy,
        initial_rate: i64,
        store: Option<Arc<ArtifactStore>>,
    ) -> Result<DynamicPipeline> {
        let dynamic = merged_rate_intervals(program)?;
        if dynamic.len() != 1 {
            return Err(Error::Semantic(format!(
                "dynamic pipeline must be governed by exactly one rate \
                 parameter, found {}",
                dynamic.len()
            )));
        }
        let (param, declared) = dynamic.into_iter().next().expect("len checked");

        let children: Vec<StreamNode> = match &program.graph {
            StreamNode::Pipeline(children) => children.clone(),
            other => vec![other.clone()],
        };
        // Group consecutive children by whether their rates depend on the
        // dynamic parameter.
        let mut groups: Vec<(bool, Vec<StreamNode>)> = Vec::new();
        for child in children {
            let dynamic_child = node_mentions_param(program, &child, &param);
            match groups.last_mut() {
                Some((d, nodes)) if *d == dynamic_child => nodes.push(child),
                _ => groups.push((dynamic_child, vec![child])),
            }
        }

        let mut stages = Vec::with_capacity(groups.len());
        for (i, (dynamic_group, nodes)) in groups.into_iter().enumerate() {
            let sub = Program {
                name: format!("{}_r{i}", program.name),
                params: program.params.clone(),
                actors: program.actors.clone(),
                graph: StreamNode::Pipeline(nodes),
            };
            if dynamic_group {
                let region =
                    DynamicRegion::new(&sub, device, options, policy, initial_rate, store.clone())?;
                stages.push(Stage::Dynamic {
                    program: sub,
                    region: Box::new(region),
                });
            } else {
                // A static stage's rates never mention the dynamic
                // parameter, so one plan over the declared interval covers
                // every regime.
                let axis = InputAxis::total_size(&param, declared.lo, declared.hi);
                let compiled = match &store {
                    Some(store) => compile_with_store(&sub, device, &axis, options, store)?,
                    None => compile_with_options(&sub, device, &axis, options)?,
                };
                stages.push(Stage::Static {
                    program: sub,
                    compiled: Box::new(compiled),
                });
            }
        }
        Ok(DynamicPipeline { stages })
    }

    /// Run one firing at rate `x` through every stage in order, feeding
    /// each stage's output to the next.
    ///
    /// # Errors
    ///
    /// The first failing stage's error.
    pub fn run(
        &mut self,
        x: i64,
        input: &[f32],
        state: &[StateBinding],
        opts: RunOptions<'_>,
    ) -> Result<PipelineReport> {
        let mut current: Vec<f32> = input.to_vec();
        let mut reports = Vec::with_capacity(self.stages.len());
        for stage in &mut self.stages {
            let report = match stage {
                Stage::Static { program, compiled } => {
                    let bound = filter_state(program, state);
                    compiled.run_opts(x, &current, &bound, opts, None)?
                }
                Stage::Dynamic { program, region } => {
                    let bound = filter_state(program, state);
                    region.run(x, &current, &bound, opts)?
                }
            };
            current = report.output.clone();
            reports.push(report);
        }
        Ok(PipelineReport {
            output: current,
            stages: reports,
        })
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The dynamic regions, in pipeline order.
    pub fn regions(&self) -> impl Iterator<Item = &DynamicRegion> {
        self.stages.iter().filter_map(|s| match s {
            Stage::Dynamic { region, .. } => Some(region.as_ref()),
            Stage::Static { .. } => None,
        })
    }

    /// Content hashes of the static stages' plans, in pipeline order.
    /// These never change over the pipeline's lifetime — the witness that
    /// re-scheduling touches only the affected region.
    pub fn static_plan_hashes(&self) -> Vec<u64> {
        self.stages
            .iter()
            .filter_map(|s| match s {
                Stage::Static { compiled, .. } => Some(compiled.content_hash()),
                Stage::Dynamic { .. } => None,
            })
            .collect()
    }

    /// Total committed re-plans across all dynamic regions.
    pub fn reschedules(&self) -> u64 {
        self.regions().map(DynamicRegion::reschedules).sum()
    }
}

/// Does any rate reachable from `node` mention `param`?
fn node_mentions_param(program: &Program, node: &StreamNode, param: &str) -> bool {
    fn actor_names<'a>(node: &'a StreamNode, out: &mut BTreeSet<&'a str>) {
        match node {
            StreamNode::Actor(name) => {
                out.insert(name.as_str());
            }
            StreamNode::Pipeline(children) => {
                for c in children {
                    actor_names(c, out);
                }
            }
            StreamNode::SplitJoin { branches, .. } => {
                for b in branches {
                    actor_names(b, out);
                }
            }
        }
    }
    fn weights_mention(node: &StreamNode, param: &str) -> bool {
        match node {
            StreamNode::Actor(_) => false,
            StreamNode::Pipeline(children) => children.iter().any(|c| weights_mention(c, param)),
            StreamNode::SplitJoin {
                splitter,
                branches,
                joiner,
            } => {
                let split = match splitter {
                    streamir::Splitter::Duplicate => false,
                    streamir::Splitter::RoundRobin(ws) => {
                        ws.iter().any(|w| w.params().contains(&param))
                    }
                };
                let streamir::Joiner::RoundRobin(ws) = joiner;
                split
                    || ws.iter().any(|w| w.params().contains(&param))
                    || branches.iter().any(|b| weights_mention(b, param))
            }
        }
    }
    let mut names = BTreeSet::new();
    actor_names(node, &mut names);
    let actor_rates = names.iter().any(|n| {
        program.actor(n).is_some_and(|a| {
            [&a.work.pop, &a.work.push, &a.work.peek]
                .iter()
                .any(|r| r.params().contains(&param))
        })
    });
    actor_rates || weights_mention(node, param)
}

/// State bindings restricted to actors that exist in `program`.
fn filter_state(program: &Program, state: &[StateBinding]) -> Vec<StateBinding> {
    state
        .iter()
        .filter(|b| program.actor(&b.actor).is_some())
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::ExecMode;
    use streamir::parse::parse_program;

    fn iv(lo: i64, hi: i64) -> RateInterval {
        RateInterval::new(lo, hi).unwrap()
    }

    fn policy() -> ReschedPolicy {
        ReschedPolicy {
            exit_streak: 2,
            cooldown: 3,
            spread: 2.0,
            alpha: 0.5,
        }
    }

    #[test]
    fn governor_windows_are_quantized_and_bounded() {
        let g = RateGovernor::new(iv(16, 1 << 16), 1000, ReschedPolicy::default());
        let w = g.window();
        assert!(w.lo <= 1000 && 1000 <= w.hi, "initial window covers rate");
        assert!(w.lo >= 16 && w.hi <= 1 << 16, "window inside declared");
        assert!(w.lo.count_ones() == 1 || w.lo == 16);
        assert!(w.hi.count_ones() == 1 || w.hi == 1 << 16);
        // Identical rates map to identical windows (regime determinism).
        assert_eq!(g.window_for(900.0), g.window_for(900.0));
        // Rates clamp into the declared interval.
        let tiny = g.window_for(1.0);
        assert!(tiny.lo >= 16);
    }

    #[test]
    fn governor_requires_a_sustained_exit() {
        let mut g = RateGovernor::new(iv(1, 1 << 20), 256, policy());
        let w = g.window();
        // One outlier: exit recorded, no proposal (streak 1 < 2).
        let ev = g.observe(w.hi * 8);
        assert!(ev.exited && ev.proposal.is_none());
        // Back in window: streak resets.
        assert!(!g.observe(w.lo).exited);
        let ev = g.observe(w.hi * 8);
        assert!(ev.exited && ev.proposal.is_none(), "streak restarted at 1");
        // Second consecutive exit: streak 2 and cooldown satisfied.
        let ev = g.observe(w.hi * 8);
        assert!(ev.exited);
        let proposed = ev.proposal.expect("sustained exit proposes");
        assert!(proposed.contains(w.hi * 8));
        g.commit(proposed);
        assert_eq!(g.commits(), 1);
        assert_eq!(g.window(), proposed);
    }

    #[test]
    fn governor_cooldown_blocks_immediate_replan() {
        let mut g = RateGovernor::new(iv(1, 1 << 20), 256, policy());
        let w = g.window();
        g.observe(w.hi * 16);
        let p = g.observe(w.hi * 16).proposal.expect("proposes");
        g.commit(p);
        // Rates flip straight back: exits accrue but the cooldown (3)
        // must elapse before a proposal can fire again.
        let ev1 = g.observe(w.lo);
        let ev2 = g.observe(w.lo);
        assert!(ev1.exited && ev1.proposal.is_none());
        assert!(ev2.exited && ev2.proposal.is_none(), "cooldown holds");
        let ev3 = g.observe(w.lo);
        assert!(ev3.proposal.is_some(), "cooldown elapsed");
    }

    const DYN_SUM: &str = r#"pipeline DynSum(N) {
        actor Sum(pop N, push 1) {
            acc = 0.0;
            for i in 0..N { acc = acc + pop(); }
            push(acc);
        }
    }"#;

    fn dyn_sum_program(lo: i64, hi: i64) -> Program {
        let mut p = parse_program(DYN_SUM).unwrap();
        let a = p.actors.iter_mut().find(|a| a.name == "Sum").unwrap();
        a.dyn_rates.insert("N".into(), iv(lo, hi));
        p
    }

    #[test]
    fn region_requires_exactly_one_dynamic_param() {
        let p = parse_program(DYN_SUM).unwrap();
        let dev = DeviceSpec::tesla_c2050();
        let err = DynamicRegion::new(
            &p,
            &dev,
            CompileOptions::baseline(),
            ReschedPolicy::default(),
            256,
            None,
        );
        assert!(matches!(err, Err(Error::Semantic(_))));
    }

    #[test]
    fn region_replans_on_regime_change_and_serves_transients_clamped() {
        let p = dyn_sum_program(64, 1 << 18);
        let dev = DeviceSpec::tesla_c2050();
        let mut region =
            DynamicRegion::new(&p, &dev, CompileOptions::baseline(), policy(), 256, None).unwrap();
        let opts = RunOptions::serial(ExecMode::SampledStats(32));
        let first_window = region.governor().window();
        let input: Vec<f32> = (0..1 << 16).map(|i| (i % 7) as f32).collect();

        // Steady small regime: no exits, no re-plans.
        for _ in 0..4 {
            let rep = region.run(256, &input[..256], &[], opts).unwrap();
            assert_eq!(rep.output.len(), 1);
        }
        assert_eq!(region.reschedules(), 0);
        assert_eq!(region.governor().exits(), 0);

        // Regime flip to large sizes: the first exits are served clamped,
        // then the governor commits a re-plan.
        let big = 1 << 16;
        for _ in 0..6 {
            let rep = region.run(big, &input[..big as usize], &[], opts).unwrap();
            let expected: f32 = input[..big as usize].iter().sum();
            assert!((rep.output[0] - expected).abs() / expected.abs() < 1e-3);
        }
        assert_eq!(region.reschedules(), 1, "one re-plan for one flip");
        assert!(region.clamped_runs() >= 1, "transients served clamped");
        assert_ne!(region.governor().window(), first_window);
        assert!(region.governor().window().contains(big));

        let t = region.telemetry();
        assert_eq!(t.reschedules, 1);
        assert!(t.rate_exits >= 1);
        // Cumulative across the swap: every firing is accounted for.
        assert_eq!(t.launches + region.clamped_runs(), 10);
    }

    #[test]
    fn pipeline_replans_only_the_affected_region() {
        const SRC: &str = r#"pipeline Mix(N) {
            actor Scale(pop 1, push 1) {
                x = pop();
                push(x * 2.0);
            }
            actor Sum(pop N, push 1) {
                acc = 0.0;
                for i in 0..N { acc = acc + pop(); }
                push(acc);
            }
        }"#;
        let mut p = parse_program(SRC).unwrap();
        let a = p.actors.iter_mut().find(|a| a.name == "Sum").unwrap();
        a.dyn_rates.insert("N".into(), iv(64, 1 << 18));

        let dev = DeviceSpec::tesla_c2050();
        let mut pipe =
            DynamicPipeline::new(&p, &dev, CompileOptions::baseline(), policy(), 256, None)
                .unwrap();
        assert_eq!(pipe.stage_count(), 2);
        let static_hashes = pipe.static_plan_hashes();
        assert_eq!(static_hashes.len(), 1);

        let opts = RunOptions::serial(ExecMode::SampledStats(32));
        let input: Vec<f32> = (0..1 << 16).map(|i| (i % 5) as f32).collect();
        for _ in 0..3 {
            pipe.run(256, &input[..256], &[], opts).unwrap();
        }
        let big = 1 << 15;
        for _ in 0..6 {
            let rep = pipe.run(big, &input[..big as usize], &[], opts).unwrap();
            let expected: f32 = input[..big as usize].iter().map(|v| v * 2.0).sum();
            assert!((rep.output[0] - expected).abs() / expected.abs() < 1e-3);
            assert_eq!(rep.stages.len(), 2);
        }
        assert_eq!(pipe.reschedules(), 1, "dynamic region re-planned once");
        assert_eq!(
            pipe.static_plan_hashes(),
            static_hashes,
            "static stage untouched by the re-schedule"
        );
    }
}
