//! Neighboring-access kernel template (§4.1.2 of the paper).
//!
//! Each block stages one *super tile* plus its halo from global into
//! shared memory, synchronizes, then computes its output elements entirely
//! out of shared memory (Figure 6). The super tile merges several simple
//! tiles so the halo-to-tile ratio shrinks; its size and shape are chosen
//! by the optimizer via the reuse metric (see `opt::memory`), the template
//! just executes a given geometry.
//!
//! The element computation re-executes the actor's original loop body, so
//! edge conditions and the combining function keep their exact semantics:
//! `peek(idx + Δ)` is redirected to the shared tile.

use std::collections::HashMap;
use std::sync::Arc;

use gpu_sim::{BlockCtx, BufId, Kernel, LaunchConfig};
use streamir::ir::Stmt;
use streamir::rates::Bindings;
use streamir::value::Value;

use crate::analysis::opcount::body_counts;
use crate::bytecode::{self, FramePool};
use crate::exec_ir::{exec_body, IrIo};
use crate::runtime::EvalBackend;
use crate::warp::{self, for_lanes, WarpFramePool, WarpIo, MAX_LANES};

const SITE_LOAD: u32 = 0;
const SITE_TILE_ST: u32 = 1;
const SITE_TILE_LD: u32 = 2;
const SITE_PUSH: u32 = 3;
const SITE_STATE: u32 = 8;

/// A compiled super-tile stencil kernel.
#[derive(Debug, Clone)]
pub struct StencilKernel {
    pub name: String,
    /// Per-element loop body (from the detected pattern).
    pub body: Vec<Stmt>,
    /// Loop variable bound to the global element index.
    pub loop_var: String,
    pub binds: Bindings,
    /// Grid extent: `rows == 1` for 1-D stencils.
    pub rows: usize,
    pub cols: usize,
    /// Super-tile geometry (output elements per block).
    pub tile_w: usize,
    pub tile_h: usize,
    /// Halo radii (from the pattern's footprint).
    pub halo_r: usize,
    pub halo_c: usize,
    pub block_dim: u32,
    pub in_buf: BufId,
    pub out_buf: BufId,
    pub state: Vec<(String, BufId)>,
    /// Precomputed per-element instruction estimate.
    pub compute_per_elem: u32,
    pub flops_per_elem: u64,
    /// The element body lowered to bytecode (see [`crate::bytecode`]).
    pub program: Arc<bytecode::Program>,
    /// Slot prototype with parameters bound.
    pub(crate) proto: Vec<Value>,
    pub(crate) loop_slot: Option<u16>,
    /// Program state id → index into `state`.
    pub(crate) state_slots: Vec<Option<u32>>,
    /// Frame pool shared with the engine.
    pub(crate) frames: Arc<FramePool>,
    /// Warp-frame pool shared with the engine.
    pub(crate) warp_frames: Arc<WarpFramePool>,
    /// Which evaluator runs the element body (warp-batched by default;
    /// scalar bytecode and the AST walker are differential oracles).
    pub backend: EvalBackend,
}

impl StencilKernel {
    /// Construct, precomputing instruction estimates.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        body: Vec<Stmt>,
        loop_var: &str,
        binds: Bindings,
        rows: usize,
        cols: usize,
        tile_w: usize,
        tile_h: usize,
        halo_r: usize,
        halo_c: usize,
        in_buf: BufId,
        out_buf: BufId,
    ) -> StencilKernel {
        Self::build(
            name, body, loop_var, binds, rows, cols, tile_w, tile_h, halo_r, halo_c, in_buf,
            out_buf, None,
        )
    }

    /// Like [`StencilKernel::new`] but adopting a plan-precompiled
    /// program, so launches only re-bind parameter slots.
    #[allow(clippy::too_many_arguments)]
    pub fn precompiled(
        name: &str,
        body: Vec<Stmt>,
        loop_var: &str,
        binds: Bindings,
        rows: usize,
        cols: usize,
        tile_w: usize,
        tile_h: usize,
        halo_r: usize,
        halo_c: usize,
        in_buf: BufId,
        out_buf: BufId,
        program: Arc<bytecode::Program>,
    ) -> StencilKernel {
        Self::build(
            name,
            body,
            loop_var,
            binds,
            rows,
            cols,
            tile_w,
            tile_h,
            halo_r,
            halo_c,
            in_buf,
            out_buf,
            Some(program),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        name: &str,
        body: Vec<Stmt>,
        loop_var: &str,
        binds: Bindings,
        rows: usize,
        cols: usize,
        tile_w: usize,
        tile_h: usize,
        halo_r: usize,
        halo_c: usize,
        in_buf: BufId,
        out_buf: BufId,
        program: Option<Arc<bytecode::Program>>,
    ) -> StencilKernel {
        let counts = body_counts(&body, &binds);
        let program = program.unwrap_or_else(|| {
            Arc::new(
                bytecode::compile_body(&body, &binds, &[loop_var])
                    .expect("stencil body lowers to bytecode"),
            )
        });
        let mut k = StencilKernel {
            name: name.to_string(),
            body,
            loop_var: loop_var.to_string(),
            binds,
            rows,
            cols,
            tile_w,
            tile_h,
            halo_r,
            halo_c,
            in_buf,
            out_buf,
            state: Vec::new(),
            block_dim: 256,
            compute_per_elem: counts.compute as u32,
            flops_per_elem: counts.flops as u64,
            program,
            proto: Vec::new(),
            loop_slot: None,
            state_slots: Vec::new(),
            frames: Arc::new(FramePool::new()),
            warp_frames: Arc::new(WarpFramePool::new()),
            backend: EvalBackend::default(),
        };
        k.rebind_program();
        k
    }

    /// Adopt a plan-precompiled program (re-binding against this kernel's
    /// bindings, which vary per launch).
    pub fn with_program(mut self, program: Arc<bytecode::Program>) -> StencilKernel {
        self.program = program;
        self.rebind_program();
        self
    }

    /// Share the engine's frame pool.
    pub fn with_frames(mut self, frames: Arc<FramePool>) -> StencilKernel {
        self.frames = frames;
        self
    }

    /// Share the engine's warp-frame pool.
    pub fn with_warp_frames(mut self, frames: Arc<WarpFramePool>) -> StencilKernel {
        self.warp_frames = frames;
        self
    }

    fn rebind_program(&mut self) {
        self.proto = self
            .program
            .bind(&self.binds)
            .expect("bindings cover stencil body");
        self.loop_slot = self.program.slot_of(&self.loop_var);
        self.rebind_state_slots();
    }

    fn rebind_state_slots(&mut self) {
        self.state_slots = self
            .program
            .state_names()
            .iter()
            .map(|n| {
                self.state
                    .iter()
                    .position(|(s, _)| s == n)
                    .map(|i| i as u32)
            })
            .collect();
    }

    /// Resolve a program state id to `(slot, buf)`, guarding against the
    /// kernel's state list having been edited after compilation.
    fn state_ref(&self, id: u16, array: &str) -> (u32, BufId) {
        if let Some(Some(slot)) = self.state_slots.get(id as usize) {
            if let Some((n, b)) = self.state.get(*slot as usize) {
                if n == array {
                    return (*slot, *b);
                }
            }
        }
        self.state
            .iter()
            .enumerate()
            .find(|(_, (n, _))| n == array)
            .map(|(i, (_, b))| (i as u32, *b))
            .unwrap_or_else(|| panic!("unbound state array `{array}`"))
    }

    /// Extended (shared) tile width including halos.
    pub fn ext_w(&self) -> usize {
        self.tile_w + 2 * self.halo_c
    }

    /// Extended tile height including halos.
    pub fn ext_h(&self) -> usize {
        self.tile_h + 2 * self.halo_r
    }

    fn tiles_x(&self) -> usize {
        self.cols.div_ceil(self.tile_w)
    }

    fn tiles_y(&self) -> usize {
        self.rows.div_ceil(self.tile_h)
    }

    /// Bind a state array.
    pub fn with_state(mut self, name: &str, buf: BufId) -> StencilKernel {
        self.state.push((name.to_string(), buf));
        self.rebind_state_slots();
        self
    }
}

struct StencilIo<'c, 'd, 'k> {
    ctx: &'c mut BlockCtx<'d>,
    kernel: &'k StencilKernel,
    tid: u32,
    /// Global element this thread is computing.
    global: usize,
    /// Tile origin.
    tile_r0: usize,
    tile_c0: usize,
    pushed: bool,
}

impl IrIo for StencilIo<'_, '_, '_> {
    fn pop(&mut self) -> f32 {
        panic!("pop inside stencil element (rejected at detection)")
    }

    fn peek(&mut self, offset: i64) -> f32 {
        let k = self.kernel;
        assert!(
            offset >= 0 && (offset as usize) < k.rows * k.cols,
            "stencil peek at {offset} outside the input (guard missing?)"
        );
        let g = offset as usize;
        let (r, c) = (g / k.cols, g % k.cols);
        let er = r as i64 - self.tile_r0 as i64 + k.halo_r as i64;
        let ec = c as i64 - self.tile_c0 as i64 + k.halo_c as i64;
        assert!(
            er >= 0 && (er as usize) < k.ext_h() && ec >= 0 && (ec as usize) < k.ext_w(),
            "stencil peek at ({r},{c}) escapes the halo of tile ({},{})",
            self.tile_r0,
            self.tile_c0
        );
        self.ctx.ld_shared(
            SITE_TILE_LD,
            self.tid,
            er as usize * k.ext_w() + ec as usize,
        )
    }

    fn push(&mut self, v: f32) {
        assert!(!self.pushed, "stencil element pushed twice");
        self.pushed = true;
        self.ctx
            .st_global(SITE_PUSH, self.tid, self.kernel.out_buf, self.global, v);
    }

    fn state_load(&mut self, array: &str, idx: i64) -> f32 {
        let (slot, buf) = self
            .kernel
            .state
            .iter()
            .enumerate()
            .find(|(_, (n, _))| n == array)
            .map(|(i, (_, b))| (i as u32, *b))
            .unwrap_or_else(|| panic!("unbound state array `{array}`"));
        self.ctx
            .ld_global(SITE_STATE + slot, self.tid, buf, idx as usize)
    }

    fn state_store(&mut self, _: &str, _: i64, _: f32) {
        panic!("state store inside stencil element")
    }

    fn state_load_id(&mut self, id: u16, array: &str, idx: i64) -> f32 {
        let (slot, buf) = self.kernel.state_ref(id, array);
        self.ctx
            .ld_global(SITE_STATE + slot, self.tid, buf, idx as usize)
    }
}

/// Warp-granular I/O for the stencil template: tile peeks and output
/// pushes travel as whole lane-rows. Lane `l` computes global element
/// `globals[l]` as thread `tid0 + l`; edge tiles leave holes in the
/// lane mask, which simply become `None` addresses in the rows.
struct StencilWarpIo<'c, 'd, 'k> {
    ctx: &'c mut BlockCtx<'d>,
    kernel: &'k StencilKernel,
    warp: u32,
    /// Tile origin (warp-uniform).
    tile_r0: usize,
    tile_c0: usize,
    /// Per-lane global element index (valid for masked lanes only).
    globals: [usize; MAX_LANES],
    pushed: [bool; MAX_LANES],
    /// Reused address row, `warp_size` wide.
    addrs: &'c mut [Option<u64>],
    vals: &'c mut [f32],
}

impl WarpIo for StencilWarpIo<'_, '_, '_> {
    fn pop_row(&mut self, _mask: u64, _out: &mut [Value]) {
        panic!("pop inside stencil element (rejected at detection)")
    }

    fn peek_row(&mut self, mask: u64, row: &mut [Value]) {
        let k = self.kernel;
        for_lanes(mask, row.len(), |l| {
            let offset = bytecode::as_i64(row[l]);
            assert!(
                offset >= 0 && (offset as usize) < k.rows * k.cols,
                "stencil peek at {offset} outside the input (guard missing?)"
            );
            let g = offset as usize;
            let (r, c) = (g / k.cols, g % k.cols);
            let er = r as i64 - self.tile_r0 as i64 + k.halo_r as i64;
            let ec = c as i64 - self.tile_c0 as i64 + k.halo_c as i64;
            assert!(
                er >= 0 && (er as usize) < k.ext_h() && ec >= 0 && (ec as usize) < k.ext_w(),
                "stencil peek at ({r},{c}) escapes the halo of tile ({},{})",
                self.tile_r0,
                self.tile_c0
            );
            self.addrs[l] = Some((er as usize * k.ext_w() + ec as usize) as u64);
        });
        self.ctx
            .ld_shared_row(SITE_TILE_LD, self.warp, self.addrs, self.vals);
        for_lanes(mask, row.len(), |l| row[l] = Value::F32(self.vals[l]));
        self.addrs.fill(None);
    }

    fn push_row(&mut self, mask: u64, vals: &[Value]) {
        let k = self.kernel;
        for_lanes(mask, vals.len(), |l| {
            assert!(!self.pushed[l], "stencil element pushed twice");
            self.pushed[l] = true;
            self.addrs[l] = Some(self.globals[l] as u64);
            self.vals[l] = bytecode::as_f32(vals[l]);
        });
        self.ctx
            .st_global_row(SITE_PUSH, self.warp, k.out_buf, self.addrs, self.vals);
        self.addrs.fill(None);
    }

    fn state_load_row(&mut self, id: u16, array: &str, mask: u64, row: &mut [Value]) {
        let (slot, buf) = self.kernel.state_ref(id, array);
        for_lanes(mask, row.len(), |l| {
            self.addrs[l] = Some(bytecode::as_i64(row[l]) as u64);
        });
        self.ctx
            .ld_global_row(SITE_STATE + slot, self.warp, buf, self.addrs, self.vals);
        for_lanes(mask, row.len(), |l| row[l] = Value::F32(self.vals[l]));
        self.addrs.fill(None);
    }

    fn state_store_row(&mut self, _: u16, _: &str, _: u64, _: &[Value], _: &[Value]) {
        panic!("state store inside stencil element")
    }
}

impl Kernel for StencilKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new(
            (self.tiles_x() * self.tiles_y()) as u32,
            self.block_dim,
            (self.ext_w() * self.ext_h()) as u32,
        )
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        let tiles_x = self.tiles_x();
        let (tx, ty) = (block as usize % tiles_x, block as usize / tiles_x);
        let tile_r0 = ty * self.tile_h;
        let tile_c0 = tx * self.tile_w;
        let (ext_w, ext_h) = (self.ext_w(), self.ext_h());

        // Phase 1: cooperative load of tile + halo, row by row so each
        // warp sweep touches consecutive global addresses.
        let bdim = self.block_dim as usize;
        for er in 0..ext_h {
            let r = tile_r0 as i64 - self.halo_r as i64 + er as i64;
            let mut base = 0usize;
            while base < ext_w {
                for tid in ctx.threads() {
                    let ec = base + tid as usize;
                    if ec >= ext_w {
                        continue;
                    }
                    let c = tile_c0 as i64 - self.halo_c as i64 + ec as i64;
                    let v =
                        if r >= 0 && (r as usize) < self.rows && c >= 0 && (c as usize) < self.cols
                        {
                            ctx.ld_global(
                                SITE_LOAD,
                                tid,
                                self.in_buf,
                                r as usize * self.cols + c as usize,
                            )
                        } else {
                            0.0
                        };
                    ctx.st_shared(SITE_TILE_ST, tid, er * ext_w + ec, v);
                }
                base += bdim;
            }
        }
        ctx.sync();

        // Phase 2: each thread computes tile elements, strided for
        // coalesced output stores.
        if self.backend == EvalBackend::Warp {
            self.run_phase2_warp(tile_r0, tile_c0, ctx);
            return;
        }
        let elems = self.tile_w * self.tile_h;
        let mut frame = self.frames.take();
        frame.fit(&self.program);
        let mut locals: HashMap<String, Value> = HashMap::new();
        let mut e = 0usize;
        while e < elems {
            for tid in ctx.threads() {
                let el = e + tid as usize;
                if el >= elems {
                    continue;
                }
                let (dr, dc) = (el / self.tile_w, el % self.tile_w);
                let (r, c) = (tile_r0 + dr, tile_c0 + dc);
                if r >= self.rows || c >= self.cols {
                    continue;
                }
                let global = r * self.cols + c;
                let mut io = StencilIo {
                    ctx,
                    kernel: self,
                    tid,
                    global,
                    tile_r0,
                    tile_c0,
                    pushed: false,
                };
                if self.backend == EvalBackend::Ast {
                    locals.clear();
                    locals.insert(self.loop_var.clone(), Value::I64(global as i64));
                    exec_body(&self.body, &mut locals, &self.binds, &mut io)
                        .expect("validated stencil body");
                } else {
                    frame.reset(&self.proto);
                    if let Some(slot) = self.loop_slot {
                        frame.set(slot, Value::I64(global as i64));
                    }
                    bytecode::eval(&self.program, &mut frame, &mut io);
                }
                ctx.compute(tid, self.compute_per_elem);
                ctx.count_flops(self.flops_per_elem);
            }
            e += bdim;
        }
        self.frames.give(frame);
    }
}

impl StencilKernel {
    /// Warp-batched phase 2: warps of lane-consecutive tile elements run
    /// through [`crate::warp::eval`], peeking the shared tile and pushing
    /// output as whole lane-rows. Edge tiles produce holes in the lane
    /// mask (elements past the grid edge), matching the scalar loop's
    /// `continue`s.
    fn run_phase2_warp(&self, tile_r0: usize, tile_c0: usize, ctx: &mut BlockCtx<'_>) {
        let elems = self.tile_w * self.tile_h;
        let ws = ctx.warp_size() as usize;
        let bdim = self.block_dim as usize;
        let width = ws.min(bdim);
        let mut wf = self.warp_frames.take();
        wf.fit(&self.program, width);
        let mut addrs = vec![None; ws];
        let mut vals = vec![0.0f32; ws];
        let mut e = 0usize;
        while e < elems {
            let mut lane0 = 0usize;
            while lane0 < bdim && e + lane0 < elems {
                let live = (elems - e - lane0).min((bdim - lane0).min(ws));
                let mut mask = 0u64;
                let mut globals = [0usize; MAX_LANES];
                for (l, global) in globals.iter_mut().enumerate().take(live) {
                    let el = e + lane0 + l;
                    let (dr, dc) = (el / self.tile_w, el % self.tile_w);
                    let (r, c) = (tile_r0 + dr, tile_c0 + dc);
                    if r >= self.rows || c >= self.cols {
                        continue;
                    }
                    mask |= 1 << l;
                    *global = r * self.cols + c;
                }
                if mask != 0 {
                    wf.reset(&self.proto);
                    if let Some(slot) = self.loop_slot {
                        for_lanes(mask, live, |l| {
                            wf.set_lane(slot, l, Value::I64(globals[l] as i64));
                        });
                    }
                    let mut io = StencilWarpIo {
                        ctx,
                        kernel: self,
                        warp: (lane0 / ws) as u32,
                        tile_r0,
                        tile_c0,
                        globals,
                        pushed: [false; MAX_LANES],
                        addrs: &mut addrs,
                        vals: &mut vals,
                    };
                    warp::eval(&self.program, &mut wf, mask, &mut io);
                    for_lanes(mask, live, |l| {
                        let tid = (lane0 + l) as u32;
                        ctx.compute(tid, self.compute_per_elem);
                        ctx.count_flops(self.flops_per_elem);
                    });
                }
                lane0 += ws;
            }
            e += bdim;
        }
        self.warp_frames.give(wf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{launch, DeviceSpec, ExecMode, GlobalMem};
    use streamir::interp::Interpreter;
    use streamir::parse::parse_program;

    const FIVE_POINT: &str = r#"
        pipeline P(rows, cols) {
            actor Stencil(pop rows*cols, push rows*cols, peek rows*cols) {
                for idx in 0..rows*cols {
                    r = idx / cols;
                    c = idx % cols;
                    if (r > 0 && r < rows - 1 && c > 0 && c < cols - 1) {
                        push(0.25 * (peek(idx - 1) + peek(idx + 1)
                            + peek(idx - cols) + peek(idx + cols)));
                    } else {
                        push(peek(idx));
                    }
                }
            }
        }
    "#;

    fn run_reference(rows: usize, cols: usize, input: &[f32]) -> Vec<f32> {
        let p = parse_program(FIVE_POINT).unwrap();
        let mut it = Interpreter::new(&p);
        it.bind_param("rows", rows as i64);
        it.bind_param("cols", cols as i64);
        it.run(input).unwrap()
    }

    fn kernel_for(
        rows: usize,
        cols: usize,
        tile_w: usize,
        tile_h: usize,
        in_buf: BufId,
        out_buf: BufId,
    ) -> StencilKernel {
        let p = parse_program(FIVE_POINT).unwrap();
        let pat = crate::analysis::detect_stencil(&p.actors[0]).expect("stencil");
        let (hr, hc) = pat.halo();
        let binds = streamir::graph::bindings(&[("rows", rows as i64), ("cols", cols as i64)]);
        StencilKernel::new(
            "five_point",
            pat.body.clone(),
            &pat.loop_var,
            binds,
            rows,
            cols,
            tile_w,
            tile_h,
            hr as usize,
            hc as usize,
            in_buf,
            out_buf,
        )
    }

    #[test]
    fn five_point_matches_interpreter() {
        let (rows, cols) = (37, 53); // awkward, non-multiple-of-tile sizes
        let input: Vec<f32> = (0..rows * cols).map(|i| ((i * 7) % 23) as f32).collect();
        let expected = run_reference(rows, cols, &input);

        let device = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let in_buf = mem.alloc_from(&input);
        let out_buf = mem.alloc(rows * cols);
        let k = kernel_for(rows, cols, 16, 8, in_buf, out_buf);
        launch(&device, &mut mem, &k, ExecMode::Full);
        assert_eq!(mem.read(out_buf), expected.as_slice());
    }

    #[test]
    fn super_tile_geometry_changes_grid_not_results() {
        let (rows, cols) = (64, 64);
        let input: Vec<f32> = (0..rows * cols).map(|i| (i % 31) as f32).collect();
        let expected = run_reference(rows, cols, &input);
        let device = DeviceSpec::tesla_c2050();

        let mut grids = Vec::new();
        for (tw, th) in [(8, 8), (32, 8), (64, 16)] {
            let mut mem = GlobalMem::new();
            let in_buf = mem.alloc_from(&input);
            let out_buf = mem.alloc(rows * cols);
            let k = kernel_for(rows, cols, tw, th, in_buf, out_buf);
            let stats = launch(&device, &mut mem, &k, ExecMode::Full);
            assert_eq!(mem.read(out_buf), expected.as_slice(), "tile {tw}x{th}");
            grids.push(stats.config.grid_dim);
        }
        assert!(grids[0] > grids[1] && grids[1] > grids[2]);
    }

    #[test]
    fn larger_tiles_reduce_halo_traffic() {
        let (rows, cols) = (128, 128);
        let input = vec![1.0; rows * cols];
        let device = DeviceSpec::tesla_c2050();

        let mut loads = Vec::new();
        for (tw, th) in [(8, 8), (32, 32)] {
            let mut mem = GlobalMem::new();
            let in_buf = mem.alloc_from(&input);
            let out_buf = mem.alloc(rows * cols);
            let k = kernel_for(rows, cols, tw, th, in_buf, out_buf);
            let stats = launch(&device, &mut mem, &k, ExecMode::Full);
            loads.push(stats.totals.load_transactions);
        }
        assert!(
            loads[1] < loads[0],
            "32x32 super tiles should load less than 8x8: {loads:?}"
        );
    }

    #[test]
    fn one_dimensional_stencil() {
        let src = r#"
            pipeline P(n) {
                actor Blur(pop n, push n, peek n) {
                    for i in 0..n {
                        if (i >= 1 && i < n - 1) {
                            push((peek(i - 1) + peek(i) + peek(i + 1)) / 3.0);
                        } else {
                            push(peek(i));
                        }
                    }
                }
            }
        "#;
        let p = parse_program(src).unwrap();
        let n = 1000usize;
        let input: Vec<f32> = (0..n).map(|i| (i % 17) as f32).collect();
        let mut it = Interpreter::new(&p);
        it.bind_param("n", n as i64);
        let expected = it.run(&input).unwrap();

        let pat = crate::analysis::detect_stencil(&p.actors[0]).unwrap();
        let (hr, hc) = pat.halo();
        assert_eq!((hr, hc), (0, 1));
        let device = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let in_buf = mem.alloc_from(&input);
        let out_buf = mem.alloc(n);
        let k = StencilKernel::new(
            "blur",
            pat.body.clone(),
            &pat.loop_var,
            streamir::graph::bindings(&[("n", n as i64)]),
            1,
            n,
            128,
            1,
            hr as usize,
            hc as usize,
            in_buf,
            out_buf,
        );
        launch(&device, &mut mem, &k, ExecMode::Full);
        assert_eq!(mem.read(out_buf), expected.as_slice());
    }
}
