//! The map kernel template.
//!
//! Lowers per-firing actors (one thread per firing) and parallelized
//! loops (one thread per iteration, §4.2.2). The schedulable unit is a
//! *work unit*: a firing of a small actor, or one iteration of a
//! parallelized loop. Units are distributed block-contiguously and
//! thread-strided, so that lane-consecutive threads process consecutive
//! units — the precondition for memory restructuring (§4.1.1) to coalesce
//! every pop/push.
//!
//! *Horizontal thread integration* (§4.3.2) is the `coarsen` knob: each
//! thread processes several units, reducing the number of blocks when
//! block counts are excessive.

use std::sync::Arc;

use gpu_sim::{BlockCtx, BufId, Kernel, LaunchConfig};
use streamir::ir::Stmt;
use streamir::rates::Bindings;
use streamir::value::Value;

use crate::analysis::opcount::body_counts;
use crate::bytecode::{self, FramePool};
use crate::exec_ir::IrIo;
use crate::layout::Layout;
use crate::runtime::EvalBackend;
use crate::warp::{self, for_lanes, full_mask, WarpFramePool, WarpIo, MAX_LANES};

/// Access-site ids used by this template.
const SITE_POP: u32 = 0;
const SITE_PEEK: u32 = 1;
const SITE_PUSH: u32 = 2;
const SITE_STAGE_LD: u32 = 3;
const SITE_STAGE_ST: u32 = 4;
const SITE_STAGE_RD: u32 = 5;
const SITE_STATE: u32 = 8;

/// A compiled element-wise kernel.
#[derive(Debug, Clone)]
pub struct MapKernel {
    /// Kernel name for reports.
    pub name: String,
    /// Per-unit work body.
    pub body: Vec<Stmt>,
    /// Parameter bindings the body is evaluated under.
    pub binds: Bindings,
    /// When lowering a parallelized loop, the loop variable bound to the
    /// unit's iteration index.
    pub loop_var: Option<String>,
    /// Total work units in the launch.
    pub units: usize,
    /// Units per actor firing: the loop variable is the unit index *within
    /// its firing* (`unit % units_per_firing`).
    pub units_per_firing: usize,
    /// For peek-window loops: the firing's input window size in words.
    /// Peeks then address `firing_window[offset]` instead of the unit's
    /// own pop window.
    pub window_pop: Option<usize>,
    /// Items popped per unit.
    pub pops_per_unit: usize,
    /// Items pushed per unit.
    pub pushes_per_unit: usize,
    /// Input buffer and layout.
    pub in_buf: BufId,
    pub in_layout: Layout,
    /// Output buffer and layout.
    pub out_buf: BufId,
    pub out_layout: Layout,
    /// Bound state arrays (name → global buffer).
    pub state: Vec<(String, BufId)>,
    /// Units per thread (1 = no thread integration).
    pub coarsen: usize,
    /// Interleaved output groups for unfused sibling kernels: pushes land
    /// at `unit * total + offset + j` (row-major interleave matching a
    /// round-robin joiner).
    pub out_group: Option<(usize, usize)>,
    /// §4.1.1's *first* coalescing method: cooperatively stage the block's
    /// input windows into shared memory with coalesced sweeps, then let
    /// each thread read its own window from shared. The paper prefers
    /// memory restructuring because staging caps the thread count by the
    /// shared budget and adds address arithmetic — both effects are
    /// measurable here (see the `ablations` harness).
    pub stage_window: bool,
    /// Threads per block.
    pub block_dim: u32,
    /// Precomputed per-unit instruction count (for the performance model).
    pub compute_per_unit: u32,
    /// Precomputed per-unit floating-point operations.
    pub flops_per_unit: u64,
    /// Compiled bytecode for `body` (plan-shared via
    /// [`MapKernel::with_program`]).
    pub program: Arc<bytecode::Program>,
    /// `program` bound against `binds`: the slot prototype copied into the
    /// frame at every firing.
    pub(crate) proto: Vec<Value>,
    /// Preset slot of the loop variable, when any.
    pub(crate) loop_slot: Option<u16>,
    /// Program state id → index into `state` (rebuilt by
    /// [`MapKernel::with_state`]).
    pub(crate) state_slots: Vec<Option<u32>>,
    /// Frame pool shared with the engine (injected by the runtime).
    pub(crate) frames: Arc<FramePool>,
    /// Warp-frame pool shared with the engine (injected by the runtime).
    pub(crate) warp_frames: Arc<WarpFramePool>,
    /// Which evaluator runs the work body: the warp-batched dispatcher
    /// (default), or one of the differential oracles used by the
    /// stats-identity tests.
    pub backend: EvalBackend,
}

impl MapKernel {
    /// Build a map kernel, precomputing its per-unit instruction mix.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        body: Vec<Stmt>,
        binds: Bindings,
        loop_var: Option<String>,
        units: usize,
        pops_per_unit: usize,
        pushes_per_unit: usize,
        in_buf: BufId,
        out_buf: BufId,
    ) -> MapKernel {
        Self::build(
            name,
            body,
            binds,
            loop_var,
            units,
            pops_per_unit,
            pushes_per_unit,
            in_buf,
            out_buf,
            None,
        )
    }

    /// Like [`MapKernel::new`] but adopting a plan-precompiled program, so
    /// launches only re-bind parameter slots instead of re-lowering.
    #[allow(clippy::too_many_arguments)]
    pub fn precompiled(
        name: &str,
        body: Vec<Stmt>,
        binds: Bindings,
        loop_var: Option<String>,
        units: usize,
        pops_per_unit: usize,
        pushes_per_unit: usize,
        in_buf: BufId,
        out_buf: BufId,
        program: Arc<bytecode::Program>,
    ) -> MapKernel {
        Self::build(
            name,
            body,
            binds,
            loop_var,
            units,
            pops_per_unit,
            pushes_per_unit,
            in_buf,
            out_buf,
            Some(program),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        name: &str,
        body: Vec<Stmt>,
        binds: Bindings,
        loop_var: Option<String>,
        units: usize,
        pops_per_unit: usize,
        pushes_per_unit: usize,
        in_buf: BufId,
        out_buf: BufId,
        program: Option<Arc<bytecode::Program>>,
    ) -> MapKernel {
        let counts = body_counts(&body, &binds);
        let program = program.unwrap_or_else(|| {
            let presets: Vec<&str> = loop_var.iter().map(String::as_str).collect();
            Arc::new(
                bytecode::compile_body(&body, &binds, &presets)
                    .expect("work body lowers to bytecode"),
            )
        });
        let mut k = MapKernel {
            name: name.to_string(),
            body,
            binds,
            loop_var,
            units,
            units_per_firing: units,
            window_pop: None,
            pops_per_unit,
            pushes_per_unit,
            in_buf,
            in_layout: Layout::RowMajor,
            out_buf,
            out_layout: Layout::RowMajor,
            state: Vec::new(),
            coarsen: 1,
            out_group: None,
            stage_window: false,
            block_dim: 256,
            compute_per_unit: counts.compute as u32,
            flops_per_unit: counts.flops as u64,
            program,
            proto: Vec::new(),
            loop_slot: None,
            state_slots: Vec::new(),
            frames: Arc::new(FramePool::new()),
            warp_frames: Arc::new(WarpFramePool::new()),
            backend: EvalBackend::default(),
        };
        k.rebind_program();
        k
    }

    /// Adopt a plan-precompiled program (so launches skip re-lowering) and
    /// rebind its slots against this kernel's bindings.
    pub fn with_program(mut self, program: Arc<bytecode::Program>) -> MapKernel {
        self.program = program;
        self.rebind_program();
        self
    }

    /// Share the engine's frame pool (injected by the runtime so frames
    /// recycle across launches).
    pub fn with_frames(mut self, frames: Arc<FramePool>) -> MapKernel {
        self.frames = frames;
        self
    }

    /// Share the engine's warp-frame pool (the [`crate::warp`] analogue
    /// of [`MapKernel::with_frames`]).
    pub fn with_warp_frames(mut self, frames: Arc<WarpFramePool>) -> MapKernel {
        self.warp_frames = frames;
        self
    }

    fn rebind_program(&mut self) {
        self.proto = self
            .program
            .bind(&self.binds)
            .expect("kernel bindings cover program parameters");
        self.loop_slot = self
            .loop_var
            .as_deref()
            .and_then(|lv| self.program.slot_of(lv));
        self.rebind_state_slots();
    }

    fn rebind_state_slots(&mut self) {
        self.state_slots = self
            .program
            .state_names()
            .iter()
            .map(|n| {
                self.state
                    .iter()
                    .position(|(s, _)| s == n)
                    .map(|i| i as u32)
            })
            .collect();
    }

    /// Set input/output layouts (builder style).
    pub fn with_layouts(mut self, input: Layout, output: Layout) -> MapKernel {
        self.in_layout = input;
        self.out_layout = output;
        self
    }

    /// Set the thread-coarsening factor.
    pub fn with_coarsen(mut self, coarsen: usize) -> MapKernel {
        self.coarsen = coarsen.max(1);
        self
    }

    /// Set threads per block.
    pub fn with_block_dim(mut self, block_dim: u32) -> MapKernel {
        self.block_dim = block_dim;
        self
    }

    /// Enable shared-memory window staging (see [`MapKernel::stage_window`]).
    pub fn with_staging(mut self, stage: bool) -> MapKernel {
        self.stage_window = stage;
        self
    }

    /// Bind a state array to a global buffer.
    pub fn with_state(mut self, name: &str, buf: BufId) -> MapKernel {
        self.state.push((name.to_string(), buf));
        self.rebind_state_slots();
        self
    }

    /// Resolve a program state id to this kernel's `(slot, buffer)` pair.
    /// The precomputed dense mapping is guarded by a name check so
    /// hand-built kernels that mutate `state` directly still resolve
    /// correctly (via the find fallback).
    fn state_ref(&self, id: u16, array: &str) -> (u32, BufId) {
        if let Some(Some(slot)) = self.state_slots.get(id as usize) {
            if let Some((n, b)) = self.state.get(*slot as usize) {
                if n == array {
                    return (*slot, *b);
                }
            }
        }
        self.state
            .iter()
            .enumerate()
            .find(|(_, (n, _))| n == array)
            .map(|(i, (_, b))| (i as u32, *b))
            .unwrap_or_else(|| panic!("unbound state array `{array}`"))
    }

    /// Units handled per block.
    pub fn units_per_block(&self) -> usize {
        self.block_dim as usize * self.coarsen
    }
}

struct MapIo<'c, 'd, 'k> {
    ctx: &'c mut BlockCtx<'d>,
    kernel: &'k MapKernel,
    tid: u32,
    unit: usize,
    /// First unit handled by this block (staging offsets are block-local).
    block_base: usize,
    pops: usize,
    pushes: usize,
    /// Block-level cache of state loads (scalar promotion): uniform
    /// state reads — scale factors, rotation coefficients — hit global
    /// memory once per block instead of once per unit, like the constant
    /// cache of a real GPU. Capped so array-indexed state stays honest.
    state_cache: &'c mut Vec<((u32, i64), f32)>,
}

/// Maximum distinct `(slot, idx)` keys promoted per block.
///
/// When a block probes more keys than this, which ones get promoted
/// depends on probe order: the warp backend fills the cache op-major
/// (lockstep warps touch memory one instruction at a time — the order
/// real hardware would populate its constant cache in), while the scalar
/// backends fill it tid-major (each thread runs to completion). Load
/// counters can therefore differ between backends on overflowing blocks;
/// outputs never do, and stats stay bit-identical whenever the block's
/// state working set fits the cache.
const STATE_CACHE_CAP: usize = 64;

impl IrIo for MapIo<'_, '_, '_> {
    fn pop(&mut self) -> f32 {
        if self.kernel.stage_window {
            let local = (self.unit - self.block_base) * self.kernel.pops_per_unit + self.pops;
            self.pops += 1;
            return self.ctx.ld_shared(SITE_STAGE_RD, self.tid, local);
        }
        let addr = self.kernel.in_layout.addr(
            self.unit,
            self.pops,
            self.kernel.pops_per_unit,
            self.kernel.units,
        );
        self.pops += 1;
        self.ctx
            .ld_global(SITE_POP, self.tid, self.kernel.in_buf, addr)
    }

    fn peek(&mut self, offset: i64) -> f32 {
        if self.kernel.stage_window && self.kernel.window_pop.is_none() {
            let local = (self.unit - self.block_base) * self.kernel.pops_per_unit + offset as usize;
            return self.ctx.ld_shared(SITE_STAGE_RD, self.tid, local);
        }
        let addr = match self.kernel.window_pop {
            // Peek-window mode: iterations of one firing share the
            // firing's row-major window.
            Some(w) => {
                let firing = self.unit / self.kernel.units_per_firing.max(1);
                firing * w + offset as usize
            }
            None => self.kernel.in_layout.addr(
                self.unit,
                offset as usize,
                self.kernel.pops_per_unit,
                self.kernel.units,
            ),
        };
        self.ctx
            .ld_global(SITE_PEEK, self.tid, self.kernel.in_buf, addr)
    }

    fn push(&mut self, v: f32) {
        let addr = match self.kernel.out_group {
            Some((total, offset)) => self.unit * total + offset + self.pushes,
            None => self.kernel.out_layout.addr(
                self.unit,
                self.pushes,
                self.kernel.pushes_per_unit,
                self.kernel.units,
            ),
        };
        self.pushes += 1;
        self.ctx
            .st_global(SITE_PUSH, self.tid, self.kernel.out_buf, addr, v);
    }

    fn state_load(&mut self, array: &str, idx: i64) -> f32 {
        let (slot, buf) = self
            .kernel
            .state
            .iter()
            .enumerate()
            .find(|(_, (n, _))| n == array)
            .map(|(i, (_, b))| (i as u32, *b))
            .unwrap_or_else(|| panic!("unbound state array `{array}`"));
        self.cached_state_load(slot, buf, idx)
    }

    fn state_store(&mut self, array: &str, idx: i64, v: f32) {
        let (slot, buf) = self
            .kernel
            .state
            .iter()
            .enumerate()
            .find(|(_, (n, _))| n == array)
            .map(|(i, (_, b))| (i as u32, *b))
            .unwrap_or_else(|| panic!("unbound state array `{array}`"));
        self.ctx
            .st_global(SITE_STATE + slot, self.tid, buf, idx as usize, v);
    }

    fn state_load_id(&mut self, id: u16, array: &str, idx: i64) -> f32 {
        let (slot, buf) = self.kernel.state_ref(id, array);
        self.cached_state_load(slot, buf, idx)
    }

    fn state_store_id(&mut self, id: u16, array: &str, idx: i64, v: f32) {
        let (slot, buf) = self.kernel.state_ref(id, array);
        self.ctx
            .st_global(SITE_STATE + slot, self.tid, buf, idx as usize, v);
    }
}

impl MapIo<'_, '_, '_> {
    /// Shared scalar-promotion cache used by both the name- and id-based
    /// state hooks, so the two execution paths produce identical stats.
    fn cached_state_load(&mut self, slot: u32, buf: BufId, idx: i64) -> f32 {
        if let Some((_, v)) = self.state_cache.iter().find(|(k, _)| *k == (slot, idx)) {
            return *v;
        }
        let v = self
            .ctx
            .ld_global(SITE_STATE + slot, self.tid, buf, idx as usize);
        if self.state_cache.len() < STATE_CACHE_CAP {
            self.state_cache.push(((slot, idx), v));
        }
        v
    }
}

/// Warp-granular I/O for the map template: each [`WarpIo`] call serves
/// one opcode for a whole warp of units, handing `gpu_sim` complete
/// `addrs[lane]` rows (one accounting call per warp memory instruction)
/// instead of reassembling warps lane-by-lane. Lane `l` executes unit
/// `unit0 + l` as thread `tid0 + l`; pop/push cursors are per lane, since
/// divergent lanes consume and produce independently.
struct MapWarpIo<'c, 'd, 'k> {
    ctx: &'c mut BlockCtx<'d>,
    kernel: &'k MapKernel,
    /// Warp index within the block (drives the accounting row key).
    warp: u32,
    /// Thread id of lane 0.
    tid0: u32,
    /// Unit of lane 0 (units are lane-consecutive by construction).
    unit0: usize,
    /// First unit handled by this block (staging offsets are block-local).
    block_base: usize,
    /// Per-lane pop counts so far (= the scalar `MapIo::pops` cursor).
    pops: [usize; MAX_LANES],
    /// Per-lane push counts so far.
    pushes: [usize; MAX_LANES],
    /// Reused address row, `warp_size` wide; `None` = predicated off.
    addrs: &'c mut [Option<u64>],
    /// Reused value row for loads/stores.
    vals: &'c mut [f32],
    /// The block's scalar-promotion cache, shared with every warp of the
    /// block (same structure the scalar path uses).
    state_cache: &'c mut Vec<((u32, i64), f32)>,
}

impl MapWarpIo<'_, '_, '_> {
    #[inline]
    fn lanes(&self) -> usize {
        self.addrs.len()
    }

    /// Issue the row in `self.addrs` as a load of `kind` and scatter the
    /// results into `out` as `F32` values.
    fn load_row(&mut self, site: u32, buf: Option<BufId>, mask: u64, out: &mut [Value]) {
        match buf {
            Some(b) => self
                .ctx
                .ld_global_row(site, self.warp, b, self.addrs, self.vals),
            None => self
                .ctx
                .ld_shared_row(site, self.warp, self.addrs, self.vals),
        }
        for_lanes(mask, out.len(), |l| out[l] = Value::F32(self.vals[l]));
        self.addrs.fill(None);
    }
}

impl WarpIo for MapWarpIo<'_, '_, '_> {
    fn pop_row(&mut self, mask: u64, out: &mut [Value]) {
        let k = self.kernel;
        if k.stage_window {
            for_lanes(mask, out.len(), |l| {
                let unit = self.unit0 + l;
                let local = (unit - self.block_base) * k.pops_per_unit + self.pops[l];
                self.pops[l] += 1;
                self.addrs[l] = Some(local as u64);
            });
            self.load_row(SITE_STAGE_RD, None, mask, out);
            return;
        }
        for_lanes(mask, out.len(), |l| {
            let addr = k
                .in_layout
                .addr(self.unit0 + l, self.pops[l], k.pops_per_unit, k.units);
            self.pops[l] += 1;
            self.addrs[l] = Some(addr as u64);
        });
        self.load_row(SITE_POP, Some(k.in_buf), mask, out);
    }

    fn peek_row(&mut self, mask: u64, row: &mut [Value]) {
        let k = self.kernel;
        if k.stage_window && k.window_pop.is_none() {
            for_lanes(mask, row.len(), |l| {
                let unit = self.unit0 + l;
                let off = bytecode::as_i64(row[l]) as usize;
                let local = (unit - self.block_base) * k.pops_per_unit + off;
                self.addrs[l] = Some(local as u64);
            });
            self.load_row(SITE_STAGE_RD, None, mask, row);
            return;
        }
        for_lanes(mask, row.len(), |l| {
            let unit = self.unit0 + l;
            let off = bytecode::as_i64(row[l]) as usize;
            let addr = match k.window_pop {
                Some(w) => {
                    let firing = unit / k.units_per_firing.max(1);
                    firing * w + off
                }
                None => k.in_layout.addr(unit, off, k.pops_per_unit, k.units),
            };
            self.addrs[l] = Some(addr as u64);
        });
        self.load_row(SITE_PEEK, Some(k.in_buf), mask, row);
    }

    fn push_row(&mut self, mask: u64, vals: &[Value]) {
        let k = self.kernel;
        for_lanes(mask, vals.len(), |l| {
            let unit = self.unit0 + l;
            let addr = match k.out_group {
                Some((total, offset)) => unit * total + offset + self.pushes[l],
                None => k
                    .out_layout
                    .addr(unit, self.pushes[l], k.pushes_per_unit, k.units),
            };
            self.pushes[l] += 1;
            self.addrs[l] = Some(addr as u64);
            self.vals[l] = bytecode::as_f32(vals[l]);
        });
        self.ctx
            .st_global_row(SITE_PUSH, self.warp, k.out_buf, self.addrs, self.vals);
        self.addrs.fill(None);
    }

    fn state_load_row(&mut self, id: u16, array: &str, mask: u64, row: &mut [Value]) {
        // State loads go through the block's scalar-promotion cache, so
        // rows mix hits (no access) and misses (one access) — served per
        // lane in ascending lane order, exactly like the scalar path.
        let (slot, buf) = self.kernel.state_ref(id, array);
        let lanes = self.lanes().min(row.len());
        for_lanes(mask, lanes, |l| {
            let idx = bytecode::as_i64(row[l]);
            let v = if let Some((_, v)) =
                self.state_cache.iter().find(|(key, _)| *key == (slot, idx))
            {
                *v
            } else {
                let v =
                    self.ctx
                        .ld_global(SITE_STATE + slot, self.tid0 + l as u32, buf, idx as usize);
                if self.state_cache.len() < STATE_CACHE_CAP {
                    self.state_cache.push(((slot, idx), v));
                }
                v
            };
            row[l] = Value::F32(v);
        });
    }

    fn state_store_row(&mut self, id: u16, array: &str, mask: u64, idx: &[Value], vals: &[Value]) {
        let (slot, buf) = self.kernel.state_ref(id, array);
        for_lanes(mask, idx.len(), |l| {
            self.addrs[l] = Some(bytecode::as_i64(idx[l]) as u64);
            self.vals[l] = bytecode::as_f32(vals[l]);
        });
        self.ctx
            .st_global_row(SITE_STATE + slot, self.warp, buf, self.addrs, self.vals);
        self.addrs.fill(None);
    }
}

impl Kernel for MapKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn config(&self) -> LaunchConfig {
        let grid = self.units.div_ceil(self.units_per_block()).max(1) as u32;
        let shared = if self.stage_window {
            (self.units_per_block() * self.pops_per_unit) as u32
        } else {
            0
        };
        LaunchConfig::new(grid, self.block_dim, shared)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        let base = block as usize * self.units_per_block();
        if self.stage_window {
            debug_assert_eq!(
                self.in_layout,
                Layout::RowMajor,
                "staging is the alternative to restructuring; input stays row-major"
            );
            // Cooperative, coalesced staging sweep: consecutive threads
            // copy consecutive global words of the block's input span.
            let span = (self.units_per_block() * self.pops_per_unit)
                .min(self.units.saturating_sub(base) * self.pops_per_unit);
            let global_base = base * self.pops_per_unit;
            let bdim = self.block_dim as usize;
            let mut off = 0usize;
            while off < span {
                for tid in ctx.threads() {
                    let i = off + tid as usize;
                    if i >= span {
                        continue;
                    }
                    let v = ctx.ld_global(SITE_STAGE_LD, tid, self.in_buf, global_base + i);
                    ctx.st_shared(SITE_STAGE_ST, tid, i, v);
                    ctx.compute(tid, 2); // the extra address arithmetic
                }
                off += bdim;
            }
            ctx.sync();
        }
        let mut state_cache: Vec<((u32, i64), f32)> = Vec::new();
        if self.backend == EvalBackend::Warp {
            self.run_block_warp(base, ctx, &mut state_cache);
            return;
        }
        let mut frame = self.frames.take();
        frame.fit(&self.program);
        let mut locals = std::collections::HashMap::new();
        for c in 0..self.coarsen {
            // Thread-strided within the block's contiguous range so each
            // sweep touches consecutive units.
            for tid in ctx.threads() {
                let unit = base + c * self.block_dim as usize + tid as usize;
                if unit >= self.units {
                    continue;
                }
                let within = (unit % self.units_per_firing.max(1)) as i64;
                let mut io = MapIo {
                    ctx,
                    kernel: self,
                    tid,
                    unit,
                    block_base: base,
                    pops: 0,
                    pushes: 0,
                    state_cache: &mut state_cache,
                };
                if self.backend == EvalBackend::Ast {
                    locals.clear();
                    if let Some(lv) = &self.loop_var {
                        locals.insert(lv.clone(), Value::I64(within));
                    }
                    crate::exec_ir::exec_body(&self.body, &mut locals, &self.binds, &mut io)
                        .expect("validated body executes");
                } else {
                    frame.reset(&self.proto);
                    if let Some(slot) = self.loop_slot {
                        frame.set(slot, Value::I64(within));
                    }
                    bytecode::eval(&self.program, &mut frame, &mut io);
                }
                ctx.compute(tid, self.compute_per_unit);
                ctx.count_flops(self.flops_per_unit);
            }
        }
        self.frames.give(frame);
    }
}

impl MapKernel {
    /// Warp-batched block execution: one [`crate::warp::eval`] per warp
    /// of units, each opcode dispatched once and applied across the
    /// warp's lanes, with whole address rows handed to the accounting
    /// engine. Unit assignment, addressing, state caching and
    /// compute/flop charging are identical to the scalar loop.
    fn run_block_warp(
        &self,
        base: usize,
        ctx: &mut BlockCtx<'_>,
        state_cache: &mut Vec<((u32, i64), f32)>,
    ) {
        let ws = ctx.warp_size() as usize;
        let bdim = self.block_dim as usize;
        let width = ws.min(bdim);
        let upf = self.units_per_firing.max(1);
        let mut wf = self.warp_frames.take();
        wf.fit(&self.program, width);
        let mut addrs = vec![None; ws];
        let mut vals = vec![0.0f32; ws];
        for c in 0..self.coarsen {
            let sweep0 = base + c * bdim;
            let mut lane0 = 0usize;
            while lane0 < bdim {
                let unit0 = sweep0 + lane0;
                if unit0 >= self.units {
                    break;
                }
                // Lanes past the unit count are simply not resident
                // (the ragged final warp).
                let live = (self.units - unit0).min((bdim - lane0).min(ws));
                wf.reset(&self.proto);
                if let Some(slot) = self.loop_slot {
                    for l in 0..live {
                        wf.set_lane(slot, l, Value::I64(((unit0 + l) % upf) as i64));
                    }
                }
                let mut io = MapWarpIo {
                    ctx,
                    kernel: self,
                    warp: (lane0 / ws) as u32,
                    tid0: lane0 as u32,
                    unit0,
                    block_base: base,
                    pops: [0; MAX_LANES],
                    pushes: [0; MAX_LANES],
                    addrs: &mut addrs,
                    vals: &mut vals,
                    state_cache: &mut *state_cache,
                };
                warp::eval(&self.program, &mut wf, full_mask(live), &mut io);
                for l in 0..live {
                    let tid = (lane0 + l) as u32;
                    ctx.compute(tid, self.compute_per_unit);
                    ctx.count_flops(self.flops_per_unit);
                }
                lane0 += ws;
            }
        }
        self.warp_frames.give(wf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{launch, DeviceSpec, ExecMode, GlobalMem};
    use streamir::graph::bindings;
    use streamir::interp::Interpreter;
    use streamir::parse::parse_program;

    use crate::layout::restructure;

    #[test]
    fn map_matches_interpreter() {
        let src = "pipeline P() { actor M(pop 1, push 1) { x = pop(); push(x * x + 1.0); } }";
        let program = parse_program(src).unwrap();
        let input: Vec<f32> = (0..1000).map(|i| i as f32 * 0.25).collect();
        let expected = Interpreter::new(&program).run(&input).unwrap();

        let device = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let in_buf = mem.alloc_from(&input);
        let out_buf = mem.alloc(input.len());
        let k = MapKernel::new(
            "m",
            program.actors[0].work.body.clone(),
            bindings(&[]),
            None,
            input.len(),
            1,
            1,
            in_buf,
            out_buf,
        );
        launch(&device, &mut mem, &k, ExecMode::Full);
        assert_eq!(mem.read(out_buf), expected.as_slice());
    }

    #[test]
    fn multi_rate_map_row_major_vs_transposed() {
        // pop 4, push 2: sums pairs.
        let src = r#"pipeline P() {
            actor M(pop 4, push 2) {
                a = pop(); b = pop(); c = pop(); d = pop();
                push(a + b);
                push(c + d);
            }
        }"#;
        let program = parse_program(src).unwrap();
        let input: Vec<f32> = (0..256).map(|i| i as f32).collect();
        let expected = Interpreter::new(&program).run(&input).unwrap();
        let device = DeviceSpec::tesla_c2050();

        // Row-major.
        let mut mem = GlobalMem::new();
        let in_buf = mem.alloc_from(&input);
        let out_buf = mem.alloc(input.len() / 2);
        let base = MapKernel::new(
            "m",
            program.actors[0].work.body.clone(),
            bindings(&[]),
            None,
            input.len() / 4,
            4,
            2,
            in_buf,
            out_buf,
        );
        let row_stats = launch(&device, &mut mem, &base, ExecMode::Full);
        assert_eq!(mem.read(out_buf), expected.as_slice());

        // Transposed (restructured input, restructured output).
        let mut mem2 = GlobalMem::new();
        let in2 = mem2.alloc_from(&restructure(&input, 4));
        let out2 = mem2.alloc(input.len() / 2);
        let opt = base
            .clone()
            .with_layouts(Layout::Transposed, Layout::Transposed);
        let opt = MapKernel {
            in_buf: in2,
            out_buf: out2,
            ..opt
        };
        let t_stats = launch(&device, &mut mem2, &opt, ExecMode::Full);
        let out_rm = crate::layout::unrestructure(mem2.read(out2), 2);
        assert_eq!(out_rm, expected);

        // Restructuring must improve coalescing.
        assert!(
            t_stats.totals.transactions() < row_stats.totals.transactions(),
            "transposed {} vs row-major {}",
            t_stats.totals.transactions(),
            row_stats.totals.transactions()
        );
        assert!(t_stats.totals.transactions_per_mem_inst() <= 1.01);
    }

    #[test]
    fn coarsening_reduces_blocks_preserves_output() {
        let src = "pipeline P() { actor M(pop 1, push 1) { push(pop() + 1.0); } }";
        let program = parse_program(src).unwrap();
        let input: Vec<f32> = (0..4096).map(|i| i as f32).collect();
        let device = DeviceSpec::tesla_c2050();

        let mut mem = GlobalMem::new();
        let in_buf = mem.alloc_from(&input);
        let out_buf = mem.alloc(input.len());
        let k = MapKernel::new(
            "m",
            program.actors[0].work.body.clone(),
            bindings(&[]),
            None,
            input.len(),
            1,
            1,
            in_buf,
            out_buf,
        );
        let plain = k.config().grid_dim;
        let k4 = k.with_coarsen(4);
        assert_eq!(k4.config().grid_dim * 4, plain);
        launch(&device, &mut mem, &k4, ExecMode::Full);
        for (i, v) in mem.read(out_buf).iter().enumerate() {
            assert_eq!(*v, i as f32 + 1.0);
        }
    }

    #[test]
    fn parallel_loop_lowering_with_loop_var() {
        // Units are loop iterations; the loop variable must be visible.
        let src = r#"pipeline P(N) {
            actor A(pop N, push N) {
                for i in 0..N { push(pop() + i); }
            }
        }"#;
        let program = parse_program(src).unwrap();
        let n = 100usize;
        let input = vec![1.0; n];
        let mut it = Interpreter::new(&program);
        it.bind_param("N", n as i64);
        let expected = it.run(&input).unwrap();

        // Per-iteration body: strip the For, keep its body with loop_var.
        let Stmt::For { var, body, .. } = &program.actors[0].work.body[0] else {
            panic!("expected for");
        };
        let device = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let in_buf = mem.alloc_from(&input);
        let out_buf = mem.alloc(n);
        let k = MapKernel::new(
            "pl",
            body.clone(),
            bindings(&[("N", n as i64)]),
            Some(var.clone()),
            n,
            1,
            1,
            in_buf,
            out_buf,
        );
        launch(&device, &mut mem, &k, ExecMode::Full);
        assert_eq!(mem.read(out_buf), expected.as_slice());
    }

    #[test]
    fn staged_window_matches_direct_and_coalesces() {
        // pop 4, push 2 row-major map: direct loads are strided (4
        // transactions/inst); staging restores coalescing at the price of
        // shared traffic and a capped block size.
        let src = r#"pipeline P() {
            actor M(pop 4, push 2) {
                a = pop(); b = pop(); c = pop(); d = pop();
                push(a + c);
                push(b + d);
            }
        }"#;
        let program = parse_program(src).unwrap();
        let input: Vec<f32> = (0..1024).map(|i| i as f32).collect();
        let expected = Interpreter::new(&program).run(&input).unwrap();
        let device = DeviceSpec::tesla_c2050();

        let mut direct_mem = GlobalMem::new();
        let in1 = direct_mem.alloc_from(&input);
        let out1 = direct_mem.alloc(input.len() / 2);
        let direct = MapKernel::new(
            "direct",
            program.actors[0].work.body.clone(),
            bindings(&[]),
            None,
            input.len() / 4,
            4,
            2,
            in1,
            out1,
        );
        let direct_stats = launch(&device, &mut direct_mem, &direct, ExecMode::Full);
        assert_eq!(direct_mem.read(out1), expected.as_slice());

        let mut staged_mem = GlobalMem::new();
        let in2 = staged_mem.alloc_from(&input);
        let out2 = staged_mem.alloc(input.len() / 2);
        let staged = MapKernel::new(
            "staged",
            program.actors[0].work.body.clone(),
            bindings(&[]),
            None,
            input.len() / 4,
            4,
            2,
            in2,
            out2,
        )
        .with_staging(true)
        .with_block_dim(128);
        let staged_stats = launch(&device, &mut staged_mem, &staged, ExecMode::Full);
        assert_eq!(staged_mem.read(out2), expected.as_slice());

        // Staging coalesces the global loads...
        assert!(
            staged_stats.totals.load_transactions < direct_stats.totals.load_transactions,
            "staged {} vs direct {}",
            staged_stats.totals.load_transactions,
            direct_stats.totals.load_transactions
        );
        // ...but declares shared memory and pays shared traffic (the
        // paper's stated shortcomings).
        assert!(staged_stats.config.shared_words > 0);
        assert!(staged_stats.totals.shared_insts > 0.0);
    }

    #[test]
    fn state_arrays_are_readable() {
        let src = r#"pipeline P(N) {
            actor A(pop 1, push 1) {
                state scale[1];
                push(pop() * scale[0]);
            }
        }"#;
        let program = parse_program(src).unwrap();
        let device = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let in_buf = mem.alloc_from(&[1.0, 2.0, 3.0]);
        let out_buf = mem.alloc(3);
        let scale = mem.alloc_from(&[10.0]);
        let k = MapKernel::new(
            "s",
            program.actors[0].work.body.clone(),
            bindings(&[("N", 3)]),
            None,
            3,
            1,
            1,
            in_buf,
            out_buf,
        )
        .with_state("scale", scale);
        launch(&device, &mut mem, &k, ExecMode::Full);
        assert_eq!(mem.read(out_buf), &[10.0, 20.0, 30.0]);
    }
}
