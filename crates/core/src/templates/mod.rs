//! Kernel templates — the code the compiler "generates".
//!
//! Each template is a parametric kernel executable on the GPU simulator,
//! mirroring a CUDA code template of the original system (the CUDA text
//! itself is emitted by [`crate::codegen`]):
//!
//! * [`map`] — one thread per firing / loop iteration, with layout choice
//!   and thread coarsening;
//! * [`reduction`] — Figure 8's single-kernel and two-kernel reductions;
//! * [`stencil`] — the super-tile shared-memory stencil of Figure 6;
//! * [`fused`] — horizontally-integrated sibling reductions.

pub mod fused;
pub mod map;
pub mod reduction;
pub mod stencil;

pub use fused::FusedReduce;
pub use map::MapKernel;
pub use reduction::{
    merge_kernel, two_kernel_reduce, InitialReduce, ReduceSpec, SingleKernelReduce,
};
pub use stencil::StencilKernel;
