//! Stream-reduction kernel templates (§4.2.1, Figure 8 of the paper).
//!
//! A reduction consumes `n_arrays` arrays of `n_elements` elements each and
//! produces one value per array. Two translation schemes exist:
//!
//! * **Single-kernel** ([`SingleKernelReduce`]): one block per array (or
//!   per few arrays under horizontal thread integration). Each thread
//!   grid-strides over the array combining elements into a register, dumps
//!   partials into shared memory, then the block tree-reduces: loop L1
//!   halves the active threads with barriers down to warp width, loop L2
//!   finishes within one warp without barriers (redundant lanes instead of
//!   divergence, exactly as Figure 8 argues). Best when there are enough
//!   arrays to fill the device.
//!
//! * **Two-kernel** ([`two_kernel_reduce`]): an *initial reduction kernel*
//!   chunks each array across many blocks (there is no inter-block
//!   synchronization, so partials go back to global memory), then a *merge
//!   kernel* reduces the per-block partials. Best when arrays are long and
//!   few — e.g. a dot product of two million-element vectors.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use gpu_sim::{BlockCtx, BufId, Kernel, LaunchConfig};
use streamir::ir::Expr;
use streamir::rates::Bindings;
use streamir::value::Value;

use crate::analysis::opcount::body_counts;
use crate::analysis::reduction::{CombineOp, ReductionPattern};
use crate::bytecode::{self, Frame, FramePool};
use crate::exec_ir::{eval_expr, IrIo};
use crate::layout::Layout;
use crate::runtime::EvalBackend;
use crate::warp::{self, for_lanes, WarpFramePool, WarpIo, MAX_LANES};

const SITE_ELEM: u32 = 0;
const SITE_SHARED_ST: u32 = 1;
const SITE_SHARED_LD: u32 = 2;
const SITE_OUT: u32 = 3;
const SITE_STATE: u32 = 8;

/// The reduction semantics shared by all variants.
#[derive(Debug, Clone)]
pub struct ReduceSpec {
    /// Combiner (associative + commutative).
    pub op: CombineOp,
    /// Initial accumulator value (folded in once per output).
    pub init: f32,
    /// Per-element expression.
    pub elem: Expr,
    /// Loop variable bound to the element index within the array.
    pub loop_var: String,
    /// Pops per element.
    pub pops_per_elem: usize,
    /// Accumulator name used by `post`.
    pub acc_name: String,
    /// Final transform (e.g. `sqrt(acc)`); `None` pushes the accumulator.
    pub post: Option<Expr>,
    /// Parameter bindings.
    pub binds: Bindings,
    /// Bound state arrays.
    pub state: Vec<(String, BufId)>,
    /// Bytecode execution machinery (programs, frame pool, oracle
    /// switch); `Default` compiles lazily on first use.
    pub exec: ReduceExec,
}

/// Bytecode machinery attached to a [`ReduceSpec`]: the (lazily) compiled
/// element/post programs, the engine's frame pool, and the
/// differential-oracle switch. `Default` leaves the cell empty so
/// hand-built specs compile on first use; the runtime injects
/// plan-precompiled programs and the shared pool.
#[derive(Debug, Clone, Default)]
pub struct ReduceExec {
    /// Plan-precompiled `(elem, post)` programs; when present, the lazy
    /// cell binds these instead of re-lowering per launch.
    pub precompiled: Option<(Arc<bytecode::Program>, Option<Arc<bytecode::Program>>)>,
    cell: OnceLock<Arc<CompiledReduce>>,
    /// Frame pool shared with the engine (injected by the runtime).
    pub frames: Arc<FramePool>,
    /// Warp-frame pool shared with the engine.
    pub warp_frames: Arc<WarpFramePool>,
    /// Which evaluator runs element expressions: warp-batched by default,
    /// with the scalar bytecode and AST walker as differential oracles.
    pub backend: EvalBackend,
}

/// A [`ReduceSpec`]'s programs bound against its bindings.
#[derive(Debug)]
pub struct CompiledReduce {
    pub(crate) elem: Arc<bytecode::Program>,
    pub(crate) elem_proto: Vec<Value>,
    pub(crate) loop_slot: Option<u16>,
    /// Element-program state id → index into `ReduceSpec::state`.
    pub(crate) state_slots: Vec<Option<u32>>,
    post: Option<(Arc<bytecode::Program>, Vec<Value>, Option<u16>)>,
}

impl ReduceSpec {
    /// Build a spec from a detected pattern.
    pub fn from_pattern(p: &ReductionPattern, binds: Bindings) -> ReduceSpec {
        let post = if p.post_is_identity() {
            None
        } else {
            Some(p.post.clone())
        };
        ReduceSpec {
            op: p.op,
            init: p.init,
            elem: p.elem.clone(),
            loop_var: p.loop_var.clone(),
            pops_per_elem: p.pops_per_elem,
            acc_name: p.acc.clone(),
            post,
            binds,
            state: Vec::new(),
            exec: ReduceExec::default(),
        }
    }

    /// The trivial spec summing raw elements (used by merge kernels).
    pub fn raw(op: CombineOp, binds: Bindings) -> ReduceSpec {
        ReduceSpec {
            op,
            init: op.identity(),
            elem: Expr::Pop,
            loop_var: "i".into(),
            pops_per_elem: 1,
            acc_name: "acc".into(),
            post: None,
            binds,
            state: Vec::new(),
            exec: ReduceExec::default(),
        }
    }

    /// Instruction estimate per element (for the performance model).
    pub fn compute_per_elem(&self) -> f64 {
        let body = [streamir::ir::Stmt::Push(self.elem.clone())];
        body_counts(&body, &self.binds).compute + 1.0
    }

    /// The spec's bound bytecode programs, compiled on first use (or
    /// adopted from [`ReduceExec::precompiled`]).
    pub(crate) fn compiled(&self) -> &Arc<CompiledReduce> {
        self.exec.cell.get_or_init(|| {
            let (elem, post) = match &self.exec.precompiled {
                Some((e, p)) => (e.clone(), p.clone()),
                None => {
                    let e = Arc::new(
                        bytecode::compile_expr(&self.elem, &self.binds, &[&self.loop_var])
                            .expect("element expression lowers to bytecode"),
                    );
                    let p = self.post.as_ref().map(|post| {
                        Arc::new(
                            bytecode::compile_expr(post, &self.binds, &[&self.acc_name])
                                .expect("post expression lowers to bytecode"),
                        )
                    });
                    (e, p)
                }
            };
            let elem_proto = elem.bind(&self.binds).expect("bindings cover element");
            let loop_slot = elem.slot_of(&self.loop_var);
            let state_slots = elem
                .state_names()
                .iter()
                .map(|n| {
                    self.state
                        .iter()
                        .position(|(s, _)| s == n)
                        .map(|i| i as u32)
                })
                .collect();
            let post = post.map(|p| {
                let proto = p.bind(&self.binds).expect("bindings cover post");
                let acc_slot = p.slot_of(&self.acc_name);
                (p, proto, acc_slot)
            });
            Arc::new(CompiledReduce {
                elem,
                elem_proto,
                loop_slot,
                state_slots,
                post,
            })
        })
    }

    /// Apply the final transform to a combined value.
    pub(crate) fn apply_post(&self, acc: f32) -> f32 {
        let Some(post) = &self.post else {
            return acc;
        };
        if self.exec.backend == EvalBackend::Ast {
            let mut locals: HashMap<String, Value> =
                HashMap::from([(self.acc_name.clone(), Value::F32(acc))]);
            let mut no_io = NoIo;
            return eval_expr(post, &mut locals, &self.binds, &mut no_io)
                .expect("post expression is pure")
                .as_f32()
                .expect("post is numeric");
        }
        let comp = self.compiled();
        let (prog, proto, acc_slot) = comp.post.as_ref().expect("post compiled");
        let mut frame = self.exec.frames.take();
        frame.fit(prog);
        frame.reset(proto);
        if let Some(s) = acc_slot {
            frame.set(*s, Value::F32(acc));
        }
        let v = bytecode::eval_value(prog, &mut frame, &mut NoIo)
            .as_f32()
            .expect("post is numeric");
        self.exec.frames.give(frame);
        v
    }
}

/// I/O that must never be exercised (post expressions are pure).
struct NoIo;

impl IrIo for NoIo {
    fn pop(&mut self) -> f32 {
        panic!("pop in pure expression")
    }
    fn peek(&mut self, _: i64) -> f32 {
        panic!("peek in pure expression")
    }
    fn push(&mut self, _: f32) {
        panic!("push in pure expression")
    }
    fn state_load(&mut self, _: &str, _: i64) -> f32 {
        panic!("state load in pure expression")
    }
    fn state_store(&mut self, _: &str, _: i64, _: f32) {
        panic!("state store in pure expression")
    }
}

/// Element reader: maps the j-th pop of element `g` (global element index)
/// to device addresses under the chosen layout.
struct ElemIo<'c, 'd, 's> {
    ctx: &'c mut BlockCtx<'d>,
    spec: &'s ReduceSpec,
    tid: u32,
    in_buf: BufId,
    in_layout: Layout,
    global_elem: usize,
    total_elems: usize,
    pops: usize,
    /// Block-level scalar-promotion cache for unit-invariant state loads
    /// (see `templates::map`). Capped so per-element indexed state stays
    /// honestly counted.
    state_cache: &'c mut Vec<((u32, i64), f32)>,
    /// Element-program state id → `spec.state` index (empty on the AST
    /// oracle path, which only uses the name-based hooks).
    state_slots: &'s [Option<u32>],
}

const STATE_CACHE_CAP: usize = 64;

impl IrIo for ElemIo<'_, '_, '_> {
    fn pop(&mut self) -> f32 {
        let addr = self.in_layout.addr(
            self.global_elem,
            self.pops,
            self.spec.pops_per_elem,
            self.total_elems,
        );
        self.pops += 1;
        self.ctx.ld_global(SITE_ELEM, self.tid, self.in_buf, addr)
    }

    fn peek(&mut self, _offset: i64) -> f32 {
        panic!("peek rejected by reduction detection")
    }

    fn push(&mut self, _v: f32) {
        panic!("push inside reduction element")
    }

    fn state_load(&mut self, array: &str, idx: i64) -> f32 {
        let (slot, buf) = self
            .spec
            .state
            .iter()
            .enumerate()
            .find(|(_, (n, _))| n == array)
            .map(|(i, (_, b))| (i as u32, *b))
            .unwrap_or_else(|| panic!("unbound state array `{array}`"));
        self.cached_state_load(slot, buf, idx)
    }

    fn state_store(&mut self, _: &str, _: i64, _: f32) {
        panic!("state store inside reduction element")
    }

    fn state_load_id(&mut self, id: u16, array: &str, idx: i64) -> f32 {
        if let Some(Some(slot)) = self.state_slots.get(id as usize) {
            if let Some((n, b)) = self.spec.state.get(*slot as usize) {
                if n == array {
                    let buf = *b;
                    return self.cached_state_load(*slot, buf, idx);
                }
            }
        }
        self.state_load(array, idx)
    }
}

impl ElemIo<'_, '_, '_> {
    /// Shared scalar-promotion cache used by both the name- and id-based
    /// state hooks, so the two execution paths produce identical stats.
    fn cached_state_load(&mut self, slot: u32, buf: BufId, idx: i64) -> f32 {
        if let Some((_, v)) = self.state_cache.iter().find(|(k, _)| *k == (slot, idx)) {
            return *v;
        }
        let v = self
            .ctx
            .ld_global(SITE_STATE + slot, self.tid, buf, idx as usize);
        if self.state_cache.len() < STATE_CACHE_CAP {
            self.state_cache.push(((slot, idx), v));
        }
        v
    }
}

/// Warp-granular element reader: the [`WarpIo`] counterpart of [`ElemIo`].
/// Element expressions are branch-free (`select` is eager), so a warp of
/// elements evaluates with a constant mask; each lane reads its own
/// `(array, element)` pair and whole address rows flow to the accounting
/// engine in one call.
struct ElemWarpIo<'c, 'd, 's> {
    ctx: &'c mut BlockCtx<'d>,
    spec: &'s ReduceSpec,
    warp: u32,
    tid0: u32,
    in_buf: BufId,
    in_layout: Layout,
    /// Per-lane global element index.
    globals: [usize; MAX_LANES],
    total_elems: usize,
    /// Per-lane pop cursor within the current element.
    pops: [usize; MAX_LANES],
    state_cache: &'c mut Vec<((u32, i64), f32)>,
    state_slots: &'s [Option<u32>],
    addrs: &'c mut [Option<u64>],
    vals: &'c mut [f32],
}

impl ElemWarpIo<'_, '_, '_> {
    fn state_ref(&self, id: u16, array: &str) -> (u32, BufId) {
        if let Some(Some(slot)) = self.state_slots.get(id as usize) {
            if let Some((n, b)) = self.spec.state.get(*slot as usize) {
                if n == array {
                    return (*slot, *b);
                }
            }
        }
        self.spec
            .state
            .iter()
            .enumerate()
            .find(|(_, (n, _))| n == array)
            .map(|(i, (_, b))| (i as u32, *b))
            .unwrap_or_else(|| panic!("unbound state array `{array}`"))
    }
}

impl WarpIo for ElemWarpIo<'_, '_, '_> {
    fn pop_row(&mut self, mask: u64, out: &mut [Value]) {
        let ppe = self.spec.pops_per_elem;
        for_lanes(mask, out.len(), |l| {
            let addr = self
                .in_layout
                .addr(self.globals[l], self.pops[l], ppe, self.total_elems);
            self.pops[l] += 1;
            self.addrs[l] = Some(addr as u64);
        });
        self.ctx
            .ld_global_row(SITE_ELEM, self.warp, self.in_buf, self.addrs, self.vals);
        for_lanes(mask, out.len(), |l| out[l] = Value::F32(self.vals[l]));
        self.addrs.fill(None);
    }

    fn peek_row(&mut self, _: u64, _: &mut [Value]) {
        panic!("peek rejected by reduction detection")
    }

    fn push_row(&mut self, _: u64, _: &[Value]) {
        panic!("push inside reduction element")
    }

    fn state_load_row(&mut self, id: u16, array: &str, mask: u64, row: &mut [Value]) {
        // Served per lane through the block's scalar-promotion cache in
        // ascending lane order, mirroring the scalar path exactly.
        let (slot, buf) = self.state_ref(id, array);
        for_lanes(mask, row.len(), |l| {
            let idx = bytecode::as_i64(row[l]);
            let v = if let Some((_, v)) =
                self.state_cache.iter().find(|(key, _)| *key == (slot, idx))
            {
                *v
            } else {
                let v =
                    self.ctx
                        .ld_global(SITE_STATE + slot, self.tid0 + l as u32, buf, idx as usize);
                if self.state_cache.len() < STATE_CACHE_CAP {
                    self.state_cache.push(((slot, idx), v));
                }
                v
            };
            row[l] = Value::F32(v);
        });
    }

    fn state_store_row(&mut self, _: u16, _: &str, _: u64, _: &[Value], _: &[Value]) {
        panic!("state store inside reduction element")
    }
}

/// One warp-wide accumulation sweep shared by [`SingleKernelReduce`] and
/// [`InitialReduce`] phase 1: lanes carry `(array, element, accumulator)`
/// triples, each round evaluates one element row via [`crate::warp::eval_row`]
/// and folds it in, and lanes whose element stream runs dry drop out of
/// the round mask (the reduction analogue of uneven trip counts).
#[allow(clippy::too_many_arguments)]
fn warp_accumulate(
    ctx: &mut BlockCtx<'_>,
    spec: &ReduceSpec,
    comp: &CompiledReduce,
    wf: &mut warp::WarpFrame,
    scratch: &mut WarpScratch,
    state_cache: &mut Vec<((u32, i64), f32)>,
    warp_idx: u32,
    tid0: u32,
    live: usize,
    in_buf: BufId,
    in_layout: Layout,
    n_elements: usize,
    total_elems: usize,
    arrays: &[usize; MAX_LANES],
    elems: &mut [usize; MAX_LANES],
    stride: usize,
    limit: usize,
    mut mask: u64,
    acc: &mut [f32; MAX_LANES],
) {
    let cpe = spec.compute_per_elem() as u32;
    let fpe = 1 + spec.pops_per_elem as u64;
    while mask != 0 {
        wf.reset(&comp.elem_proto);
        if let Some(slot) = comp.loop_slot {
            for_lanes(mask, live, |l| {
                wf.set_lane(slot, l, Value::I64(elems[l] as i64));
            });
        }
        let mut globals = [0usize; MAX_LANES];
        for_lanes(mask, live, |l| {
            globals[l] = arrays[l] * n_elements + elems[l];
        });
        let mut io = ElemWarpIo {
            ctx,
            spec,
            warp: warp_idx,
            tid0,
            in_buf,
            in_layout,
            globals,
            total_elems,
            pops: [0; MAX_LANES],
            state_cache: &mut *state_cache,
            state_slots: &comp.state_slots,
            addrs: &mut scratch.addrs,
            vals: &mut scratch.vals,
        };
        warp::eval_row(&comp.elem, wf, mask, &mut io, &mut scratch.row);
        let mut still = 0u64;
        for_lanes(mask, live, |l| {
            acc[l] = spec.op.apply(acc[l], scratch.row[l]);
            let tid = tid0 + l as u32;
            ctx.compute(tid, cpe);
            ctx.count_flops(fpe);
            elems[l] += stride;
            if elems[l] < limit {
                still |= 1 << l;
            }
        });
        mask = still;
    }
}

/// Reused per-block warp row buffers (`warp_size`-wide address/value rows
/// plus the `eval_row` result row).
struct WarpScratch {
    addrs: Vec<Option<u64>>,
    vals: Vec<f32>,
    row: [f32; MAX_LANES],
}

impl WarpScratch {
    fn new(ws: usize) -> WarpScratch {
        WarpScratch {
            addrs: vec![None; ws],
            vals: vec![0.0; ws],
            row: [0.0; MAX_LANES],
        }
    }

    /// Store each live lane's accumulator to its thread's shared slot as
    /// one row (the warp form of the scalar loop's per-thread
    /// `st_shared`).
    fn store_accs(
        &mut self,
        ctx: &mut BlockCtx<'_>,
        warp_idx: u32,
        tid0: usize,
        live: usize,
        acc: &[f32; MAX_LANES],
    ) {
        for (l, slot) in self.addrs.iter_mut().enumerate().take(live) {
            *slot = Some((tid0 + l) as u64);
            self.vals[l] = acc[l];
        }
        ctx.st_shared_row(SITE_SHARED_ST, warp_idx, &self.addrs, &self.vals);
        self.addrs.fill(None);
    }
}

#[allow(clippy::too_many_arguments)]
fn eval_element(
    ctx: &mut BlockCtx<'_>,
    spec: &ReduceSpec,
    comp: &CompiledReduce,
    frame: &mut Frame,
    tid: u32,
    in_buf: BufId,
    in_layout: Layout,
    elem_in_array: usize,
    array: usize,
    n_elements: usize,
    total_elems: usize,
    state_cache: &mut Vec<((u32, i64), f32)>,
) -> f32 {
    let mut io = ElemIo {
        ctx,
        spec,
        tid,
        in_buf,
        in_layout,
        global_elem: array * n_elements + elem_in_array,
        total_elems,
        pops: 0,
        state_cache,
        state_slots: &comp.state_slots,
    };
    if spec.exec.backend == EvalBackend::Ast {
        let mut locals: HashMap<String, Value> =
            HashMap::from([(spec.loop_var.clone(), Value::I64(elem_in_array as i64))]);
        return eval_expr(&spec.elem, &mut locals, &spec.binds, &mut io)
            .expect("validated element expression")
            .as_f32()
            .expect("element is numeric");
    }
    frame.reset(&comp.elem_proto);
    if let Some(s) = comp.loop_slot {
        frame.set(s, Value::I64(elem_in_array as i64));
    }
    bytecode::eval_value(&comp.elem, frame, &mut io)
        .as_f32()
        .expect("element is numeric")
}

/// Block-level tree reduction over shared memory (Figure 8's loops L1/L2).
///
/// `group_base`/`group_size` allow several reduction groups per block
/// (horizontal thread integration). Returns the combined value, valid on
/// the group's first lane.
fn shared_tree_reduce(ctx: &mut BlockCtx<'_>, op: CombineOp, group_base: usize, group_size: usize) {
    debug_assert!(
        group_size.is_power_of_two(),
        "reduction groups are power-of-two sized (got {group_size})"
    );
    let warp = ctx.warp_size() as usize;
    let combine = |ctx: &mut BlockCtx<'_>, lane: usize, active: usize| {
        let tid = (group_base + lane) as u32;
        let a = ctx.ld_shared(SITE_SHARED_LD, tid, group_base + lane);
        let b = ctx.ld_shared(SITE_SHARED_LD, tid, group_base + lane + active);
        ctx.st_shared(SITE_SHARED_ST, tid, group_base + lane, op.apply(a, b));
        ctx.compute(tid, 1);
    };
    // L1: halve with barriers while more than one warp participates.
    let mut active = group_size / 2;
    while active >= warp {
        for lane in 0..active {
            combine(ctx, lane, active);
        }
        ctx.sync();
        active /= 2;
    }
    // L2: finish within one warp; no barriers needed (Figure 8 keeps warp
    // lanes active rather than diverging further).
    while active >= 1 {
        for lane in 0..active {
            combine(ctx, lane, active);
        }
        active /= 2;
    }
}

/// Single-kernel reduction: each block reduces one array (or
/// `arrays_per_block` arrays, splitting its threads among them).
#[derive(Debug, Clone)]
pub struct SingleKernelReduce {
    pub spec: ReduceSpec,
    pub name: String,
    pub n_arrays: usize,
    pub n_elements: usize,
    /// Arrays handled by one block (horizontal thread integration).
    pub arrays_per_block: usize,
    pub block_dim: u32,
    pub in_buf: BufId,
    pub in_layout: Layout,
    pub out_buf: BufId,
    /// Whether to apply the final transform (`false` for intermediate
    /// stages of a two-kernel reduction).
    pub apply_post: bool,
    /// Output written at `array * out_stride + out_offset` — lets unfused
    /// split-join siblings interleave into a shared round-robin buffer.
    pub out_stride: usize,
    pub out_offset: usize,
}

impl SingleKernelReduce {
    fn threads_per_array(&self) -> usize {
        (self.block_dim as usize / self.arrays_per_block).max(1)
    }
}

impl Kernel for SingleKernelReduce {
    fn name(&self) -> &str {
        &self.name
    }

    fn config(&self) -> LaunchConfig {
        let grid = self.n_arrays.div_ceil(self.arrays_per_block).max(1) as u32;
        LaunchConfig::new(grid, self.block_dim, self.block_dim)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        let tpa = self.threads_per_array();
        let total_elems = self.n_arrays * self.n_elements;
        let comp = self.spec.compiled().clone();
        let mut state_cache: Vec<((u32, i64), f32)> = Vec::new();
        // Phase 1: grid-stride accumulation into registers, then shared.
        if self.spec.exec.backend == EvalBackend::Warp {
            let ws = ctx.warp_size() as usize;
            let bdim = self.block_dim as usize;
            let mut wf = self.spec.exec.warp_frames.take();
            wf.fit(&comp.elem, ws.min(bdim));
            let mut scratch = WarpScratch::new(ws);
            let mut lane0 = 0usize;
            while lane0 < bdim {
                let live = (bdim - lane0).min(ws);
                let mut acc = [self.spec.op.identity(); MAX_LANES];
                let mut arrays = [0usize; MAX_LANES];
                let mut elems = [0usize; MAX_LANES];
                let mut mask = 0u64;
                for l in 0..live {
                    let tid = lane0 + l;
                    let local_array = tid / tpa;
                    arrays[l] = block as usize * self.arrays_per_block + local_array;
                    elems[l] = tid % tpa;
                    if local_array < self.arrays_per_block
                        && arrays[l] < self.n_arrays
                        && elems[l] < self.n_elements
                    {
                        mask |= 1 << l;
                    }
                }
                let warp_idx = (lane0 / ws) as u32;
                warp_accumulate(
                    ctx,
                    &self.spec,
                    &comp,
                    &mut wf,
                    &mut scratch,
                    &mut state_cache,
                    warp_idx,
                    lane0 as u32,
                    live,
                    self.in_buf,
                    self.in_layout,
                    self.n_elements,
                    total_elems,
                    &arrays,
                    &mut elems,
                    tpa,
                    self.n_elements,
                    mask,
                    &mut acc,
                );
                scratch.store_accs(ctx, warp_idx, lane0, live, &acc);
                lane0 += ws;
            }
            self.spec.exec.warp_frames.give(wf);
        } else {
            let mut frame = self.spec.exec.frames.take();
            frame.fit(&comp.elem);
            for tid in ctx.threads() {
                let local_array = tid as usize / tpa;
                let lane = tid as usize % tpa;
                let array = block as usize * self.arrays_per_block + local_array;
                let mut acc = self.spec.op.identity();
                if local_array < self.arrays_per_block && array < self.n_arrays {
                    let mut e = lane;
                    while e < self.n_elements {
                        let v = eval_element(
                            ctx,
                            &self.spec,
                            &comp,
                            &mut frame,
                            tid,
                            self.in_buf,
                            self.in_layout,
                            e,
                            array,
                            self.n_elements,
                            total_elems,
                            &mut state_cache,
                        );
                        acc = self.spec.op.apply(acc, v);
                        ctx.compute(tid, self.spec.compute_per_elem() as u32);
                        ctx.count_flops(1 + self.spec.pops_per_elem as u64);
                        e += tpa;
                    }
                }
                ctx.st_shared(SITE_SHARED_ST, tid, tid as usize, acc);
            }
            self.spec.exec.frames.give(frame);
        }
        ctx.sync();
        // Phase 2: tree reduction per array group.
        for local_array in 0..self.arrays_per_block {
            shared_tree_reduce(ctx, self.spec.op, local_array * tpa, tpa);
        }
        ctx.sync();
        // First lane of each group writes the result.
        for local_array in 0..self.arrays_per_block {
            let array = block as usize * self.arrays_per_block + local_array;
            if array >= self.n_arrays {
                continue;
            }
            let tid = (local_array * tpa) as u32;
            let combined = ctx.ld_shared(SITE_SHARED_LD, tid, local_array * tpa);
            let v = self.spec.op.apply(combined, self.spec.init);
            let v = if self.apply_post {
                self.spec.apply_post(v)
            } else {
                v
            };
            ctx.st_global(
                SITE_OUT,
                tid,
                self.out_buf,
                array * self.out_stride.max(1) + self.out_offset,
                v,
            );
        }
    }
}

/// The initial (chunking) kernel of the two-kernel scheme.
#[derive(Debug, Clone)]
pub struct InitialReduce {
    pub spec: ReduceSpec,
    pub name: String,
    pub n_arrays: usize,
    pub n_elements: usize,
    /// Blocks per array.
    pub initial_blocks: usize,
    pub block_dim: u32,
    pub in_buf: BufId,
    pub in_layout: Layout,
    /// Receives `n_arrays * initial_blocks` partials.
    pub partials_buf: BufId,
}

impl Kernel for InitialReduce {
    fn name(&self) -> &str {
        &self.name
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new(
            (self.n_arrays * self.initial_blocks) as u32,
            self.block_dim,
            self.block_dim,
        )
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        let array = block as usize / self.initial_blocks;
        let chunk = block as usize % self.initial_blocks;
        // Chunk boundaries aligned to the transaction size so every
        // grid-stride warp load stays within one segment.
        let chunk_size = self
            .n_elements
            .div_ceil(self.initial_blocks)
            .next_multiple_of(32);
        let lo = (chunk * chunk_size).min(self.n_elements);
        let hi = ((chunk + 1) * chunk_size).min(self.n_elements);
        let total_elems = self.n_arrays * self.n_elements;
        let comp = self.spec.compiled().clone();
        let mut state_cache: Vec<((u32, i64), f32)> = Vec::new();

        if self.spec.exec.backend == EvalBackend::Warp {
            let ws = ctx.warp_size() as usize;
            let bdim = self.block_dim as usize;
            let mut wf = self.spec.exec.warp_frames.take();
            wf.fit(&comp.elem, ws.min(bdim));
            let mut scratch = WarpScratch::new(ws);
            let mut arrays = [0usize; MAX_LANES];
            arrays.fill(array);
            let mut lane0 = 0usize;
            while lane0 < bdim {
                let live = (bdim - lane0).min(ws);
                let mut acc = [self.spec.op.identity(); MAX_LANES];
                let mut elems = [0usize; MAX_LANES];
                let mut mask = 0u64;
                for (l, elem) in elems.iter_mut().enumerate().take(live) {
                    *elem = lo + lane0 + l;
                    if *elem < hi {
                        mask |= 1 << l;
                    }
                }
                let warp_idx = (lane0 / ws) as u32;
                warp_accumulate(
                    ctx,
                    &self.spec,
                    &comp,
                    &mut wf,
                    &mut scratch,
                    &mut state_cache,
                    warp_idx,
                    lane0 as u32,
                    live,
                    self.in_buf,
                    self.in_layout,
                    self.n_elements,
                    total_elems,
                    &arrays,
                    &mut elems,
                    bdim,
                    hi,
                    mask,
                    &mut acc,
                );
                scratch.store_accs(ctx, warp_idx, lane0, live, &acc);
                lane0 += ws;
            }
            self.spec.exec.warp_frames.give(wf);
        } else {
            let mut frame = self.spec.exec.frames.take();
            frame.fit(&comp.elem);
            for tid in ctx.threads() {
                let mut acc = self.spec.op.identity();
                let mut e = lo + tid as usize;
                while e < hi {
                    let v = eval_element(
                        ctx,
                        &self.spec,
                        &comp,
                        &mut frame,
                        tid,
                        self.in_buf,
                        self.in_layout,
                        e,
                        array,
                        self.n_elements,
                        total_elems,
                        &mut state_cache,
                    );
                    acc = self.spec.op.apply(acc, v);
                    ctx.compute(tid, self.spec.compute_per_elem() as u32);
                    ctx.count_flops(1 + self.spec.pops_per_elem as u64);
                    e += self.block_dim as usize;
                }
                ctx.st_shared(SITE_SHARED_ST, tid, tid as usize, acc);
            }
            self.spec.exec.frames.give(frame);
        }
        ctx.sync();
        shared_tree_reduce(ctx, self.spec.op, 0, self.block_dim as usize);
        ctx.sync();
        let combined = ctx.ld_shared(SITE_SHARED_LD, 0, 0);
        ctx.st_global(
            SITE_OUT,
            0,
            self.partials_buf,
            array * self.initial_blocks + chunk,
            combined,
        );
    }
}

/// Build the merge kernel that finishes a two-kernel reduction: reduces
/// each array's `initial_blocks` partials, folds in the initial value and
/// applies the final transform.
pub fn merge_kernel(
    spec: &ReduceSpec,
    n_arrays: usize,
    initial_blocks: usize,
    partials_buf: BufId,
    out_buf: BufId,
) -> SingleKernelReduce {
    let mut raw = ReduceSpec::raw(spec.op, spec.binds.clone());
    raw.init = spec.init;
    raw.post = spec.post.clone();
    raw.acc_name = spec.acc_name.clone();
    raw.exec.frames = spec.exec.frames.clone();
    raw.exec.warp_frames = spec.exec.warp_frames.clone();
    raw.exec.backend = spec.exec.backend;
    SingleKernelReduce {
        spec: raw,
        name: "reduce_merge".into(),
        n_arrays,
        n_elements: initial_blocks,
        arrays_per_block: 1,
        block_dim: (initial_blocks.next_power_of_two().max(32) as u32).min(256),
        in_buf: partials_buf,
        in_layout: Layout::RowMajor,
        out_buf,
        apply_post: true,
        out_stride: 1,
        out_offset: 0,
    }
}

/// Convenience: the two kernels of the two-kernel scheme, in launch order.
///
/// The caller allocates `partials_buf` with `n_arrays * initial_blocks`
/// words. The initial kernel's `init`/`post` are suppressed (identity
/// partials); the merge kernel applies both.
#[allow(clippy::too_many_arguments)]
pub fn two_kernel_reduce(
    spec: ReduceSpec,
    n_arrays: usize,
    n_elements: usize,
    initial_blocks: usize,
    block_dim: u32,
    in_buf: BufId,
    in_layout: Layout,
    partials_buf: BufId,
    out_buf: BufId,
) -> (InitialReduce, SingleKernelReduce) {
    let merge = merge_kernel(&spec, n_arrays, initial_blocks, partials_buf, out_buf);
    let initial = InitialReduce {
        spec,
        name: "reduce_initial".into(),
        n_arrays,
        n_elements,
        initial_blocks,
        block_dim,
        in_buf,
        in_layout,
        partials_buf,
    };
    (initial, merge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{launch, DeviceSpec, ExecMode, GlobalMem};
    use streamir::graph::bindings;
    use streamir::ir::Intrinsic;

    fn sum_spec() -> ReduceSpec {
        ReduceSpec::raw(CombineOp::Add, bindings(&[]))
    }

    fn assert_close(a: f32, b: f32) {
        let tol = 1e-4 * b.abs().max(1.0);
        assert!((a - b).abs() <= tol, "{a} != {b}");
    }

    #[test]
    fn single_kernel_sums_one_array() {
        let device = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let n = 10_000usize;
        let data: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
        let expected: f32 = data.iter().sum();
        let in_buf = mem.alloc_from(&data);
        let out_buf = mem.alloc(1);
        let k = SingleKernelReduce {
            spec: sum_spec(),
            name: "sum".into(),
            n_arrays: 1,
            n_elements: n,
            arrays_per_block: 1,
            block_dim: 256,
            in_buf,
            in_layout: Layout::RowMajor,
            out_buf,
            apply_post: true,
            out_stride: 1,
            out_offset: 0,
        };
        launch(&device, &mut mem, &k, ExecMode::Full);
        assert_close(mem.read(out_buf)[0], expected);
    }

    #[test]
    fn single_kernel_many_arrays() {
        let device = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let (n_arrays, n_elements) = (37, 129); // deliberately odd sizes
        let data: Vec<f32> = (0..n_arrays * n_elements)
            .map(|i| ((i * 13) % 11) as f32 - 5.0)
            .collect();
        let in_buf = mem.alloc_from(&data);
        let out_buf = mem.alloc(n_arrays);
        let k = SingleKernelReduce {
            spec: sum_spec(),
            name: "sum".into(),
            n_arrays,
            n_elements,
            arrays_per_block: 1,
            block_dim: 128,
            in_buf,
            in_layout: Layout::RowMajor,
            out_buf,
            apply_post: true,
            out_stride: 1,
            out_offset: 0,
        };
        launch(&device, &mut mem, &k, ExecMode::Full);
        for a in 0..n_arrays {
            let expected: f32 = data[a * n_elements..(a + 1) * n_elements].iter().sum();
            assert_close(mem.read(out_buf)[a], expected);
        }
    }

    #[test]
    fn horizontal_thread_integration_multiple_arrays_per_block() {
        let device = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let (n_arrays, n_elements) = (64, 33);
        let data: Vec<f32> = (0..n_arrays * n_elements).map(|i| (i % 5) as f32).collect();
        let in_buf = mem.alloc_from(&data);
        let out_buf = mem.alloc(n_arrays);
        let k = SingleKernelReduce {
            spec: sum_spec(),
            name: "sum_hti".into(),
            n_arrays,
            n_elements,
            arrays_per_block: 4,
            block_dim: 128, // 32 threads per array
            in_buf,
            in_layout: Layout::RowMajor,
            out_buf,
            apply_post: true,
            out_stride: 1,
            out_offset: 0,
        };
        let stats = launch(&device, &mut mem, &k, ExecMode::Full);
        assert_eq!(stats.config.grid_dim, 16);
        for a in 0..n_arrays {
            let expected: f32 = data[a * n_elements..(a + 1) * n_elements].iter().sum();
            assert_close(mem.read(out_buf)[a], expected);
        }
    }

    #[test]
    fn two_kernel_matches_fold() {
        let device = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let n = 1 << 18;
        let data: Vec<f32> = (0..n).map(|i| ((i % 9) as f32) * 0.5).collect();
        let expected: f32 = data.iter().sum();
        let in_buf = mem.alloc_from(&data);
        let initial_blocks = 28;
        let partials = mem.alloc(initial_blocks);
        let out_buf = mem.alloc(1);
        let (k1, k2) = two_kernel_reduce(
            sum_spec(),
            1,
            n,
            initial_blocks,
            256,
            in_buf,
            Layout::RowMajor,
            partials,
            out_buf,
        );
        launch(&device, &mut mem, &k1, ExecMode::Full);
        launch(&device, &mut mem, &k2, ExecMode::Full);
        assert_close(mem.read(out_buf)[0], expected);
    }

    #[test]
    fn max_reduction_with_post() {
        // isamax-like: max(abs(x)), then post = acc * 2.
        let device = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let data = vec![1.0, -9.0, 3.5, 2.0, -4.0];
        let in_buf = mem.alloc_from(&data);
        let out_buf = mem.alloc(1);
        let spec = ReduceSpec {
            op: CombineOp::Max,
            init: CombineOp::Max.identity(),
            elem: Expr::Call {
                intrinsic: Intrinsic::Abs,
                args: vec![Expr::Pop],
            },
            loop_var: "i".into(),
            pops_per_elem: 1,
            acc_name: "m".into(),
            post: Some(Expr::mul(Expr::var("m"), Expr::Float(2.0))),
            binds: bindings(&[]),
            state: Vec::new(),
            exec: ReduceExec::default(),
        };
        let k = SingleKernelReduce {
            spec,
            name: "isamax".into(),
            n_arrays: 1,
            n_elements: data.len(),
            arrays_per_block: 1,
            block_dim: 32,
            in_buf,
            in_layout: Layout::RowMajor,
            out_buf,
            apply_post: true,
            out_stride: 1,
            out_offset: 0,
        };
        launch(&device, &mut mem, &k, ExecMode::Full);
        assert_close(mem.read(out_buf)[0], 18.0);
    }

    #[test]
    fn dot_product_via_two_pops_and_layouts() {
        // Interleaved (x, y) pairs: elem = pop() * pop().
        let device = DeviceSpec::tesla_c2050();
        let n = 4096usize;
        let mut interleaved = Vec::with_capacity(2 * n);
        for i in 0..n {
            interleaved.push((i % 13) as f32);
            interleaved.push(((i + 3) % 7) as f32);
        }
        let expected: f32 = (0..n)
            .map(|i| interleaved[2 * i] * interleaved[2 * i + 1])
            .sum();
        let spec = ReduceSpec {
            op: CombineOp::Add,
            init: 0.0,
            elem: Expr::mul(Expr::Pop, Expr::Pop),
            loop_var: "i".into(),
            pops_per_elem: 2,
            acc_name: "acc".into(),
            post: None,
            binds: bindings(&[]),
            state: Vec::new(),
            exec: ReduceExec::default(),
        };

        // Row-major (interleaved as-is).
        let mut mem = GlobalMem::new();
        let in_buf = mem.alloc_from(&interleaved);
        let out_buf = mem.alloc(1);
        let k = SingleKernelReduce {
            spec: spec.clone(),
            name: "sdot".into(),
            n_arrays: 1,
            n_elements: n,
            arrays_per_block: 1,
            block_dim: 256,
            in_buf,
            in_layout: Layout::RowMajor,
            out_buf,
            apply_post: true,
            out_stride: 1,
            out_offset: 0,
        };
        let rm_stats = launch(&device, &mut mem, &k, ExecMode::Full);
        assert_close(mem.read(out_buf)[0], expected);

        // Restructured: x's then y's.
        let mut mem2 = GlobalMem::new();
        let in2 = mem2.alloc_from(&crate::layout::restructure(&interleaved, 2));
        let out2 = mem2.alloc(1);
        let k2 = SingleKernelReduce {
            spec,
            name: "sdot_t".into(),
            n_arrays: 1,
            n_elements: n,
            arrays_per_block: 1,
            block_dim: 256,
            in_buf: in2,
            in_layout: Layout::Transposed,
            out_buf: out2,
            apply_post: true,
            out_stride: 1,
            out_offset: 0,
        };
        let t_stats = launch(&device, &mut mem2, &k2, ExecMode::Full);
        assert_close(mem2.read(out2)[0], expected);
        assert!(
            t_stats.totals.load_transactions < rm_stats.totals.load_transactions,
            "restructuring should reduce transactions: {} vs {}",
            t_stats.totals.load_transactions,
            rm_stats.totals.load_transactions
        );
    }

    #[test]
    fn state_indexed_elements_tmv_row() {
        // One row-dot: elem = pop() * x[i].
        let device = DeviceSpec::tesla_c2050();
        let cols = 1000usize;
        let row: Vec<f32> = (0..cols).map(|i| (i % 10) as f32).collect();
        let x: Vec<f32> = (0..cols).map(|i| ((i + 1) % 4) as f32).collect();
        let expected: f32 = row.iter().zip(&x).map(|(a, b)| a * b).sum();
        let mut mem = GlobalMem::new();
        let in_buf = mem.alloc_from(&row);
        let x_buf = mem.alloc_from(&x);
        let out_buf = mem.alloc(1);
        let mut spec = ReduceSpec {
            op: CombineOp::Add,
            init: 0.0,
            elem: Expr::mul(
                Expr::Pop,
                Expr::StateLoad {
                    array: "x".into(),
                    index: Box::new(Expr::var("i")),
                },
            ),
            loop_var: "i".into(),
            pops_per_elem: 1,
            acc_name: "acc".into(),
            post: None,
            binds: bindings(&[("cols", cols as i64)]),
            state: Vec::new(),
            exec: ReduceExec::default(),
        };
        spec.state.push(("x".into(), x_buf));
        let k = SingleKernelReduce {
            spec,
            name: "tmv_row".into(),
            n_arrays: 1,
            n_elements: cols,
            arrays_per_block: 1,
            block_dim: 128,
            in_buf,
            in_layout: Layout::RowMajor,
            out_buf,
            apply_post: true,
            out_stride: 1,
            out_offset: 0,
        };
        launch(&device, &mut mem, &k, ExecMode::Full);
        assert_close(mem.read(out_buf)[0], expected);
    }

    #[test]
    fn product_reduction_nonzero_identity() {
        let device = DeviceSpec::tesla_c2050();
        let mut mem = GlobalMem::new();
        let data = vec![1.5, 2.0, 4.0, 0.5];
        let in_buf = mem.alloc_from(&data);
        let out_buf = mem.alloc(1);
        let k = SingleKernelReduce {
            spec: ReduceSpec::raw(CombineOp::Mul, bindings(&[])),
            name: "prod".into(),
            n_arrays: 1,
            n_elements: data.len(),
            arrays_per_block: 1,
            block_dim: 32,
            in_buf,
            in_layout: Layout::RowMajor,
            out_buf,
            apply_post: true,
            out_stride: 1,
            out_offset: 0,
        };
        launch(&device, &mut mem, &k, ExecMode::Full);
        assert_close(mem.read(out_buf)[0], 6.0);
    }
}
