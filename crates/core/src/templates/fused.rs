//! Horizontally-integrated reduction kernel (§4.3.2 of the paper).
//!
//! When a duplicate splitter feeds several reduction actors (e.g. a
//! program needing both the maximum *and* the sum of an array), launching
//! one kernel per actor reads the input once per actor and pays the launch
//! and synchronization overheads repeatedly. Horizontal actor integration
//! fuses the siblings into one kernel: each element window is loaded from
//! global memory *once* and fed to every reduction's element expression;
//! the block then tree-reduces one shared-memory segment per sibling.

use std::collections::HashMap;

use gpu_sim::{BlockCtx, BufId, Kernel, LaunchConfig};
use streamir::value::Value;

use crate::bytecode;
use crate::exec_ir::{eval_expr, IrIo};
use crate::layout::Layout;
use crate::runtime::EvalBackend;
use crate::templates::reduction::{CompiledReduce, ReduceSpec};
use crate::warp::{self, for_lanes, WarpIo, MAX_LANES};
use std::sync::Arc;

const SITE_ELEM: u32 = 0;
const SITE_SHARED_ST: u32 = 1;
const SITE_SHARED_LD: u32 = 2;
const SITE_OUT: u32 = 3;
const SITE_STATE: u32 = 8;

/// One kernel computing several reductions over the same input.
#[derive(Debug, Clone)]
pub struct FusedReduce {
    /// Sibling reductions; all must pop the same number of items per
    /// element (they observe the same duplicated stream).
    pub specs: Vec<ReduceSpec>,
    pub name: String,
    pub n_arrays: usize,
    pub n_elements: usize,
    pub block_dim: u32,
    pub in_buf: BufId,
    pub in_layout: Layout,
    /// Receives `n_arrays * specs.len()` results, sibling-major per array
    /// (matching a round-robin joiner's interleaving).
    pub out_buf: BufId,
}

impl FusedReduce {
    fn pops_per_elem(&self) -> usize {
        self.specs.first().map_or(0, |s| s.pops_per_elem)
    }
}

/// Serves pops from a pre-loaded element window (so siblings share loads).
struct WindowIo<'c, 'd, 's> {
    ctx: &'c mut BlockCtx<'d>,
    spec: &'s ReduceSpec,
    tid: u32,
    window: &'s [f32],
    cursor: usize,
    /// Element-program state id → `spec.state` index.
    state_slots: &'s [Option<u32>],
}

impl IrIo for WindowIo<'_, '_, '_> {
    fn pop(&mut self) -> f32 {
        let v = self.window[self.cursor];
        self.cursor += 1;
        v
    }

    fn peek(&mut self, _offset: i64) -> f32 {
        panic!("peek rejected by reduction detection")
    }

    fn push(&mut self, _: f32) {
        panic!("push inside reduction element")
    }

    fn state_load(&mut self, array: &str, idx: i64) -> f32 {
        let (slot, buf) = self
            .spec
            .state
            .iter()
            .enumerate()
            .find(|(_, (n, _))| n == array)
            .map(|(i, (_, b))| (i as u32, *b))
            .unwrap_or_else(|| panic!("unbound state array `{array}`"));
        self.ctx
            .ld_global(SITE_STATE + slot, self.tid, buf, idx as usize)
    }

    fn state_store(&mut self, _: &str, _: i64, _: f32) {
        panic!("state store inside reduction element")
    }

    fn state_load_id(&mut self, id: u16, array: &str, idx: i64) -> f32 {
        if let Some(Some(slot)) = self.state_slots.get(id as usize) {
            if let Some((n, b)) = self.spec.state.get(*slot as usize) {
                if n == array {
                    let (slot, buf) = (*slot, *b);
                    return self
                        .ctx
                        .ld_global(SITE_STATE + slot, self.tid, buf, idx as usize);
                }
            }
        }
        self.state_load(array, idx)
    }
}

/// Warp-granular window reader: pops come from the pre-loaded per-lane
/// element windows (`windows[j][lane]` is lane `lane`'s `j`-th popped
/// word), state loads go straight to global as whole rows (the fused
/// template has no scalar-promotion cache, matching [`WindowIo`]).
struct WindowWarpIo<'c, 'd, 's> {
    ctx: &'c mut BlockCtx<'d>,
    spec: &'s ReduceSpec,
    warp: u32,
    windows: &'s [Vec<f32>],
    cursor: [usize; MAX_LANES],
    state_slots: &'s [Option<u32>],
    addrs: &'c mut [Option<u64>],
    vals: &'c mut [f32],
}

impl WarpIo for WindowWarpIo<'_, '_, '_> {
    fn pop_row(&mut self, mask: u64, out: &mut [Value]) {
        for_lanes(mask, out.len(), |l| {
            out[l] = Value::F32(self.windows[self.cursor[l]][l]);
            self.cursor[l] += 1;
        });
    }

    fn peek_row(&mut self, _: u64, _: &mut [Value]) {
        panic!("peek rejected by reduction detection")
    }

    fn push_row(&mut self, _: u64, _: &[Value]) {
        panic!("push inside reduction element")
    }

    fn state_load_row(&mut self, id: u16, array: &str, mask: u64, row: &mut [Value]) {
        let (slot, buf) = if let Some(Some(slot)) = self.state_slots.get(id as usize) {
            match self.spec.state.get(*slot as usize) {
                Some((n, b)) if n == array => (*slot, *b),
                _ => resolve_state(self.spec, array),
            }
        } else {
            resolve_state(self.spec, array)
        };
        for_lanes(mask, row.len(), |l| {
            self.addrs[l] = Some(bytecode::as_i64(row[l]) as u64);
        });
        self.ctx
            .ld_global_row(SITE_STATE + slot, self.warp, buf, self.addrs, self.vals);
        for_lanes(mask, row.len(), |l| row[l] = Value::F32(self.vals[l]));
        self.addrs.fill(None);
    }

    fn state_store_row(&mut self, _: u16, _: &str, _: u64, _: &[Value], _: &[Value]) {
        panic!("state store inside reduction element")
    }
}

fn resolve_state(spec: &ReduceSpec, array: &str) -> (u32, BufId) {
    spec.state
        .iter()
        .enumerate()
        .find(|(_, (n, _))| n == array)
        .map(|(i, (_, b))| (i as u32, *b))
        .unwrap_or_else(|| panic!("unbound state array `{array}`"))
}

impl Kernel for FusedReduce {
    fn name(&self) -> &str {
        &self.name
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new(
            self.n_arrays as u32,
            self.block_dim,
            self.block_dim * self.specs.len() as u32,
        )
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        let array = block as usize;
        let k = self.specs.len();
        let bdim = self.block_dim as usize;
        let comps: Vec<_> = self.specs.iter().map(|s| s.compiled().clone()).collect();
        let warp_mode = !self.specs.is_empty()
            && self
                .specs
                .iter()
                .all(|s| s.exec.backend == EvalBackend::Warp);

        if warp_mode {
            self.run_phase1_warp(array, ctx, &comps);
        } else {
            self.run_phase1_scalar(array, ctx, &comps);
        }
        ctx.sync();

        // Phase 2: one tree reduction per sibling segment.
        for (s, spec) in self.specs.iter().enumerate() {
            tree_reduce_segment(ctx, spec, s * bdim, bdim);
        }
        ctx.sync();

        // Phase 3: lane 0 applies init/post and writes each output.
        for (s, spec) in self.specs.iter().enumerate() {
            let combined = ctx.ld_shared(SITE_SHARED_LD, 0, s * bdim);
            let v = spec.op.apply(combined, spec.init);
            let v = spec.apply_post(v);
            ctx.st_global(SITE_OUT, 0, self.out_buf, array * k + s, v);
        }
    }
}

impl FusedReduce {
    /// Phase 1 under the scalar bytecode / AST backends: per-thread
    /// grid-stride, each window loaded word-at-a-time and fed to every
    /// sibling in turn.
    fn run_phase1_scalar(
        &self,
        array: usize,
        ctx: &mut BlockCtx<'_>,
        comps: &[Arc<CompiledReduce>],
    ) {
        let ppe = self.pops_per_elem();
        let total_elems = self.n_arrays * self.n_elements;
        let bdim = self.block_dim as usize;
        let mut frames: Vec<_> = self
            .specs
            .iter()
            .zip(comps)
            .map(|(s, c)| {
                let mut f = s.exec.frames.take();
                f.fit(&c.elem);
                f
            })
            .collect();

        let mut accs = vec![0.0f32; self.specs.len()];
        let mut window = vec![0.0f32; ppe];
        for tid in ctx.threads() {
            for (s, spec) in self.specs.iter().enumerate() {
                accs[s] = spec.op.identity();
            }
            let mut e = tid as usize;
            while e < self.n_elements {
                let global_elem = array * self.n_elements + e;
                for (j, w) in window.iter_mut().enumerate() {
                    let addr = self.in_layout.addr(global_elem, j, ppe, total_elems);
                    *w = ctx.ld_global(SITE_ELEM, tid, self.in_buf, addr);
                }
                for (s, spec) in self.specs.iter().enumerate() {
                    let comp = &comps[s];
                    let mut io = WindowIo {
                        ctx,
                        spec,
                        tid,
                        window: &window,
                        cursor: 0,
                        state_slots: &comp.state_slots,
                    };
                    let v = if spec.exec.backend == EvalBackend::Ast {
                        let mut locals: HashMap<String, Value> =
                            HashMap::from([(spec.loop_var.clone(), Value::I64(e as i64))]);
                        eval_expr(&spec.elem, &mut locals, &spec.binds, &mut io)
                            .expect("validated element")
                            .as_f32()
                            .expect("numeric element")
                    } else {
                        let frame = &mut frames[s];
                        frame.reset(&comp.elem_proto);
                        if let Some(slot) = comp.loop_slot {
                            frame.set(slot, Value::I64(e as i64));
                        }
                        bytecode::eval_value(&comp.elem, frame, &mut io)
                            .as_f32()
                            .expect("numeric element")
                    };
                    accs[s] = spec.op.apply(accs[s], v);
                    ctx.compute(tid, spec.compute_per_elem() as u32);
                    ctx.count_flops(1);
                }
                e += bdim;
            }
            for (s, acc) in accs.iter().enumerate() {
                ctx.st_shared(SITE_SHARED_ST, tid, s * bdim + tid as usize, *acc);
            }
        }
        for (spec, frame) in self.specs.iter().zip(frames) {
            spec.exec.frames.give(frame);
        }
    }

    /// Phase 1 under the warp backend: whole warps march the grid-stride
    /// loop in lockstep. Each popped word becomes one batched load row
    /// shared by every sibling, each sibling's (branch-free) element
    /// program runs once per warp via [`warp::eval_row`], and the final
    /// accumulators land in shared memory as one row per sibling.
    ///
    /// Per lane the `(site, occurrence) -> address` stream is identical
    /// to the scalar loop's, and the accounting engine groups accesses by
    /// occurrence rather than arrival order, so counters stay
    /// bit-identical to the scalar backend.
    fn run_phase1_warp(&self, array: usize, ctx: &mut BlockCtx<'_>, comps: &[Arc<CompiledReduce>]) {
        let ppe = self.pops_per_elem();
        let total_elems = self.n_arrays * self.n_elements;
        let bdim = self.block_dim as usize;
        let ws = ctx.warp_size() as usize;
        let width = ws.min(bdim);
        let mut wfs: Vec<_> = self
            .specs
            .iter()
            .zip(comps)
            .map(|(s, c)| {
                let mut wf = s.exec.warp_frames.take();
                wf.fit(&c.elem, width);
                wf
            })
            .collect();
        let mut addrs = vec![None; ws];
        let mut vals = vec![0.0f32; ws];
        let mut windows: Vec<Vec<f32>> = vec![vec![0.0; ws]; ppe];
        let mut row = [0.0f32; MAX_LANES];
        let mut accs = vec![[0.0f32; MAX_LANES]; self.specs.len()];
        let mut elems = [0usize; MAX_LANES];

        let mut lane0 = 0usize;
        while lane0 < bdim {
            let live = (bdim - lane0).min(ws);
            let warp = (lane0 / ws) as u32;
            for (s, spec) in self.specs.iter().enumerate() {
                accs[s][..live].fill(spec.op.identity());
            }
            let mut mask = 0u64;
            for (l, elem) in elems.iter_mut().enumerate().take(live) {
                *elem = lane0 + l;
                if *elem < self.n_elements {
                    mask |= 1 << l;
                }
            }
            while mask != 0 {
                for (j, w) in windows.iter_mut().enumerate() {
                    for_lanes(mask, live, |l| {
                        let global_elem = array * self.n_elements + elems[l];
                        addrs[l] =
                            Some(self.in_layout.addr(global_elem, j, ppe, total_elems) as u64);
                    });
                    ctx.ld_global_row(SITE_ELEM, warp, self.in_buf, &addrs, &mut vals);
                    for_lanes(mask, live, |l| w[l] = vals[l]);
                    addrs.fill(None);
                }
                for (s, spec) in self.specs.iter().enumerate() {
                    let comp = &comps[s];
                    let wf = &mut wfs[s];
                    wf.reset(&comp.elem_proto);
                    if let Some(slot) = comp.loop_slot {
                        for_lanes(mask, live, |l| {
                            wf.set_lane(slot, l, Value::I64(elems[l] as i64));
                        });
                    }
                    let mut io = WindowWarpIo {
                        ctx,
                        spec,
                        warp,
                        windows: &windows,
                        cursor: [0; MAX_LANES],
                        state_slots: &comp.state_slots,
                        addrs: &mut addrs,
                        vals: &mut vals,
                    };
                    warp::eval_row(&comp.elem, wf, mask, &mut io, &mut row);
                    for_lanes(mask, live, |l| {
                        accs[s][l] = spec.op.apply(accs[s][l], row[l]);
                        ctx.compute((lane0 + l) as u32, spec.compute_per_elem() as u32);
                        ctx.count_flops(1);
                    });
                }
                let mut next = 0u64;
                for_lanes(mask, live, |l| {
                    elems[l] += bdim;
                    if elems[l] < self.n_elements {
                        next |= 1 << l;
                    }
                });
                mask = next;
            }
            for (s, _) in self.specs.iter().enumerate() {
                for l in 0..live {
                    addrs[l] = Some((s * bdim + lane0 + l) as u64);
                    vals[l] = accs[s][l];
                }
                ctx.st_shared_row(SITE_SHARED_ST, warp, &addrs, &vals);
                addrs.fill(None);
            }
            lane0 += ws;
        }
        for (spec, wf) in self.specs.iter().zip(wfs) {
            spec.exec.warp_frames.give(wf);
        }
    }
}

fn tree_reduce_segment(ctx: &mut BlockCtx<'_>, spec: &ReduceSpec, base: usize, size: usize) {
    debug_assert!(size.is_power_of_two());
    let warp = ctx.warp_size() as usize;
    let mut active = size / 2;
    while active >= 1 {
        for lane in 0..active {
            let tid = lane as u32;
            let a = ctx.ld_shared(SITE_SHARED_LD, tid, base + lane);
            let b = ctx.ld_shared(SITE_SHARED_LD, tid, base + lane + active);
            ctx.st_shared(SITE_SHARED_ST, tid, base + lane, spec.op.apply(a, b));
            ctx.compute(tid, 1);
        }
        if active >= warp {
            ctx.sync();
        }
        active /= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::reduction::CombineOp;
    use crate::templates::reduction::ReduceExec;
    use gpu_sim::{launch, DeviceSpec, ExecMode, GlobalMem};
    use streamir::graph::bindings;
    use streamir::ir::Expr;

    fn assert_close(a: f32, b: f32) {
        let tol = 1e-4 * b.abs().max(1.0);
        assert!((a - b).abs() <= tol, "{a} != {b}");
    }

    #[test]
    fn fused_max_and_sum_match_separate() {
        let device = DeviceSpec::tesla_c2050();
        let n = 10_000usize;
        let data: Vec<f32> = (0..n).map(|i| ((i * 31) % 101) as f32 - 50.0).collect();
        let want_sum: f32 = data.iter().sum();
        let want_max = data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);

        let mut mem = GlobalMem::new();
        let in_buf = mem.alloc_from(&data);
        let out_buf = mem.alloc(2);
        let k = FusedReduce {
            specs: vec![
                ReduceSpec::raw(CombineOp::Max, bindings(&[])),
                ReduceSpec::raw(CombineOp::Add, bindings(&[])),
            ],
            name: "max_sum".into(),
            n_arrays: 1,
            n_elements: n,
            block_dim: 256,
            in_buf,
            in_layout: Layout::RowMajor,
            out_buf,
        };
        let fused_stats = launch(&device, &mut mem, &k, ExecMode::Full);
        assert_close(mem.read(out_buf)[0], want_max);
        assert_close(mem.read(out_buf)[1], want_sum);

        // The fusion claim: one fused kernel loads the input once, two
        // separate kernels load it twice.
        use crate::templates::reduction::SingleKernelReduce;
        let mut mem2 = GlobalMem::new();
        let in2 = mem2.alloc_from(&data);
        let o2 = mem2.alloc(1);
        let single = SingleKernelReduce {
            spec: ReduceSpec::raw(CombineOp::Add, bindings(&[])),
            name: "sum".into(),
            n_arrays: 1,
            n_elements: n,
            arrays_per_block: 1,
            block_dim: 256,
            in_buf: in2,
            in_layout: Layout::RowMajor,
            out_buf: o2,
            apply_post: true,
            out_stride: 1,
            out_offset: 0,
        };
        let single_stats = launch(&device, &mut mem2, &single, ExecMode::Full);
        assert!(
            fused_stats.totals.load_transactions < 1.5 * single_stats.totals.load_transactions,
            "fused loads {} should be ~1x a single reduction's {}",
            fused_stats.totals.load_transactions,
            single_stats.totals.load_transactions
        );
    }

    #[test]
    fn fused_multiple_arrays_sibling_major_output() {
        let device = DeviceSpec::tesla_c2050();
        let (n_arrays, n_elements) = (5, 640);
        let data: Vec<f32> = (0..n_arrays * n_elements)
            .map(|i| ((i * 7) % 29) as f32)
            .collect();
        let mut mem = GlobalMem::new();
        let in_buf = mem.alloc_from(&data);
        let out_buf = mem.alloc(n_arrays * 2);
        let k = FusedReduce {
            specs: vec![
                ReduceSpec::raw(CombineOp::Min, bindings(&[])),
                ReduceSpec::raw(CombineOp::Add, bindings(&[])),
            ],
            name: "min_sum".into(),
            n_arrays,
            n_elements,
            block_dim: 128,
            in_buf,
            in_layout: Layout::RowMajor,
            out_buf,
        };
        launch(&device, &mut mem, &k, ExecMode::Full);
        for a in 0..n_arrays {
            let slice = &data[a * n_elements..(a + 1) * n_elements];
            let want_min = slice.iter().cloned().fold(f32::INFINITY, f32::min);
            let want_sum: f32 = slice.iter().sum();
            assert_close(mem.read(out_buf)[a * 2], want_min);
            assert_close(mem.read(out_buf)[a * 2 + 1], want_sum);
        }
    }

    #[test]
    fn fused_with_elem_transform_and_post() {
        // Fuses snrm2 (sqrt of sum of squares) with sasum (sum of abs).
        let device = DeviceSpec::tesla_c2050();
        let data: Vec<f32> = (0..1024).map(|i| (i % 7) as f32 - 3.0).collect();
        let want_nrm2 = data.iter().map(|x| x * x).sum::<f32>().sqrt();
        let want_asum: f32 = data.iter().map(|x| x.abs()).sum();

        let mut mem = GlobalMem::new();
        let in_buf = mem.alloc_from(&data);
        let out_buf = mem.alloc(2);
        let nrm2 = ReduceSpec {
            op: CombineOp::Add,
            init: 0.0,
            // One pop per element: square via pow so the shared window
            // (sized by pops_per_elem) is read exactly once.
            elem: Expr::Call {
                intrinsic: streamir::ir::Intrinsic::Pow,
                args: vec![Expr::Pop, Expr::Float(2.0)],
            },
            loop_var: "i".into(),
            pops_per_elem: 1,
            acc_name: "acc".into(),
            post: Some(Expr::Call {
                intrinsic: streamir::ir::Intrinsic::Sqrt,
                args: vec![Expr::var("acc")],
            }),
            binds: bindings(&[]),
            state: Vec::new(),
            exec: ReduceExec::default(),
        };
        let asum = ReduceSpec {
            op: CombineOp::Add,
            init: 0.0,
            elem: Expr::Call {
                intrinsic: streamir::ir::Intrinsic::Abs,
                args: vec![Expr::Pop],
            },
            loop_var: "i".into(),
            pops_per_elem: 1,
            acc_name: "acc".into(),
            post: None,
            binds: bindings(&[]),
            state: Vec::new(),
            exec: ReduceExec::default(),
        };
        let k = FusedReduce {
            specs: vec![nrm2, asum],
            name: "nrm2_asum".into(),
            n_arrays: 1,
            n_elements: data.len(),
            block_dim: 256,
            in_buf,
            in_layout: Layout::RowMajor,
            out_buf,
        };
        launch(&device, &mut mem, &k, ExecMode::Full);
        assert_close(mem.read(out_buf)[0], want_nrm2);
        assert_close(mem.read(out_buf)[1], want_asum);
    }
}
