//! `adaptic` — an adaptive input-aware streaming compiler for (simulated)
//! graphics engines.
//!
//! Reproduction of *"Adaptive Input-aware Compilation for Graphics
//! Engines"* (Samadi et al., PLDI 2012). The compiler takes a
//! platform-independent streaming program (see the `streamir` crate), a
//! target GPU description, and a range of possible input sizes, and
//! produces **multiple specialized kernel plans**, each optimized for a
//! sub-range of the input space. A runtime kernel-management unit selects
//! the right plan for the actual input.
//!
//! The input-aware optimizations of §4 of the paper:
//!
//! | Paper §        | Optimization                   | Module |
//! |----------------|--------------------------------|--------|
//! | §4.1.1         | Memory restructuring           | [`layout`], [`opt::memory`] |
//! | §4.1.2         | Neighboring access / super tiles | [`templates::stencil`], [`opt::memory`] |
//! | §4.2.1         | Stream reduction               | [`templates::reduction`], [`opt::segmentation`] |
//! | §4.2.2         | Intra-actor parallelization    | [`analysis::recurrence`] |
//! | §4.3.1         | Vertical integration           | [`opt::integration`] |
//! | §4.3.2         | Horizontal integration         | [`templates::fused`], [`opt::integration`] |
//!
//! # Quick start
//!
//! ```
//! use adaptic::{compile, InputAxis};
//! use gpu_sim::DeviceSpec;
//! use streamir::parse::parse_program;
//!
//! let program = parse_program(
//!     r#"pipeline Sum(N) {
//!         actor Sum(pop N, push 1) {
//!             acc = 0.0;
//!             for i in 0..N { acc = acc + pop(); }
//!             push(acc);
//!         }
//!     }"#,
//! ).unwrap();
//! let device = DeviceSpec::tesla_c2050();
//! let axis = InputAxis::total_size("N", 1 << 10, 1 << 20);
//! let compiled = compile(&program, &device, &axis).unwrap();
//!
//! let input: Vec<f32> = (0..65536).map(|i| (i % 10) as f32).collect();
//! let report = compiled.run(65536, &input).unwrap();
//! let expected: f32 = input.iter().sum();
//! assert!((report.output[0] - expected).abs() < 1.0);
//! ```

pub mod analysis;
pub mod artifact;
pub mod bytecode;
pub mod codegen;
pub mod cost;
pub mod exec_ir;
pub mod fleet;
pub mod kmu;
pub mod layout;
pub mod opt;
pub mod plan;
pub mod resched;
pub mod runtime;
pub mod telemetry;
pub mod templates;
pub mod warp;

pub use analysis::{classify, ActorClass};
pub use artifact::{ArtifactCounters, ArtifactError, ArtifactKey, ArtifactStore, LearnedState};
pub use fleet::{Fleet, FleetJob, FleetNode, Placement, PlacementPolicy, PruneOutcome};
pub use kmu::{KernelManager, VariantHistogram};
pub use layout::{restructure, unrestructure, Layout};
pub use plan::{
    compile, compile_single, compile_with_options, compile_with_store, content_hash,
    CompileOptions, CompiledProgram, InputAxis, OptTag, SegChoice, Variant,
};
pub use resched::{
    DynamicPipeline, DynamicRegion, PipelineReport, RateEvent, RateGovernor, ReschedPolicy,
};
pub use runtime::{
    EvalBackend, ExecutionReport, KernelReport, RetryPolicy, RunOptions, StateBinding,
};
pub use telemetry::{TelemetryCounters, TelemetrySnapshot};
// Execution-engine knobs surface through the runtime API, so re-export
// them: callers pick serial/parallel, share a launch-stats cache, and
// script fault injection without depending on `gpu_sim` directly.
pub use gpu_sim::{
    ExecMode, ExecPolicy, Fault, FaultInjector, FaultKind, FaultPlan, LaunchCache, LaunchError,
    ShardedLaunchCache, StatsCache,
};
