//! Register-slot bytecode for actor work bodies.
//!
//! The kernel templates execute a work body once **per thread per
//! firing**; walking the AST each time (recursive [`eval_expr`] calls,
//! `HashMap<String, Value>` locals, `Result` plumbing per node) is the
//! dominant cost of figure-scale sweeps now that accounting streams. This
//! module pays the analysis once per *program* instead: [`compile_body`]
//! lowers a validated body to a flat postorder [`Op`] sequence over a
//! value stack, with
//!
//! - locals resolved to dense `u16` slots (parameters become slots bound
//!   from [`Bindings`] once per launch, template-supplied scalars like the
//!   loop variable become *preset* slots the kernel writes directly),
//! - state arrays resolved to dense ids in first-use order (templates
//!   override the id-based [`IrIo`] hooks with direct indexing),
//! - all-literal subtrees constant-folded (folding never crosses an I/O
//!   opcode, so the observable `pop`/`peek`/state sequence — and thus
//!   every `KernelStats` counter — is unchanged),
//! - `for` loops driven by a *hidden* counter slot so body assignments to
//!   the loop variable cannot perturb iteration, exactly like the AST
//!   walker's Rust-side `for i in lo..hi` loop.
//!
//! Evaluation ([`eval`]) is infallible on the hot path: lowering rejects
//! everything the AST evaluator would reject statically (unknown
//! variables), and data-dependent faults (integer division by zero,
//! boolean-to-number coercion) panic just as the templates'
//! `.expect("validated body executes")` already did. Integer `+`/`-`/`*`
//! and unary negation wrap on overflow, matching
//! [`streamir::interp::eval_binop`].
//!
//! Frames (slot vector + operand stack) are pooled per engine via
//! [`FramePool`], mirroring `gpu_sim::accounting::ScratchPool`: one frame
//! per block, reset per firing by a `memcpy` from the launch's bound slot
//! prototype — no per-firing heap allocation.
//!
//! The AST walker in [`crate::exec_ir`] remains the differential oracle;
//! proptests assert bit-identical outputs and stats (see
//! `tests/bytecode_differential.rs`).
//!
//! [`eval_expr`]: crate::exec_ir::eval_expr

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use streamir::error::{Error, Result};
use streamir::interp::{eval_binop, eval_intrinsic};
use streamir::ir::{BinOp, Expr, Intrinsic, Stmt, UnOp};
use streamir::rates::Bindings;
use streamir::value::Value;

use crate::exec_ir::IrIo;

/// One bytecode instruction. Expressions are postorder over an operand
/// stack; control flow uses absolute instruction indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Push a float literal.
    ConstF(f32),
    /// Push an integer literal.
    ConstI(i64),
    /// Push a boolean literal (folded comparison results).
    ConstB(bool),
    /// Push the value of a slot.
    Load(u16),
    /// Pop the stack into a slot.
    Store(u16),
    /// `io.pop()` → push.
    Pop,
    /// Pop offset (as i64), `io.peek(offset)` → push.
    Peek,
    /// Pop index (as i64), `io.state_load_id(id, ..)` → push.
    StateLoad(u16),
    /// Pop value (as f32) then index (as i64), `io.state_store_id(..)`.
    StateStore(u16),
    /// Pop value (as f32), `io.push(value)`.
    PushOut,
    /// Pop rhs then lhs, push `lhs op rhs`.
    Bin(BinOp),
    /// Arithmetic negation of the top of stack (integers wrap).
    Neg,
    /// Boolean negation of the top of stack.
    Not,
    /// Pop `arity` arguments, push the intrinsic's result.
    Call(Intrinsic),
    /// Unconditional branch.
    Jump(u32),
    /// Pop a condition (as bool); branch when false.
    JumpIfFalse(u32),
    /// Pop loop end then start (both as i64) into two hidden slots.
    ForInit { counter: u16, end: u16 },
    /// If `counter < end`, copy the counter into the user-visible loop
    /// variable slot and fall through; else branch to `exit`.
    ForTest {
        counter: u16,
        end: u16,
        var: u16,
        exit: u32,
    },
    /// Increment the hidden counter (wrapping) and branch to `head`.
    ForStep { counter: u16, head: u32 },
}

/// How a slot gets its initial value for a firing.
#[derive(Debug, Clone, PartialEq)]
pub enum SlotKind {
    /// Plain local, zero-initialized; valid bodies assign before reading.
    Local,
    /// Program parameter, bound to `I64` from [`Bindings`] at
    /// [`Program::bind`] time (once per launch).
    Param,
    /// Kernel-supplied scalar (template loop variable, reduction
    /// accumulator, opaque-actor scalar state); the kernel writes the slot
    /// directly after each frame reset.
    Preset,
}

/// A compiled work body (or expression): flat opcodes plus the slot and
/// state-id tables produced by lowering.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    ops: Vec<Op>,
    /// Per-slot init kind; parallel to `names`.
    kinds: Vec<SlotKind>,
    /// Slot names (hidden loop slots get `#for{n}`/`#end{n}` names).
    names: Vec<String>,
    /// Dense state id → array name, in first-use order.
    state_names: Vec<String>,
    /// Worst-case operand-stack depth, for up-front reservation.
    max_stack: usize,
}

impl Program {
    /// The opcode sequence (read-only; used by tests and the printer).
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of slots a frame needs.
    pub fn n_slots(&self) -> usize {
        self.kinds.len()
    }

    /// Worst-case operand-stack depth.
    pub fn max_stack(&self) -> usize {
        self.max_stack
    }

    /// Dense state id → array name, in first-use order.
    pub fn state_names(&self) -> &[String] {
        &self.state_names
    }

    /// Per-slot init kinds, parallel to [`Program::names`].
    pub(crate) fn kinds(&self) -> &[SlotKind] {
        &self.kinds
    }

    /// Slot names, parallel to [`Program::kinds`].
    pub(crate) fn names(&self) -> &[String] {
        &self.names
    }

    /// Reassemble a program from its raw parts (the artifact decoder).
    /// Validates the structural invariants lowering guarantees — slot and
    /// state indices in range, jump targets within `0..=ops.len()`, and
    /// parallel slot tables — so a decoded artifact can never index out of
    /// bounds at eval time.
    pub(crate) fn from_raw(
        ops: Vec<Op>,
        kinds: Vec<SlotKind>,
        names: Vec<String>,
        state_names: Vec<String>,
        max_stack: usize,
    ) -> std::result::Result<Program, String> {
        if kinds.len() != names.len() {
            return Err(format!(
                "slot kinds ({}) / names ({}) mismatch",
                kinds.len(),
                names.len()
            ));
        }
        let n_slots = kinds.len();
        let n_state = state_names.len();
        let n_ops = ops.len();
        let slot_ok = |s: u16| (s as usize) < n_slots;
        let target_ok = |t: u32| (t as usize) <= n_ops;
        for (pc, op) in ops.iter().enumerate() {
            let ok = match *op {
                Op::Load(s) | Op::Store(s) => slot_ok(s),
                Op::StateLoad(id) | Op::StateStore(id) => (id as usize) < n_state,
                Op::Jump(t) | Op::JumpIfFalse(t) => target_ok(t),
                Op::ForInit { counter, end } => slot_ok(counter) && slot_ok(end),
                Op::ForTest {
                    counter,
                    end,
                    var,
                    exit,
                } => slot_ok(counter) && slot_ok(end) && slot_ok(var) && target_ok(exit),
                Op::ForStep { counter, head } => slot_ok(counter) && target_ok(head),
                _ => true,
            };
            if !ok {
                return Err(format!("op {op:?} at pc {pc} indexes out of range"));
            }
        }
        Ok(Program {
            ops,
            kinds,
            names,
            state_names,
            max_stack,
        })
    }

    /// Slot index of a named local/param/preset, if the body mentions it.
    pub fn slot_of(&self, name: &str) -> Option<u16> {
        self.names.iter().position(|n| n == name).map(|i| i as u16)
    }

    /// Dense id of a state array, if the body touches it.
    pub fn state_index(&self, name: &str) -> Option<u16> {
        self.state_names
            .iter()
            .position(|n| n == name)
            .map(|i| i as u16)
    }

    /// Resolve parameters against concrete bindings, producing the slot
    /// prototype copied into a frame at every reset. Done once per launch.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnboundParam`] when a parameter slot has no
    /// binding.
    pub fn bind(&self, binds: &Bindings) -> Result<Vec<Value>> {
        self.kinds
            .iter()
            .zip(&self.names)
            .map(|(kind, name)| match kind {
                SlotKind::Param => binds
                    .get(name)
                    .map(|v| Value::I64(*v))
                    .ok_or_else(|| Error::UnboundParam(name.clone())),
                SlotKind::Local | SlotKind::Preset => Ok(Value::F32(0.0)),
            })
            .collect()
    }
}

/// Compile a statement body.
///
/// `params` supplies the names readable as runtime bindings (their values
/// become [`SlotKind::Param`] slots, bound per launch); `presets` names
/// the scalars the owning kernel seeds directly (loop variables,
/// accumulators). Any other name that is read before the body could have
/// assigned it is rejected, mirroring the AST walker's
/// "unknown variable" runtime error.
///
/// # Errors
///
/// Returns [`Error::Runtime`] for unknown variables and for bodies
/// exceeding the `u16` slot space.
pub fn compile_body(body: &[Stmt], params: &Bindings, presets: &[&str]) -> Result<Program> {
    let mut c = Compiler::new(params, presets);
    c.lower_body(body)?;
    Ok(c.finish())
}

/// Compile a single expression; evaluation via [`eval_value`] yields its
/// value.
///
/// # Errors
///
/// See [`compile_body`].
pub fn compile_expr(expr: &Expr, params: &Bindings, presets: &[&str]) -> Result<Program> {
    let mut c = Compiler::new(params, presets);
    c.lower_expr(expr)?;
    Ok(c.finish())
}

struct Compiler<'a> {
    ops: Vec<Op>,
    kinds: Vec<SlotKind>,
    names: Vec<String>,
    state_names: Vec<String>,
    slots: HashMap<String, u16>,
    params: &'a Bindings,
    depth: usize,
    max_stack: usize,
    hidden: usize,
}

impl<'a> Compiler<'a> {
    fn new(params: &'a Bindings, presets: &[&str]) -> Compiler<'a> {
        let mut c = Compiler {
            ops: Vec::new(),
            kinds: Vec::new(),
            names: Vec::new(),
            state_names: Vec::new(),
            slots: HashMap::new(),
            params,
            depth: 0,
            max_stack: 0,
            hidden: 0,
        };
        // Presets get the first slots so kernels can seed them cheaply.
        for p in presets {
            c.alloc_slot(p, SlotKind::Preset);
        }
        c
    }

    fn finish(self) -> Program {
        Program {
            ops: self.ops,
            kinds: self.kinds,
            names: self.names,
            state_names: self.state_names,
            max_stack: self.max_stack,
        }
    }

    fn alloc_slot(&mut self, name: &str, kind: SlotKind) -> u16 {
        debug_assert!(self.kinds.len() < u16::MAX as usize, "slot space");
        let id = self.kinds.len() as u16;
        self.kinds.push(kind);
        self.names.push(name.to_string());
        self.slots.insert(name.to_string(), id);
        id
    }

    fn hidden_slot(&mut self, prefix: &str) -> u16 {
        let name = format!("#{prefix}{}", self.hidden);
        self.hidden += 1;
        let id = self.kinds.len() as u16;
        self.kinds.push(SlotKind::Local);
        self.names.push(name);
        // Hidden slots are unreachable by name lookups: not in `slots`.
        id
    }

    /// Slot a name *reads* from: existing local/preset, else a parameter.
    fn read_slot(&mut self, name: &str) -> Result<u16> {
        if let Some(&id) = self.slots.get(name) {
            return Ok(id);
        }
        if self.params.contains_key(name) {
            return Ok(self.alloc_slot(name, SlotKind::Param));
        }
        Err(Error::Runtime(format!("unknown variable `{name}`")))
    }

    /// Slot a name *writes* to: allocated on first assignment. Assigning
    /// a parameter name shadows it, same as the AST walker's
    /// locals-then-binds lookup order.
    fn write_slot(&mut self, name: &str) -> u16 {
        match self.slots.get(name) {
            Some(&id) => id,
            None if self.params.contains_key(name) => self.alloc_slot(name, SlotKind::Param),
            None => self.alloc_slot(name, SlotKind::Local),
        }
    }

    /// Emit an opcode, tracking worst-case operand-stack depth.
    fn emit(&mut self, op: Op) -> usize {
        let (pops, pushes): (usize, usize) = match op {
            Op::ConstF(_) | Op::ConstI(_) | Op::ConstB(_) | Op::Load(_) | Op::Pop => (0, 1),
            Op::Store(_) | Op::PushOut | Op::JumpIfFalse(_) => (1, 0),
            Op::Peek | Op::StateLoad(_) | Op::Neg | Op::Not => (1, 1),
            Op::Bin(_) => (2, 1),
            Op::StateStore(_) | Op::ForInit { .. } => (2, 0),
            Op::Call(i) => (i.arity(), 1),
            Op::Jump(_) | Op::ForTest { .. } | Op::ForStep { .. } => (0, 0),
        };
        debug_assert!(self.depth >= pops, "stack underflow in lowering");
        self.depth = self.depth - pops + pushes;
        self.max_stack = self.max_stack.max(self.depth);
        self.ops.push(op);
        self.ops.len() - 1
    }

    fn emit_const(&mut self, v: Value) {
        match v {
            Value::F32(x) => self.emit(Op::ConstF(x)),
            Value::I64(i) => self.emit(Op::ConstI(i)),
            Value::Bool(b) => self.emit(Op::ConstB(b)),
        };
    }

    fn state_id(&mut self, name: &str) -> u16 {
        match self.state_names.iter().position(|n| n == name) {
            Some(i) => i as u16,
            None => {
                self.state_names.push(name.to_string());
                (self.state_names.len() - 1) as u16
            }
        }
    }

    /// Fold an all-literal subtree to its value. Folding is attempted
    /// only on expressions with no I/O and no variable reads, using the
    /// same `eval_binop`/`eval_intrinsic` the AST walker uses, so folded
    /// results are bit-identical. A subtree whose folding *errors* (e.g.
    /// a literal division by zero) is emitted as ops instead, deferring
    /// the fault to runtime exactly like the AST walker.
    fn try_fold(&self, e: &Expr) -> Option<Value> {
        match e {
            Expr::Float(x) => Some(Value::F32(*x)),
            Expr::Int(i) => Some(Value::I64(*i)),
            Expr::Binary { op, lhs, rhs } => {
                let a = self.try_fold(lhs)?;
                let b = self.try_fold(rhs)?;
                eval_binop(*op, a, b).ok()
            }
            Expr::Unary { op, operand } => {
                let v = self.try_fold(operand)?;
                match op {
                    UnOp::Neg => match v {
                        Value::I64(i) => Some(Value::I64(i.wrapping_neg())),
                        other => other.as_f32().ok().map(|x| Value::F32(-x)),
                    },
                    UnOp::Not => Some(Value::Bool(!v.as_bool())),
                }
            }
            Expr::Call { intrinsic, args } => {
                let vals: Option<Vec<Value>> = args.iter().map(|a| self.try_fold(a)).collect();
                eval_intrinsic(*intrinsic, &vals?).ok()
            }
            Expr::Var(_) | Expr::Pop | Expr::Peek(_) | Expr::StateLoad { .. } => None,
        }
    }

    /// Lower an expression; exactly one value is left on the stack.
    fn lower_expr(&mut self, e: &Expr) -> Result<()> {
        if let Some(v) = self.try_fold(e) {
            self.emit_const(v);
            return Ok(());
        }
        match e {
            Expr::Float(x) => {
                self.emit(Op::ConstF(*x));
            }
            Expr::Int(i) => {
                self.emit(Op::ConstI(*i));
            }
            Expr::Var(name) => {
                let slot = self.read_slot(name)?;
                self.emit(Op::Load(slot));
            }
            Expr::Pop => {
                self.emit(Op::Pop);
            }
            Expr::Peek(off) => {
                self.lower_expr(off)?;
                self.emit(Op::Peek);
            }
            Expr::StateLoad { array, index } => {
                self.lower_expr(index)?;
                let id = self.state_id(array);
                self.emit(Op::StateLoad(id));
            }
            Expr::Binary { op, lhs, rhs } => {
                // Both sides always evaluate (`&&`/`||` do not
                // short-circuit), matching the AST walker.
                self.lower_expr(lhs)?;
                self.lower_expr(rhs)?;
                self.emit(Op::Bin(*op));
            }
            Expr::Unary { op, operand } => {
                self.lower_expr(operand)?;
                self.emit(match op {
                    UnOp::Neg => Op::Neg,
                    UnOp::Not => Op::Not,
                });
            }
            Expr::Call { intrinsic, args } => {
                if args.len() != intrinsic.arity() {
                    return Err(Error::Runtime(format!(
                        "{} expects {} arguments, got {}",
                        intrinsic.name(),
                        intrinsic.arity(),
                        args.len()
                    )));
                }
                for a in args {
                    self.lower_expr(a)?;
                }
                self.emit(Op::Call(*intrinsic));
            }
        }
        Ok(())
    }

    fn lower_body(&mut self, body: &[Stmt]) -> Result<()> {
        for stmt in body {
            match stmt {
                Stmt::Assign { name, expr } => {
                    // Expression first: `x = x + 1` with unknown `x` must
                    // fail, as it would at AST runtime.
                    self.lower_expr(expr)?;
                    let slot = self.write_slot(name);
                    self.emit(Op::Store(slot));
                }
                Stmt::StateStore { array, index, expr } => {
                    self.lower_expr(index)?;
                    self.lower_expr(expr)?;
                    let id = self.state_id(array);
                    self.emit(Op::StateStore(id));
                }
                Stmt::Push(e) => {
                    self.lower_expr(e)?;
                    self.emit(Op::PushOut);
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.lower_expr(cond)?;
                    let jf = self.emit(Op::JumpIfFalse(0));
                    self.lower_body(then_body)?;
                    if else_body.is_empty() {
                        let end = self.ops.len() as u32;
                        self.ops[jf] = Op::JumpIfFalse(end);
                    } else {
                        let jmp = self.emit(Op::Jump(0));
                        let else_head = self.ops.len() as u32;
                        self.ops[jf] = Op::JumpIfFalse(else_head);
                        self.lower_body(else_body)?;
                        let end = self.ops.len() as u32;
                        self.ops[jmp] = Op::Jump(end);
                    }
                }
                Stmt::For {
                    var,
                    start,
                    end,
                    body: loop_body,
                } => {
                    // The loop runs on a hidden counter; the user-visible
                    // variable is a copy refreshed each iteration, so body
                    // assignments to it cannot change the trip count —
                    // exactly the AST walker's `for i in lo..hi` loop.
                    self.lower_expr(start)?;
                    self.lower_expr(end)?;
                    let counter = self.hidden_slot("for");
                    let end_slot = self.hidden_slot("end");
                    let var_slot = self.write_slot(var);
                    self.emit(Op::ForInit {
                        counter,
                        end: end_slot,
                    });
                    let head = self.ops.len() as u32;
                    let test = self.emit(Op::ForTest {
                        counter,
                        end: end_slot,
                        var: var_slot,
                        exit: 0,
                    });
                    self.lower_body(loop_body)?;
                    self.emit(Op::ForStep { counter, head });
                    let exit = self.ops.len() as u32;
                    self.ops[test] = Op::ForTest {
                        counter,
                        end: end_slot,
                        var: var_slot,
                        exit,
                    };
                }
            }
        }
        Ok(())
    }
}

/// A reusable evaluation frame: slot vector + operand stack. Obtained
/// from a [`FramePool`]; reset per firing by copying the launch's bound
/// slot prototype.
#[derive(Debug, Default)]
pub struct Frame {
    slots: Vec<Value>,
    stack: Vec<Value>,
}

impl Frame {
    /// Prepare the frame for one firing: slots become a copy of `proto`,
    /// the operand stack empties. Reuses existing capacity.
    pub fn reset(&mut self, proto: &[Value]) {
        self.slots.clear();
        self.slots.extend_from_slice(proto);
        self.stack.clear();
    }

    /// Reserve capacity for a program up front so evaluation never
    /// reallocates.
    pub fn fit(&mut self, prog: &Program) {
        if self.slots.capacity() < prog.n_slots() {
            self.slots.reserve(prog.n_slots() - self.slots.len());
        }
        if self.stack.capacity() < prog.max_stack() {
            self.stack.reserve(prog.max_stack() - self.stack.len());
        }
    }

    /// Write a preset slot (loop variable, accumulator, scalar state).
    #[inline]
    pub fn set(&mut self, slot: u16, v: Value) {
        self.slots[slot as usize] = v;
    }

    /// Read a slot back (scalar-state persistence, tests).
    #[inline]
    pub fn get(&self, slot: u16) -> Value {
        self.slots[slot as usize]
    }
}

/// A shared pool of [`Frame`]s, mirroring
/// `gpu_sim::accounting::ScratchPool`: workers `take` a frame per block
/// and `give` it back, so steady-state execution allocates nothing. The
/// `created`/`reused` counters back the no-allocation acceptance test.
#[derive(Debug, Default)]
pub struct FramePool {
    inner: Mutex<Vec<Frame>>,
    created: AtomicUsize,
    reused: AtomicUsize,
}

impl FramePool {
    /// An empty pool.
    pub fn new() -> FramePool {
        FramePool::default()
    }

    /// Lock the pool, recovering from poison: pooled frames are fully
    /// reset (`Frame::reset`) before every use, so a worker that
    /// panicked mid-`Vec::push` cannot leave state the next taker could
    /// observe — same reasoning as `Kmu::lock_state`. Without recovery,
    /// one panicking worker (e.g. under fault injection) would wedge
    /// frame recycling for every later launch on the engine.
    fn lock_inner(&self) -> MutexGuard<'_, Vec<Frame>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Take a frame (recycled when available).
    pub fn take(&self) -> Frame {
        let recycled = self.lock_inner().pop();
        match recycled {
            Some(f) => {
                self.reused.fetch_add(1, Ordering::Relaxed);
                f
            }
            None => {
                self.created.fetch_add(1, Ordering::Relaxed);
                Frame::default()
            }
        }
    }

    /// Return a frame for reuse.
    pub fn give(&self, frame: Frame) {
        self.lock_inner().push(frame);
    }

    /// Frames allocated fresh over the pool's lifetime.
    pub fn created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }

    /// Takes satisfied by recycling.
    pub fn reused(&self) -> usize {
        self.reused.load(Ordering::Relaxed)
    }

    /// Frames currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.lock_inner().len()
    }
}

#[inline]
pub(crate) fn as_f32(v: Value) -> f32 {
    v.as_f32().expect("validated body: numeric value")
}

#[inline]
pub(crate) fn as_i64(v: Value) -> i64 {
    v.as_i64().expect("validated body: integral value")
}

/// Infallible binop mirroring [`streamir::interp::eval_binop`] (including
/// wrapping integer arithmetic); data-dependent faults panic like the
/// templates' `.expect` on the AST path. Shared with [`crate::warp`] so
/// the scalar and warp-batched evaluators are per-lane bit-identical by
/// construction.
#[inline]
pub(crate) fn bin(op: BinOp, a: Value, b: Value) -> Value {
    use BinOp::*;
    if let (Value::I64(x), Value::I64(y)) = (a, b) {
        return match op {
            Add => Value::I64(x.wrapping_add(y)),
            Sub => Value::I64(x.wrapping_sub(y)),
            Mul => Value::I64(x.wrapping_mul(y)),
            Div => {
                assert!(y != 0, "validated body: integer division by zero");
                Value::I64(x.wrapping_div(y))
            }
            Rem => {
                assert!(y != 0, "validated body: integer remainder by zero");
                Value::I64(x.wrapping_rem(y))
            }
            Lt => Value::Bool(x < y),
            Le => Value::Bool(x <= y),
            Gt => Value::Bool(x > y),
            Ge => Value::Bool(x >= y),
            Eq => Value::Bool(x == y),
            Ne => Value::Bool(x != y),
            And => Value::Bool(x != 0 && y != 0),
            Or => Value::Bool(x != 0 || y != 0),
        };
    }
    if matches!(op, And | Or) {
        let (x, y) = (a.as_bool(), b.as_bool());
        return Value::Bool(match op {
            And => x && y,
            Or => x || y,
            _ => unreachable!(),
        });
    }
    let x = as_f32(a);
    let y = as_f32(b);
    match op {
        Add => Value::F32(x + y),
        Sub => Value::F32(x - y),
        Mul => Value::F32(x * y),
        Div => Value::F32(x / y),
        Rem => Value::F32(x % y),
        Lt => Value::Bool(x < y),
        Le => Value::Bool(x <= y),
        Gt => Value::Bool(x > y),
        Ge => Value::Bool(x >= y),
        Eq => Value::Bool(x == y),
        Ne => Value::Bool(x != y),
        And | Or => unreachable!("handled above"),
    }
}

#[inline]
pub(crate) fn call(intr: Intrinsic, args: &[Value]) -> Value {
    let f = |i: usize| as_f32(args[i]);
    match intr {
        Intrinsic::Sqrt => Value::F32(f(0).sqrt()),
        Intrinsic::Exp => Value::F32(f(0).exp()),
        Intrinsic::Log => Value::F32(f(0).ln()),
        Intrinsic::Abs => Value::F32(f(0).abs()),
        Intrinsic::Sin => Value::F32(f(0).sin()),
        Intrinsic::Cos => Value::F32(f(0).cos()),
        Intrinsic::Floor => Value::F32(f(0).floor()),
        Intrinsic::Max => Value::F32(f(0).max(f(1))),
        Intrinsic::Min => Value::F32(f(0).min(f(1))),
        Intrinsic::Pow => Value::F32(f(0).powf(f(1))),
        // `select` preserves the chosen argument's variant, like the AST.
        Intrinsic::Select => {
            if args[0].as_bool() {
                args[1]
            } else {
                args[2]
            }
        }
    }
}

/// Execute a compiled body against a prepared frame. The frame must have
/// been [`Frame::reset`] with the program's bound prototype (and any
/// preset slots seeded). Infallible: see the module docs.
pub fn eval(prog: &Program, frame: &mut Frame, io: &mut dyn IrIo) {
    let ops = &prog.ops;
    let slots = &mut frame.slots;
    let stack = &mut frame.stack;
    let mut pc = 0usize;
    while pc < ops.len() {
        match ops[pc] {
            Op::ConstF(x) => stack.push(Value::F32(x)),
            Op::ConstI(i) => stack.push(Value::I64(i)),
            Op::ConstB(b) => stack.push(Value::Bool(b)),
            Op::Load(s) => stack.push(slots[s as usize]),
            Op::Store(s) => slots[s as usize] = stack.pop().expect("operand"),
            Op::Pop => stack.push(Value::F32(io.pop())),
            Op::Peek => {
                let off = as_i64(stack.pop().expect("operand"));
                stack.push(Value::F32(io.peek(off)));
            }
            Op::StateLoad(id) => {
                let idx = as_i64(stack.pop().expect("operand"));
                let v = io.state_load_id(id, &prog.state_names[id as usize], idx);
                stack.push(Value::F32(v));
            }
            Op::StateStore(id) => {
                let v = as_f32(stack.pop().expect("operand"));
                let idx = as_i64(stack.pop().expect("operand"));
                io.state_store_id(id, &prog.state_names[id as usize], idx, v);
            }
            Op::PushOut => {
                let v = as_f32(stack.pop().expect("operand"));
                io.push(v);
            }
            Op::Bin(op) => {
                let b = stack.pop().expect("operand");
                let a = stack.pop().expect("operand");
                stack.push(bin(op, a, b));
            }
            Op::Neg => {
                let v = stack.pop().expect("operand");
                stack.push(match v {
                    Value::I64(i) => Value::I64(i.wrapping_neg()),
                    other => Value::F32(-as_f32(other)),
                });
            }
            Op::Not => {
                let v = stack.pop().expect("operand");
                stack.push(Value::Bool(!v.as_bool()));
            }
            Op::Call(intr) => {
                let n = intr.arity();
                let mut args = [Value::F32(0.0); 3];
                for i in (0..n).rev() {
                    args[i] = stack.pop().expect("operand");
                }
                stack.push(call(intr, &args[..n]));
            }
            Op::Jump(t) => {
                pc = t as usize;
                continue;
            }
            Op::JumpIfFalse(t) => {
                if !stack.pop().expect("operand").as_bool() {
                    pc = t as usize;
                    continue;
                }
            }
            Op::ForInit { counter, end } => {
                let hi = as_i64(stack.pop().expect("operand"));
                let lo = as_i64(stack.pop().expect("operand"));
                slots[counter as usize] = Value::I64(lo);
                slots[end as usize] = Value::I64(hi);
            }
            Op::ForTest {
                counter,
                end,
                var,
                exit,
            } => {
                let c = as_i64(slots[counter as usize]);
                if c < as_i64(slots[end as usize]) {
                    slots[var as usize] = Value::I64(c);
                } else {
                    pc = exit as usize;
                    continue;
                }
            }
            Op::ForStep { counter, head } => {
                let c = as_i64(slots[counter as usize]);
                slots[counter as usize] = Value::I64(c.wrapping_add(1));
                pc = head as usize;
                continue;
            }
        }
        pc += 1;
    }
}

/// Execute a compiled *expression* and return its value.
pub fn eval_value(prog: &Program, frame: &mut Frame, io: &mut dyn IrIo) -> Value {
    eval(prog, frame, io);
    frame.stack.pop().expect("expression leaves one value")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec_ir::{exec_body, VecIo};
    use streamir::graph::bindings;
    use streamir::parse::parse_program;

    fn body_of(src: &str) -> Vec<Stmt> {
        parse_program(src).unwrap().actors[0].work.body.clone()
    }

    fn run_both(body: &[Stmt], binds: &Bindings, input: Vec<f32>) -> (VecIo, VecIo) {
        let mut ast_io = VecIo {
            input: input.clone(),
            ..Default::default()
        };
        let mut locals = HashMap::new();
        exec_body(body, &mut locals, binds, &mut ast_io).unwrap();

        let prog = compile_body(body, binds, &[]).unwrap();
        let proto = prog.bind(binds).unwrap();
        let mut frame = Frame::default();
        frame.fit(&prog);
        frame.reset(&proto);
        let mut bc_io = VecIo {
            input,
            ..Default::default()
        };
        eval(&prog, &mut frame, &mut bc_io);
        (ast_io, bc_io)
    }

    #[test]
    fn sum_body_matches_ast() {
        let body = body_of(
            r#"pipeline P(N) {
                actor Sum(pop N, push 1) {
                    acc = 0.0;
                    for i in 0..N { acc = acc + pop(); }
                    push(acc);
                }
            }"#,
        );
        let (a, b) = run_both(&body, &bindings(&[("N", 4)]), vec![1.0, 2.5, -3.0, 8.0]);
        assert_eq!(a.output, b.output);
        assert_eq!(a.cursor, b.cursor);
    }

    #[test]
    fn branches_and_intrinsics_match_ast() {
        let body = body_of(
            r#"pipeline P() {
                actor A(pop 2, push 1) {
                    x = pop();
                    y = pop();
                    if (x < y) { z = max(x, y * 2.0); } else { z = min(x, -y); }
                    push(sqrt(abs(z)));
                }
            }"#,
        );
        for input in [vec![1.0, 5.0], vec![5.0, 1.0]] {
            let (a, b) = run_both(&body, &bindings(&[]), input);
            assert_eq!(a.output, b.output);
        }
    }

    #[test]
    fn loop_var_assignment_does_not_change_trip_count() {
        // The AST walker drives `for` with its own Rust counter; writing
        // the loop variable inside the body must not affect iteration.
        let body = body_of(
            r#"pipeline P() {
                actor A(pop 1, push 1) {
                    s = 0.0;
                    for i in 0..4 { i = 100; s = s + 1.0; }
                    push(s);
                }
            }"#,
        );
        let (a, b) = run_both(&body, &bindings(&[]), vec![0.0]);
        assert_eq!(a.output, vec![4.0]);
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn constants_fold_without_touching_io() {
        let body = body_of(
            r#"pipeline P() {
                actor A(pop 1, push 1) {
                    push(pop() * (2.0 + 3.0 * 4.0));
                }
            }"#,
        );
        let binds = bindings(&[]);
        let prog = compile_body(&body, &binds, &[]).unwrap();
        // `2.0 + 3.0 * 4.0` folds to a single constant.
        let consts = prog
            .ops()
            .iter()
            .filter(|o| matches!(o, Op::ConstF(_)))
            .count();
        assert_eq!(consts, 1);
        assert!(prog
            .ops()
            .iter()
            .any(|o| matches!(o, Op::ConstF(x) if *x == 14.0)));
        let (a, b) = run_both(&body, &binds, vec![2.0]);
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn state_arrays_get_dense_ids() {
        let body = body_of(
            r#"pipeline P() {
                actor A(pop 1, push 1) {
                    state w[4];
                    state v[4];
                    w[1] = pop();
                    push(w[1] + v[0]);
                }
            }"#,
        );
        let binds = bindings(&[]);
        let prog = compile_body(&body, &binds, &[]).unwrap();
        assert_eq!(prog.state_names(), &["w".to_string(), "v".to_string()]);
        assert_eq!(prog.state_index("w"), Some(0));
        assert_eq!(prog.state_index("v"), Some(1));

        let mut io = VecIo {
            input: vec![3.0],
            ..Default::default()
        };
        io.state.insert("w".into(), vec![0.0; 4]);
        io.state.insert("v".into(), vec![7.0; 4]);
        let proto = prog.bind(&binds).unwrap();
        let mut frame = Frame::default();
        frame.reset(&proto);
        eval(&prog, &mut frame, &mut io);
        assert_eq!(io.output, vec![10.0]);
        assert_eq!(io.state["w"][1], 3.0);
    }

    #[test]
    fn params_bind_per_launch() {
        let body = body_of(
            r#"pipeline P(N) {
                actor A(pop 1, push 1) {
                    push(pop() + N);
                }
            }"#,
        );
        let binds = bindings(&[("N", 5)]);
        let prog = compile_body(&body, &binds, &[]).unwrap();
        let proto = prog.bind(&bindings(&[("N", 7)])).unwrap();
        let mut frame = Frame::default();
        frame.reset(&proto);
        let mut io = VecIo {
            input: vec![1.0],
            ..Default::default()
        };
        eval(&prog, &mut frame, &mut io);
        assert_eq!(io.output, vec![8.0]);
        assert!(prog.bind(&bindings(&[])).is_err());
    }

    #[test]
    fn presets_are_seedable_slots() {
        let body = body_of(
            r#"pipeline P() {
                actor A(pop 1, push 1) {
                    push(pop() + i);
                }
            }"#,
        );
        let binds = bindings(&[]);
        let prog = compile_body(&body, &binds, &["i"]).unwrap();
        let slot = prog.slot_of("i").unwrap();
        let proto = prog.bind(&binds).unwrap();
        let mut frame = Frame::default();
        frame.reset(&proto);
        frame.set(slot, Value::I64(41));
        let mut io = VecIo {
            input: vec![1.0],
            ..Default::default()
        };
        eval(&prog, &mut frame, &mut io);
        assert_eq!(io.output, vec![42.0]);
    }

    #[test]
    fn unknown_variable_rejected_at_compile_time() {
        let body = vec![Stmt::Push(Expr::var("ghost"))];
        assert!(compile_body(&body, &bindings(&[]), &[]).is_err());
    }

    #[test]
    fn integer_arithmetic_wraps() {
        let body = vec![
            Stmt::Assign {
                name: "x".into(),
                expr: Expr::bin(BinOp::Add, Expr::Int(i64::MAX), Expr::Int(1)),
            },
            Stmt::Push(Expr::Call {
                intrinsic: Intrinsic::Select,
                args: vec![
                    Expr::bin(BinOp::Eq, Expr::var("x"), Expr::Int(i64::MIN)),
                    Expr::Float(1.0),
                    Expr::Float(0.0),
                ],
            }),
        ];
        let binds = bindings(&[]);
        let (a, b) = run_both(&body, &binds, vec![]);
        assert_eq!(a.output, vec![1.0]);
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn frame_pool_recycles() {
        let pool = FramePool::new();
        let f1 = pool.take();
        pool.give(f1);
        let _f2 = pool.take();
        assert_eq!(pool.created(), 1);
        assert_eq!(pool.reused(), 1);
    }

    #[test]
    fn frame_pool_survives_poisoned_lock() {
        // A worker panicking while holding the pool lock (fault
        // injection, a faulting body) must not wedge recycling for the
        // rest of the engine: every entry point recovers from poison.
        let pool = std::sync::Arc::new(FramePool::new());
        pool.give(Frame::default());
        let p2 = std::sync::Arc::clone(&pool);
        let _ = std::thread::spawn(move || {
            let _guard = p2.inner.lock().unwrap();
            panic!("poison the pool");
        })
        .join();
        assert_eq!(pool.idle(), 1);
        let f = pool.take();
        pool.give(f);
        assert_eq!(pool.reused(), 1);
    }

    #[test]
    fn expression_programs_yield_values() {
        let e = Expr::bin(BinOp::Mul, Expr::var("acc"), Expr::Float(0.5));
        let binds = bindings(&[]);
        let prog = compile_expr(&e, &binds, &["acc"]).unwrap();
        let slot = prog.slot_of("acc").unwrap();
        let proto = prog.bind(&binds).unwrap();
        let mut frame = Frame::default();
        frame.reset(&proto);
        frame.set(slot, Value::F32(8.0));
        let mut io = VecIo::default();
        let v = eval_value(&prog, &mut frame, &mut io);
        assert_eq!(v.as_f32().unwrap(), 4.0);
    }
}
