//! CUDA source emission.
//!
//! The simulator executes kernel *templates*; this module prints the
//! equivalent CUDA C for documentation, inspection and golden tests —
//! the textual face of what `nvcc` would compile in the original system.

pub mod cuda;

pub use cuda::{emit_program, emit_variant};
