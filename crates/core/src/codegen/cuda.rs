//! CUDA C pretty-printer.
//!
//! Emits one `__global__` function per kernel of a variant, following the
//! shapes of the paper's figures: the grid-stride + shared-memory tree
//! reduction of Figure 8, the tile/halo staging loop of Figure 6, and
//! plain element-wise kernels for maps. Work-function IR lowers to C
//! expressions; `pop`/`push` become indexed loads/stores whose address
//! arithmetic reflects the chosen layout (§4.1.1).

use std::fmt::Write as _;

use streamir::ir::{Expr, Intrinsic, Stmt, UnOp};

use crate::analysis::reduction::CombineOp;
use crate::layout::Layout;
use crate::opt::segmentation::ReduceChoice;
use crate::plan::{CompiledProgram, SegChoice, SegKind, Variant};

/// Render an expression as C, with `pop()`/`peek(i)` spelled through the
/// provided address macros (defined per kernel).
fn expr_c(e: &Expr) -> String {
    match e {
        Expr::Float(x) => format!("{x:?}f"),
        Expr::Int(i) => i.to_string(),
        Expr::Var(v) => v.clone(),
        Expr::Pop => "POP()".to_string(),
        Expr::Peek(i) => format!("PEEK({})", expr_c(i)),
        Expr::StateLoad { array, index } => format!("{array}[{}]", expr_c(index)),
        Expr::Binary { op, lhs, rhs } => {
            format!("({} {} {})", expr_c(lhs), op.c_symbol(), expr_c(rhs))
        }
        Expr::Unary { op, operand } => match op {
            UnOp::Neg => format!("(-{})", expr_c(operand)),
            UnOp::Not => format!("(!{})", expr_c(operand)),
        },
        Expr::Call { intrinsic, args } => {
            let args: Vec<String> = args.iter().map(expr_c).collect();
            match intrinsic {
                Intrinsic::Sqrt => format!("sqrtf({})", args[0]),
                Intrinsic::Exp => format!("expf({})", args[0]),
                Intrinsic::Log => format!("logf({})", args[0]),
                Intrinsic::Abs => format!("fabsf({})", args[0]),
                Intrinsic::Sin => format!("sinf({})", args[0]),
                Intrinsic::Cos => format!("cosf({})", args[0]),
                Intrinsic::Floor => format!("floorf({})", args[0]),
                Intrinsic::Max => format!("fmaxf({}, {})", args[0], args[1]),
                Intrinsic::Min => format!("fminf({}, {})", args[0], args[1]),
                Intrinsic::Pow => format!("powf({}, {})", args[0], args[1]),
                Intrinsic::Select => {
                    format!("({} ? {} : {})", args[0], args[1], args[2])
                }
            }
        }
    }
}

fn stmt_c(s: &Stmt, out: &mut String, indent: usize) {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Assign { name, expr } => {
            let _ = writeln!(out, "{pad}float {name} = {};", expr_c(expr));
        }
        Stmt::StateStore { array, index, expr } => {
            let _ = writeln!(out, "{pad}{array}[{}] = {};", expr_c(index), expr_c(expr));
        }
        Stmt::Push(e) => {
            let _ = writeln!(out, "{pad}PUSH({});", expr_c(e));
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let _ = writeln!(out, "{pad}if ({}) {{", expr_c(cond));
            for s in then_body {
                stmt_c(s, out, indent + 1);
            }
            if else_body.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in else_body {
                    stmt_c(s, out, indent + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        Stmt::For {
            var,
            start,
            end,
            body,
        } => {
            let _ = writeln!(
                out,
                "{pad}for (int {var} = {}; {var} < {}; ++{var}) {{",
                expr_c(start),
                expr_c(end)
            );
            for s in body {
                stmt_c(s, out, indent + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
    }
}

fn layout_macro(l: Layout, what: &str, rate: &str, units: &str) -> String {
    match l {
        Layout::RowMajor => format!("#define {what}(j) (unit * {rate} + (j))"),
        Layout::Transposed => format!("#define {what}(j) ((j) * {units} + unit)"),
        // `units` silences unused warnings for row-major.
    }
}

fn emit_map_kernel(
    name: &str,
    body: &[Stmt],
    in_layout: Layout,
    out_layout: Layout,
    coarsen: usize,
    out: &mut String,
) {
    let _ = writeln!(out, "__global__ void {name}(const float* in, float* out,");
    let _ = writeln!(
        out,
        "                       int units, int in_rate, int out_rate) {{"
    );
    let _ = writeln!(
        out,
        "    {}",
        layout_macro(in_layout, "IN_ADDR", "in_rate", "units")
    );
    let _ = writeln!(
        out,
        "    {}",
        layout_macro(out_layout, "OUT_ADDR", "out_rate", "units")
    );
    let _ = writeln!(out, "    #define POP() in[IN_ADDR(__pop++)]");
    let _ = writeln!(out, "    #define PEEK(j) in[IN_ADDR(j)]");
    let _ = writeln!(out, "    #define PUSH(v) out[OUT_ADDR(__push++)] = (v)");
    let _ = writeln!(out, "    int base = blockIdx.x * blockDim.x * {coarsen};");
    let _ = writeln!(out, "    for (int c = 0; c < {coarsen}; ++c) {{");
    let _ = writeln!(
        out,
        "        int unit = base + c * blockDim.x + threadIdx.x;"
    );
    let _ = writeln!(out, "        if (unit >= units) continue;");
    let _ = writeln!(out, "        int __pop = 0, __push = 0;");
    for s in body {
        stmt_c(s, out, 2);
    }
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "    #undef POP\n    #undef PEEK\n    #undef PUSH");
    let _ = writeln!(out, "    #undef IN_ADDR\n    #undef OUT_ADDR");
    let _ = writeln!(out, "}}\n");
}

fn emit_reduce_kernel(
    name: &str,
    op: CombineOp,
    elem: &Expr,
    post: Option<&Expr>,
    acc: &str,
    two_kernel: bool,
    out: &mut String,
) {
    let identity = match op {
        CombineOp::Add => "0.0f",
        CombineOp::Mul => "1.0f",
        CombineOp::Max => "-INFINITY",
        CombineOp::Min => "INFINITY",
    };
    let combine = op.cuda_expr(acc, "ELEM(i)");
    let tail = op.cuda_expr("sdata[threadIdx.x]", "sdata[threadIdx.x + stride]");
    let _ = writeln!(out, "__global__ void {name}(const float* in, float* out,");
    let _ = writeln!(out, "                       int n_elements, int total) {{");
    let _ = writeln!(out, "    extern __shared__ float sdata[];");
    let _ = writeln!(out, "    #define POP() in[__eaddr(i, __pop++)]");
    let _ = writeln!(out, "    #define ELEM(i) ({})", expr_c(elem));
    let _ = writeln!(out, "    /* global memory reduction phase */");
    let chunking = if two_kernel {
        "    int chunk = blockIdx.x % gridDim.x; /* chunk of this array */"
    } else {
        "    /* one block per array */"
    };
    let _ = writeln!(out, "{chunking}");
    let _ = writeln!(out, "    float {acc} = {identity};");
    let _ = writeln!(
        out,
        "    for (int i = threadIdx.x; i < n_elements; i += blockDim.x) {{"
    );
    let _ = writeln!(out, "        int __pop = 0;");
    let _ = writeln!(out, "        {acc} = {combine};");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "    sdata[threadIdx.x] = {acc};");
    let _ = writeln!(out, "    __syncthreads();");
    let _ = writeln!(out, "    /* shared memory reduction phase (L1) */");
    let _ = writeln!(
        out,
        "    for (int stride = blockDim.x / 2; stride >= WARP_SIZE; stride /= 2) {{"
    );
    let _ = writeln!(out, "        if (threadIdx.x < stride)");
    let _ = writeln!(out, "            sdata[threadIdx.x] = {tail};");
    let _ = writeln!(out, "        __syncthreads();");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "    /* warp tail, no barriers (L2) */");
    let _ = writeln!(
        out,
        "    for (int stride = WARP_SIZE / 2; stride >= 1; stride /= 2)"
    );
    let _ = writeln!(out, "        sdata[threadIdx.x] = {tail};");
    let _ = writeln!(out, "    if (threadIdx.x == 0) {{");
    match post {
        Some(p) => {
            let _ = writeln!(out, "        float {acc}_final = sdata[0];");
            let post_c = expr_c(p).replace(acc, &format!("{acc}_final"));
            let _ = writeln!(out, "        out[blockIdx.x] = {post_c};");
        }
        None => {
            let _ = writeln!(out, "        out[blockIdx.x] = sdata[0];");
        }
    }
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "    #undef ELEM\n    #undef POP");
    let _ = writeln!(out, "}}\n");
}

fn emit_stencil_kernel(
    name: &str,
    body: &[Stmt],
    tile: (usize, usize),
    halo: (usize, usize),
    out: &mut String,
) {
    let (tw, th) = tile;
    let (hr, hc) = halo;
    let ext_w = tw + 2 * hc;
    let ext_h = th + 2 * hr;
    let _ = writeln!(out, "__global__ void {name}(const float* in, float* out,");
    let _ = writeln!(out, "                       int rows, int cols) {{");
    let _ = writeln!(out, "    __shared__ float tile[{ext_h}][{ext_w}];");
    let _ = writeln!(
        out,
        "    int tile_r0 = (blockIdx.x / ((cols + {tw} - 1) / {tw})) * {th};"
    );
    let _ = writeln!(
        out,
        "    int tile_c0 = (blockIdx.x % ((cols + {tw} - 1) / {tw})) * {tw};"
    );
    let _ = writeln!(out, "    /* stage super tile + halo (Figure 6) */");
    let _ = writeln!(
        out,
        "    for (int e = threadIdx.x; e < {ext_h} * {ext_w}; e += blockDim.x) {{"
    );
    let _ = writeln!(out, "        int er = e / {ext_w}, ec = e % {ext_w};");
    let _ = writeln!(
        out,
        "        int r = tile_r0 - {hr} + er, c = tile_c0 - {hc} + ec;"
    );
    let _ = writeln!(
        out,
        "        tile[er][ec] = (r >= 0 && r < rows && c >= 0 && c < cols) ? in[r * cols + c] : 0.0f;"
    );
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "    __syncthreads();");
    let _ = writeln!(
        out,
        "    #define PEEK(g) tile[(g) / cols - tile_r0 + {hr}][(g) % cols - tile_c0 + {hc}]"
    );
    let _ = writeln!(out, "    #define PUSH(v) out[idx] = (v)");
    let _ = writeln!(
        out,
        "    for (int e = threadIdx.x; e < {tw} * {th}; e += blockDim.x) {{"
    );
    let _ = writeln!(
        out,
        "        int r = tile_r0 + e / {tw}, c = tile_c0 + e % {tw};"
    );
    let _ = writeln!(out, "        if (r >= rows || c >= cols) continue;");
    let _ = writeln!(out, "        int idx = r * cols + c;");
    for s in body {
        stmt_c(s, out, 2);
    }
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "    #undef PEEK\n    #undef PUSH");
    let _ = writeln!(out, "}}\n");
}

/// Emit the CUDA source of one variant.
pub fn emit_variant(compiled: &CompiledProgram, variant: &Variant) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "/* Adaptic-generated CUDA for input range [{}, {}] on {} */",
        variant.lo,
        variant.hi,
        compiled.device().name
    );
    let _ = writeln!(out, "#define WARP_SIZE {}\n", compiled.device().warp_size);
    for (seg, choice) in compiled.segments.iter().zip(&variant.choices) {
        let kname = seg.label.replace(['+', '-', ' '], "_").to_lowercase();
        match (&seg.kind, choice) {
            (SegKind::Unit(u), SegChoice::Map { coarsen }) => {
                emit_map_kernel(
                    &format!("{kname}_map"),
                    &u.body,
                    Layout::RowMajor,
                    Layout::RowMajor,
                    *coarsen,
                    &mut out,
                );
            }
            (SegKind::Reduce(r), SegChoice::Reduce { choice }) => {
                let post = if r.pattern.post_is_identity() {
                    None
                } else {
                    Some(&r.pattern.post)
                };
                match choice {
                    ReduceChoice::TwoKernel { .. } => {
                        emit_reduce_kernel(
                            &format!("{kname}_initial_reduce"),
                            r.pattern.op,
                            &r.pattern.elem,
                            None,
                            &r.pattern.acc,
                            true,
                            &mut out,
                        );
                        emit_reduce_kernel(
                            &format!("{kname}_merge"),
                            r.pattern.op,
                            &Expr::Pop,
                            post,
                            &r.pattern.acc,
                            false,
                            &mut out,
                        );
                    }
                    ReduceChoice::OneKernel { .. } => {
                        emit_reduce_kernel(
                            &format!("{kname}_reduce"),
                            r.pattern.op,
                            &r.pattern.elem,
                            post,
                            &r.pattern.acc,
                            false,
                            &mut out,
                        );
                    }
                    ReduceChoice::ThreadPerArray { .. } => {
                        let body = crate::runtime::pattern_to_serial_body(&r.pattern);
                        emit_map_kernel(
                            &format!("{kname}_thread_per_array"),
                            &body,
                            Layout::Transposed,
                            Layout::RowMajor,
                            1,
                            &mut out,
                        );
                    }
                }
            }
            (SegKind::Stencil(s), SegChoice::Stencil { tile }) => {
                let (hr, hc) = s.pattern.halo();
                emit_stencil_kernel(
                    &format!("{kname}_stencil"),
                    &s.pattern.body,
                    *tile,
                    (hr as usize, hc as usize),
                    &mut out,
                );
            }
            (SegKind::HFused(h), SegChoice::HFused { fused }) => {
                if *fused {
                    let _ = writeln!(
                        out,
                        "/* horizontally integrated: {} */",
                        h.actors.join(" + ")
                    );
                }
                for (pat, actor) in h.patterns.iter().zip(&h.actors) {
                    let post = if pat.post_is_identity() {
                        None
                    } else {
                        Some(&pat.post)
                    };
                    emit_reduce_kernel(
                        &format!("{}_reduce", actor.to_lowercase()),
                        pat.op,
                        &pat.elem,
                        post,
                        &pat.acc,
                        false,
                        &mut out,
                    );
                }
            }
            (SegKind::Opaque(idx), SegChoice::Opaque) => {
                let _ = writeln!(
                    out,
                    "/* actor {} executes on the host */\n",
                    compiled.program_actor_name(*idx)
                );
            }
            _ => {}
        }
    }
    out
}

/// Emit all variants of a compiled program, range-annotated.
pub fn emit_program(compiled: &CompiledProgram) -> String {
    let mut out = String::new();
    for v in &compiled.variants {
        out.push_str(&emit_variant(compiled, v));
        out.push('\n');
    }
    out
}

impl CompiledProgram {
    /// The CUDA source for the variant covering axis value `x`.
    pub fn cuda_source(&self, x: i64) -> String {
        let (_, v) = self.variant_for(x);
        emit_variant(self, v)
    }

    pub(crate) fn program_actor_name(&self, idx: usize) -> &str {
        &self.program.actors[idx].name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{compile, InputAxis};
    use gpu_sim::DeviceSpec;
    use streamir::parse::parse_program;

    fn sum_program() -> streamir::graph::Program {
        parse_program(
            r#"pipeline P(N) {
                actor Sum(pop N, push 1) {
                    acc = 0.0;
                    for i in 0..N { acc = acc + pop(); }
                    push(acc);
                }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn reduce_cuda_has_figure8_shape() {
        let p = sum_program();
        let axis = InputAxis::total_size("N", 64, 1 << 22);
        let compiled = compile(&p, &DeviceSpec::tesla_c2050(), &axis).unwrap();
        let src = compiled.cuda_source(1 << 22);
        assert!(src.contains("__global__ void"), "{src}");
        assert!(src.contains("extern __shared__ float sdata[]"));
        assert!(src.contains("__syncthreads()"));
        assert!(src.contains("WARP_SIZE"));
        // Large sizes use the two-kernel scheme.
        assert!(src.contains("initial_reduce"), "{src}");
        assert!(src.contains("merge"));
    }

    #[test]
    fn map_cuda_mentions_layout_macros() {
        let p = parse_program("pipeline P(N) { actor M(pop 1, push 1) { push(sqrt(pop())); } }")
            .unwrap();
        let axis = InputAxis::total_size("N", 64, 1 << 20);
        let compiled = compile(&p, &DeviceSpec::tesla_c2050(), &axis).unwrap();
        let src = compiled.cuda_source(1024);
        assert!(src.contains("IN_ADDR"));
        assert!(src.contains("sqrtf"));
        assert!(src.contains("blockIdx.x"));
    }

    #[test]
    fn whole_program_emission_covers_all_variants() {
        let p = sum_program();
        let axis = InputAxis::total_size("N", 64, 1 << 22);
        let compiled = compile(&p, &DeviceSpec::tesla_c2050(), &axis).unwrap();
        let all = emit_program(&compiled);
        for v in &compiled.variants {
            assert!(all.contains(&format!("[{}, {}]", v.lo, v.hi)));
        }
    }

    #[test]
    fn expr_c_round_trips_operators() {
        use streamir::ir::{BinOp, Expr};
        let e = Expr::bin(
            BinOp::Add,
            Expr::mul(Expr::var("a"), Expr::Float(2.0)),
            Expr::Call {
                intrinsic: Intrinsic::Select,
                args: vec![
                    Expr::bin(BinOp::Lt, Expr::var("a"), Expr::Int(0)),
                    Expr::Float(1.0),
                    Expr::Float(0.0),
                ],
            },
        );
        let c = expr_c(&e);
        assert!(c.contains("(a * 2.0f)"));
        assert!(c.contains("? 1.0f : 0.0f"));
    }
}
