//! Kernel-management-unit telemetry: what the online runtime observed and
//! what it did about it.
//!
//! The paper's kernel-management unit (§5) is a black box that "always
//! picks the right variant"; a production runtime has to *prove* it keeps
//! picking right. This module carries the evidence: per-variant selection
//! counts, launch-cache traffic, how far the analytical model strayed from
//! measured cost, and how many times measured feedback actually moved a
//! break-even boundary. [`crate::KernelManager`] maintains the live
//! counters and attaches a [`TelemetrySnapshot`] to every
//! [`crate::ExecutionReport`] it produces; the figure benches dump the
//! final snapshot next to their timing tables.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters shared by every launch through one [`crate::KernelManager`].
///
/// All counters are relaxed atomics: they are monotone tallies, never used
/// to synchronize, so concurrent callers pay one uncontended RMW each.
#[derive(Debug)]
pub struct TelemetryCounters {
    /// Completed launches through the manager.
    pub launches: AtomicU64,
    /// Boundary moves applied by measured-feedback recalibration.
    pub recalibration_moves: AtomicU64,
    /// Times each variant of the table was selected (indexed by variant).
    pub selections: Vec<AtomicU64>,
}

impl TelemetryCounters {
    /// Counters for a table of `variants` entries.
    pub fn new(variants: usize) -> TelemetryCounters {
        TelemetryCounters {
            launches: AtomicU64::new(0),
            recalibration_moves: AtomicU64::new(0),
            selections: (0..variants).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record one launch that selected `variant`.
    pub fn record_selection(&self, variant: usize) {
        self.launches.fetch_add(1, Ordering::Relaxed);
        if let Some(s) = self.selections.get(variant) {
            s.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one applied boundary move.
    pub fn record_move(&self) {
        self.recalibration_moves.fetch_add(1, Ordering::Relaxed);
    }

    /// Current per-variant selection counts.
    pub fn selection_counts(&self) -> Vec<u64> {
        self.selections
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect()
    }
}

/// A point-in-time copy of everything the kernel-management unit knows
/// about its own behaviour. Attached to [`crate::ExecutionReport`]s
/// produced through [`crate::KernelManager::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Completed launches through the manager so far.
    pub launches: u64,
    /// Launch-stats cache hits (0 when no cache was engaged).
    pub cache_hits: u64,
    /// Launch-stats cache misses.
    pub cache_misses: u64,
    /// Entries the bounded cache evicted to stay within capacity.
    pub cache_evictions: u64,
    /// Times each variant was selected, indexed by variant.
    pub selections: Vec<u64>,
    /// Boundary moves applied by measured-feedback recalibration.
    pub recalibration_moves: u64,
    /// Mean of `|measured - predicted| / predicted` over all sampled
    /// launches — how wrong the analytical model has been on this device.
    pub mean_model_error: f64,
    /// The table's current (possibly recalibrated) sub-ranges, in variant
    /// order.
    pub boundaries: Vec<(i64, i64)>,
}

impl fmt::Display for TelemetrySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "kmu: {} launches, cache {}h/{}m/{}e, {} recalibration moves, \
             mean model error {:.1}%",
            self.launches,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.recalibration_moves,
            self.mean_model_error * 100.0
        )?;
        for (i, ((lo, hi), n)) in self.boundaries.iter().zip(&self.selections).enumerate() {
            writeln!(f, "  variant {i}: [{lo}, {hi}] selected {n}x")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_tally_selections_and_moves() {
        let c = TelemetryCounters::new(3);
        c.record_selection(0);
        c.record_selection(2);
        c.record_selection(2);
        c.record_selection(99); // out of range: launch counted, selection dropped
        c.record_move();
        assert_eq!(c.launches.load(Ordering::Relaxed), 4);
        assert_eq!(c.selection_counts(), vec![1, 0, 2]);
        assert_eq!(c.recalibration_moves.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn snapshot_display_is_complete() {
        let snap = TelemetrySnapshot {
            launches: 7,
            cache_hits: 3,
            cache_misses: 4,
            cache_evictions: 1,
            selections: vec![5, 2],
            recalibration_moves: 1,
            mean_model_error: 0.25,
            boundaries: vec![(1, 99), (100, 4096)],
        };
        let s = snap.to_string();
        assert!(s.contains("7 launches"));
        assert!(s.contains("3h/4m/1e"));
        assert!(s.contains("variant 0: [1, 99] selected 5x"));
        assert!(s.contains("25.0%"));
    }
}
