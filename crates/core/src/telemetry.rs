//! Kernel-management-unit telemetry: what the online runtime observed and
//! what it did about it.
//!
//! The paper's kernel-management unit (§5) is a black box that "always
//! picks the right variant"; a production runtime has to *prove* it keeps
//! picking right. This module carries the evidence: per-variant selection
//! counts, launch-cache traffic, how far the analytical model strayed from
//! measured cost, and how many times measured feedback actually moved a
//! break-even boundary. [`crate::KernelManager`] maintains the live
//! counters and attaches a [`TelemetrySnapshot`] to every
//! [`crate::ExecutionReport`] it produces; the figure benches dump the
//! final snapshot next to their timing tables.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters shared by every launch through one [`crate::KernelManager`].
///
/// All counters are relaxed atomics: they are monotone tallies, never used
/// to synchronize, so concurrent callers pay one uncontended RMW each.
#[derive(Debug)]
pub struct TelemetryCounters {
    /// Completed launches through the manager.
    pub launches: AtomicU64,
    /// Boundary moves applied by measured-feedback recalibration.
    pub recalibration_moves: AtomicU64,
    /// Times each variant of the table was selected (indexed by variant).
    pub selections: Vec<AtomicU64>,
    /// Launch attempts re-issued after a failed attempt.
    pub retries: AtomicU64,
    /// Launch failures the resilient pipeline observed.
    pub faults_observed: AtomicU64,
    /// Faults handed out by the run's injector (high-water mark; 0 without
    /// fault injection).
    pub faults_injected: AtomicU64,
    /// Launch attempts that overran their deadline budget.
    pub deadline_overruns: AtomicU64,
    /// Runs where selection fell back from the primary variant to another
    /// variant because the primary was quarantined or kept failing.
    pub fallbacks: AtomicU64,
    /// Times a variant's circuit breaker opened (the variant was
    /// quarantined).
    pub quarantines: AtomicU64,
    /// Quarantined variants probed after their window elapsed (half-open).
    pub half_open_probes: AtomicU64,
    /// Half-open probes that succeeded, re-admitting the variant.
    pub readmissions: AtomicU64,
    /// Runs that exhausted every variant and completed on the serial
    /// degraded-but-correct last resort.
    pub degraded_runs: AtomicU64,
    /// Launches whose input left the manager's declared rate window
    /// (0 when no window is declared).
    pub rate_exits: AtomicU64,
    /// Region re-schedules: the rate governor replaced the plan (and its
    /// manager) after a sustained rate exit.
    pub reschedules: AtomicU64,
}

impl TelemetryCounters {
    /// Counters for a table of `variants` entries.
    pub fn new(variants: usize) -> TelemetryCounters {
        TelemetryCounters {
            launches: AtomicU64::new(0),
            recalibration_moves: AtomicU64::new(0),
            selections: (0..variants).map(|_| AtomicU64::new(0)).collect(),
            retries: AtomicU64::new(0),
            faults_observed: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            deadline_overruns: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            half_open_probes: AtomicU64::new(0),
            readmissions: AtomicU64::new(0),
            degraded_runs: AtomicU64::new(0),
            rate_exits: AtomicU64::new(0),
            reschedules: AtomicU64::new(0),
        }
    }

    /// Record one launch request outside the declared rate window.
    pub fn record_rate_exit(&self) {
        self.rate_exits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one launch that selected `variant`.
    pub fn record_selection(&self, variant: usize) {
        self.launches.fetch_add(1, Ordering::Relaxed);
        if let Some(s) = self.selections.get(variant) {
            s.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one applied boundary move.
    pub fn record_move(&self) {
        self.recalibration_moves.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one run's resilience tallies (from its `ExecutionReport`
    /// deltas) into the manager-lifetime counters.
    pub fn record_resilience(&self, retries: u64, faults_observed: u64, deadline_overruns: u64) {
        self.retries.fetch_add(retries, Ordering::Relaxed);
        self.faults_observed
            .fetch_add(faults_observed, Ordering::Relaxed);
        self.deadline_overruns
            .fetch_add(deadline_overruns, Ordering::Relaxed);
    }

    /// Raise the injected-fault high-water mark to `total` (injectors
    /// report a lifetime total, not a delta).
    pub fn record_faults_injected(&self, total: u64) {
        self.faults_injected.fetch_max(total, Ordering::Relaxed);
    }

    /// Current per-variant selection counts.
    pub fn selection_counts(&self) -> Vec<u64> {
        self.selections
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect()
    }
}

/// A point-in-time copy of everything the kernel-management unit knows
/// about its own behaviour. Attached to [`crate::ExecutionReport`]s
/// produced through [`crate::KernelManager::run`].
///
/// The `admitted`/`rejected_*`/`shed_deadline`/`coalesced` counters are
/// serving-plane tallies: a [`KernelManager`](crate::KernelManager) always
/// reports them as zero, and a serving front-end (the `adaptic-serve`
/// crate) fills them per tenant before rolling tenants up with
/// [`TelemetrySnapshot::fleet_rollup`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetrySnapshot {
    /// Completed launches through the manager so far.
    pub launches: u64,
    /// Launch-stats cache hits (0 when no cache was engaged).
    pub cache_hits: u64,
    /// Launch-stats cache misses.
    pub cache_misses: u64,
    /// Entries the bounded cache evicted to stay within capacity.
    pub cache_evictions: u64,
    /// Times each variant was selected, indexed by variant.
    pub selections: Vec<u64>,
    /// Boundary moves applied by measured-feedback recalibration.
    pub recalibration_moves: u64,
    /// Mean of `|measured - predicted| / predicted` over all sampled
    /// launches — how wrong the analytical model has been on this device.
    pub mean_model_error: f64,
    /// The table's current (possibly recalibrated) sub-ranges, in variant
    /// order.
    pub boundaries: Vec<(i64, i64)>,
    /// Launch attempts re-issued after a failed attempt.
    pub retries: u64,
    /// Launch failures the resilient pipeline observed.
    pub faults_observed: u64,
    /// Faults handed out by the fault injector (0 without injection).
    pub faults_injected: u64,
    /// Launch attempts that overran their deadline budget.
    pub deadline_overruns: u64,
    /// Runs that fell back from the primary variant.
    pub fallbacks: u64,
    /// Times a variant was quarantined by its circuit breaker.
    pub quarantines: u64,
    /// Half-open probes of quarantined variants.
    pub half_open_probes: u64,
    /// Probes that succeeded and re-admitted their variant.
    pub readmissions: u64,
    /// Runs completed on the serial degraded-but-correct last resort.
    pub degraded_runs: u64,
    /// Launches whose input left the declared rate window (0 when no
    /// window is declared).
    pub rate_exits: u64,
    /// Region re-schedules triggered by sustained rate exits.
    pub reschedules: u64,
    /// Variants currently quarantined (circuit open), by index.
    pub quarantined_variants: Vec<usize>,
    /// Artifact-store loads satisfied from disk (0 without a store).
    pub artifact_hits: u64,
    /// Artifact-store loads that found nothing (cold boots).
    pub artifact_misses: u64,
    /// Artifacts found but refused — corrupt, truncated, checksum or
    /// version mismatch, or structurally incompatible; always degraded to
    /// a miss, never a crash.
    pub artifact_rejects: u64,
    /// Requests a serving front-end admitted past quota + queue checks
    /// (0 outside a serving plane).
    pub admitted: u64,
    /// Requests rejected at admission: token-bucket quota exhausted.
    pub rejected_quota: u64,
    /// Requests rejected at admission: bounded queue full after shedding.
    pub rejected_queue_full: u64,
    /// Requests rejected at admission: predicted cost plus backlog already
    /// exceeded the deadline budget.
    pub rejected_deadline: u64,
    /// Admitted requests shed from the queue because their deadline passed
    /// before dispatch (includes requests shed by a draining shutdown).
    pub shed_deadline: u64,
    /// Admitted requests served by coalescing onto another tenant's
    /// identical in-flight launch instead of launching again. The launch
    /// itself is counted once, in `launches`, by the leader's manager.
    pub coalesced: u64,
}

impl TelemetrySnapshot {
    /// Fold `other` into `self`, producing the view one manager would have
    /// reported had it done both managers' work.
    ///
    /// Scalars are summed; `mean_model_error` becomes the launch-weighted
    /// mean; `selections` are summed element-wise (padded to the longer
    /// table). `boundaries` and `quarantined_variants` are per-table state
    /// with no cross-device meaning, so the merged snapshot drops them —
    /// read those off the individual snapshots.
    ///
    /// `shared_artifact_store` controls the artifact counters. The
    /// [`crate::ArtifactStore`] tallies hits/misses *store-wide*, so when
    /// several managers share one store each snapshot already carries the
    /// whole store's counts: summing would multiply every hit by the fleet
    /// size. Pass `true` to take the max (one store, counted once), `false`
    /// when each manager has a private store and the counts are disjoint.
    ///
    /// Feed this exactly one snapshot per manager — the *latest*. Snapshots
    /// are cumulative, so merging two reports from the same manager
    /// double-counts everything it did before the first.
    pub fn merge(&mut self, other: &TelemetrySnapshot, shared_artifact_store: bool) {
        let total = self.launches + other.launches;
        if total > 0 {
            self.mean_model_error = (self.mean_model_error * self.launches as f64
                + other.mean_model_error * other.launches as f64)
                / total as f64;
        }
        self.launches = total;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        if self.selections.len() < other.selections.len() {
            self.selections.resize(other.selections.len(), 0);
        }
        for (s, o) in self.selections.iter_mut().zip(&other.selections) {
            *s += o;
        }
        self.recalibration_moves += other.recalibration_moves;
        self.retries += other.retries;
        self.faults_observed += other.faults_observed;
        self.faults_injected += other.faults_injected;
        self.deadline_overruns += other.deadline_overruns;
        self.fallbacks += other.fallbacks;
        self.quarantines += other.quarantines;
        self.half_open_probes += other.half_open_probes;
        self.readmissions += other.readmissions;
        self.degraded_runs += other.degraded_runs;
        self.rate_exits += other.rate_exits;
        self.reschedules += other.reschedules;
        self.admitted += other.admitted;
        self.rejected_quota += other.rejected_quota;
        self.rejected_queue_full += other.rejected_queue_full;
        self.rejected_deadline += other.rejected_deadline;
        self.shed_deadline += other.shed_deadline;
        self.coalesced += other.coalesced;
        self.boundaries.clear();
        self.quarantined_variants.clear();
        if shared_artifact_store {
            self.artifact_hits = self.artifact_hits.max(other.artifact_hits);
            self.artifact_misses = self.artifact_misses.max(other.artifact_misses);
            self.artifact_rejects = self.artifact_rejects.max(other.artifact_rejects);
        } else {
            self.artifact_hits += other.artifact_hits;
            self.artifact_misses += other.artifact_misses;
            self.artifact_rejects += other.artifact_rejects;
        }
    }

    /// Roll one latest-snapshot-per-manager slice up into a single fleet
    /// view. See [`merge`](Self::merge) for the `shared_artifact_store`
    /// double-counting rule. Returns `None` for an empty slice.
    pub fn fleet_rollup(
        snaps: &[TelemetrySnapshot],
        shared_artifact_store: bool,
    ) -> Option<TelemetrySnapshot> {
        let (first, rest) = snaps.split_first()?;
        let mut acc = first.clone();
        // Per-table state is meaningless fleet-wide even with one device.
        acc.boundaries.clear();
        acc.quarantined_variants.clear();
        for s in rest {
            acc.merge(s, shared_artifact_store);
        }
        Some(acc)
    }
}

impl fmt::Display for TelemetrySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "kmu: {} launches, cache {}h/{}m/{}e, {} recalibration moves, \
             mean model error {:.1}%",
            self.launches,
            self.cache_hits,
            self.cache_misses,
            self.cache_evictions,
            self.recalibration_moves,
            self.mean_model_error * 100.0
        )?;
        writeln!(
            f,
            "  resilience: {} faults injected, {} observed, {} retries, \
             {} overruns, {} fallbacks, {} quarantines, {} probes, \
             {} readmissions, {} degraded runs",
            self.faults_injected,
            self.faults_observed,
            self.retries,
            self.deadline_overruns,
            self.fallbacks,
            self.quarantines,
            self.half_open_probes,
            self.readmissions,
            self.degraded_runs
        )?;
        writeln!(
            f,
            "  artifacts: {} hits, {} misses, {} rejects",
            self.artifact_hits, self.artifact_misses, self.artifact_rejects
        )?;
        writeln!(
            f,
            "  rates: {} window exits, {} reschedules",
            self.rate_exits, self.reschedules
        )?;
        writeln!(
            f,
            "  serving: {} admitted, rejected {}q/{}f/{}d, {} shed, {} coalesced",
            self.admitted,
            self.rejected_quota,
            self.rejected_queue_full,
            self.rejected_deadline,
            self.shed_deadline,
            self.coalesced
        )?;
        for (i, ((lo, hi), n)) in self.boundaries.iter().zip(&self.selections).enumerate() {
            let mark = if self.quarantined_variants.contains(&i) {
                " [quarantined]"
            } else {
                ""
            };
            writeln!(f, "  variant {i}: [{lo}, {hi}] selected {n}x{mark}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_tally_selections_and_moves() {
        let c = TelemetryCounters::new(3);
        c.record_selection(0);
        c.record_selection(2);
        c.record_selection(2);
        c.record_selection(99); // out of range: launch counted, selection dropped
        c.record_move();
        assert_eq!(c.launches.load(Ordering::Relaxed), 4);
        assert_eq!(c.selection_counts(), vec![1, 0, 2]);
        assert_eq!(c.recalibration_moves.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn snapshot_display_is_complete() {
        let snap = TelemetrySnapshot {
            launches: 7,
            cache_hits: 3,
            cache_misses: 4,
            cache_evictions: 1,
            selections: vec![5, 2],
            recalibration_moves: 1,
            mean_model_error: 0.25,
            boundaries: vec![(1, 99), (100, 4096)],
            retries: 6,
            faults_observed: 8,
            faults_injected: 9,
            deadline_overruns: 2,
            fallbacks: 3,
            quarantines: 1,
            half_open_probes: 1,
            readmissions: 1,
            degraded_runs: 0,
            rate_exits: 11,
            reschedules: 4,
            quarantined_variants: vec![1],
            artifact_hits: 4,
            artifact_misses: 2,
            artifact_rejects: 1,
            admitted: 14,
            rejected_quota: 5,
            rejected_queue_full: 6,
            rejected_deadline: 7,
            shed_deadline: 8,
            coalesced: 2,
        };
        let s = snap.to_string();
        assert!(s.contains("7 launches"));
        assert!(s.contains("3h/4m/1e"));
        assert!(s.contains("variant 0: [1, 99] selected 5x"));
        assert!(s.contains("25.0%"));
        assert!(s.contains("9 faults injected"));
        assert!(s.contains("6 retries"));
        assert!(s.contains("3 fallbacks"));
        assert!(s.contains("1 quarantines"));
        assert!(s.contains("4 hits, 2 misses, 1 rejects"));
        assert!(s.contains("11 window exits, 4 reschedules"));
        assert!(s.contains("14 admitted, rejected 5q/6f/7d, 8 shed, 2 coalesced"));
        assert!(s.contains("variant 1: [100, 4096] selected 2x [quarantined]"));
    }

    fn snap(launches: u64, hits: u64, selections: Vec<u64>) -> TelemetrySnapshot {
        TelemetrySnapshot {
            launches,
            cache_hits: launches / 2,
            cache_misses: launches - launches / 2,
            cache_evictions: 0,
            selections,
            recalibration_moves: 1,
            mean_model_error: 0.10,
            boundaries: vec![(1, 100)],
            retries: 1,
            faults_observed: 1,
            faults_injected: 1,
            deadline_overruns: 0,
            fallbacks: 0,
            quarantines: 0,
            half_open_probes: 0,
            readmissions: 0,
            degraded_runs: 0,
            rate_exits: 2,
            reschedules: 1,
            quarantined_variants: vec![0],
            artifact_hits: hits,
            artifact_misses: 1,
            artifact_rejects: 0,
            admitted: launches,
            coalesced: 1,
            ..TelemetrySnapshot::default()
        }
    }

    #[test]
    fn rollup_sums_per_manager_counters() {
        let a = snap(10, 3, vec![4, 6]);
        let mut b = snap(30, 3, vec![30, 0, 0]);
        b.mean_model_error = 0.30;
        let fleet = TelemetrySnapshot::fleet_rollup(&[a, b], false).unwrap();
        assert_eq!(fleet.launches, 40);
        assert_eq!(fleet.cache_hits, 5 + 15);
        assert_eq!(fleet.selections, vec![34, 6, 0]);
        // Launch-weighted mean error: (10*0.10 + 30*0.30) / 40 = 0.25.
        assert!((fleet.mean_model_error - 0.25).abs() < 1e-12);
        // Private stores: artifact counts are disjoint and sum.
        assert_eq!(fleet.artifact_hits, 6);
        // Rate counters are plain per-manager tallies and sum.
        assert_eq!(fleet.rate_exits, 4);
        assert_eq!(fleet.reschedules, 2);
        // Per-table state does not survive the rollup.
        assert!(fleet.boundaries.is_empty());
        assert!(fleet.quarantined_variants.is_empty());
    }

    #[test]
    fn shared_store_hits_are_not_double_counted() {
        // Three managers over ONE artifact store: each snapshot already
        // carries the store-wide tally (here 7 hits), so the fleet view
        // must report 7, not 21.
        let snaps = vec![
            snap(5, 7, vec![5]),
            snap(5, 7, vec![5]),
            snap(5, 7, vec![5]),
        ];
        let fleet = TelemetrySnapshot::fleet_rollup(&snaps, true).unwrap();
        assert_eq!(fleet.artifact_hits, 7);
        assert_eq!(fleet.artifact_misses, 1);
        assert_eq!(
            fleet.launches, 15,
            "launch counters are per-manager and sum"
        );
        let summed = TelemetrySnapshot::fleet_rollup(&snaps, false).unwrap();
        assert_eq!(summed.artifact_hits, 21, "private stores would sum");
    }

    #[test]
    fn rollup_of_empty_slice_is_none() {
        assert!(TelemetrySnapshot::fleet_rollup(&[], true).is_none());
    }

    #[test]
    fn merging_a_default_snapshot_is_identity() {
        // An idle manager/tenant contributes a default snapshot; folding it
        // in must not perturb any counter — in particular the
        // launch-weighted mean_model_error must not be dragged toward zero
        // by a zero-launch peer, and shared-store max() must not drop hits.
        let base = snap(12, 9, vec![7, 5]);
        // The weighted mean round-trips through (m*n + 0)/n — compare it
        // with a tolerance and everything else exactly.
        let normalize = |mut s: TelemetrySnapshot| {
            assert!((s.mean_model_error - base.mean_model_error).abs() < 1e-12);
            s.mean_model_error = base.mean_model_error;
            s
        };
        for shared in [false, true] {
            let mut merged = base.clone();
            merged.merge(&TelemetrySnapshot::default(), shared);
            let mut expect = base.clone();
            // Per-table state is dropped by every merge, by design.
            expect.boundaries.clear();
            expect.quarantined_variants.clear();
            assert_eq!(normalize(merged), expect, "shared={shared}");
        }
        // The empty side absorbing a real snapshot is the same view.
        let mut from_empty = TelemetrySnapshot::default();
        from_empty.merge(&base, false);
        let mut expect = base.clone();
        expect.boundaries.clear();
        expect.quarantined_variants.clear();
        assert_eq!(normalize(from_empty), expect);
        // Two defaults stay default (no NaN from the 0-launch mean).
        let mut both = TelemetrySnapshot::default();
        both.merge(&TelemetrySnapshot::default(), true);
        assert_eq!(both, TelemetrySnapshot::default());
    }

    #[test]
    fn coalesced_launch_bills_tenants_without_double_counting_launches() {
        // Tenant A led a single-flight launch (its manager counted it);
        // tenant B coalesced onto it — billed via `coalesced`/`admitted`,
        // with NO launch of its own. The fleet rollup must show exactly one
        // launch and both admissions.
        let mut leader = TelemetrySnapshot {
            launches: 1,
            selections: vec![1],
            admitted: 1,
            ..TelemetrySnapshot::default()
        };
        leader.mean_model_error = 0.2;
        let follower = TelemetrySnapshot {
            admitted: 1,
            coalesced: 1,
            ..TelemetrySnapshot::default()
        };
        let fleet = TelemetrySnapshot::fleet_rollup(&[leader, follower], false).unwrap();
        assert_eq!(fleet.launches, 1, "the coalesced launch ran once");
        assert_eq!(fleet.admitted, 2, "both tenants were billed");
        assert_eq!(fleet.coalesced, 1);
        // The zero-launch follower must not dilute the model-error mean.
        assert!((fleet.mean_model_error - 0.2).abs() < 1e-12);
    }

    #[test]
    fn serving_counters_sum_in_rollup() {
        let mk = |admitted, q, f, d, shed, co| TelemetrySnapshot {
            admitted,
            rejected_quota: q,
            rejected_queue_full: f,
            rejected_deadline: d,
            shed_deadline: shed,
            coalesced: co,
            ..TelemetrySnapshot::default()
        };
        let fleet =
            TelemetrySnapshot::fleet_rollup(&[mk(4, 1, 2, 3, 1, 1), mk(6, 0, 1, 0, 2, 0)], false)
                .unwrap();
        assert_eq!(
            (
                fleet.admitted,
                fleet.rejected_quota,
                fleet.rejected_queue_full,
                fleet.rejected_deadline,
                fleet.shed_deadline,
                fleet.coalesced
            ),
            (10, 1, 3, 3, 3, 1)
        );
    }

    #[test]
    fn resilience_counters_accumulate() {
        let c = TelemetryCounters::new(2);
        c.record_resilience(2, 3, 1);
        c.record_resilience(1, 1, 0);
        c.record_faults_injected(5);
        c.record_faults_injected(4); // high-water mark: no decrease
        assert_eq!(c.retries.load(Ordering::Relaxed), 3);
        assert_eq!(c.faults_observed.load(Ordering::Relaxed), 4);
        assert_eq!(c.deadline_overruns.load(Ordering::Relaxed), 1);
        assert_eq!(c.faults_injected.load(Ordering::Relaxed), 5);
    }
}
