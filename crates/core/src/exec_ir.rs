//! Scalar IR evaluation inside generated kernels.
//!
//! The kernel templates execute actor work bodies per thread, with the
//! stream operations (`pop`, `peek`, `push`, state access) redirected to
//! simulated device memory through the [`IrIo`] trait. This is the moral
//! equivalent of the generated CUDA code's address arithmetic: each
//! template decides *where* the j-th pop of a given firing lives (layout,
//! shared staging, ...) and the evaluator supplies the *what*.

use std::collections::HashMap;

use streamir::error::{Error, Result};
use streamir::interp::{eval_binop, eval_intrinsic};
use streamir::ir::{Expr, Stmt, UnOp};
use streamir::rates::Bindings;
use streamir::value::Value;

/// Stream/state I/O hooks for one thread's execution of a work body.
pub trait IrIo {
    /// Destructive read of the next input item for this thread's window.
    fn pop(&mut self) -> f32;
    /// Non-destructive read at `offset` from the window start.
    fn peek(&mut self, offset: i64) -> f32;
    /// Append one output item.
    fn push(&mut self, v: f32);
    /// Load from a bound state array.
    fn state_load(&mut self, array: &str, idx: i64) -> f32;
    /// Store to a bound state array.
    fn state_store(&mut self, array: &str, idx: i64, v: f32);
    /// Load via a dense state id (see [`crate::bytecode::Program`]).
    ///
    /// `id` indexes the compiled program's state table; the default
    /// forwards to the name-based hook so existing `IrIo`s keep working,
    /// while templates override it with direct indexed access.
    fn state_load_id(&mut self, _id: u16, array: &str, idx: i64) -> f32 {
        self.state_load(array, idx)
    }
    /// Store via a dense state id; see [`IrIo::state_load_id`].
    fn state_store_id(&mut self, _id: u16, array: &str, idx: i64, v: f32) {
        self.state_store(array, idx, v)
    }
}

/// Evaluate an expression under `locals`/`binds` with I/O through `io`.
///
/// # Errors
///
/// Returns [`Error::Runtime`] for unknown variables or type errors —
/// conditions that indicate a compiler bug, since bodies are validated
/// before lowering.
pub fn eval_expr(
    expr: &Expr,
    locals: &mut HashMap<String, Value>,
    binds: &Bindings,
    io: &mut dyn IrIo,
) -> Result<Value> {
    match expr {
        Expr::Float(x) => Ok(Value::F32(*x)),
        Expr::Int(i) => Ok(Value::I64(*i)),
        Expr::Var(name) => {
            if let Some(v) = locals.get(name) {
                Ok(*v)
            } else if let Some(v) = binds.get(name) {
                Ok(Value::I64(*v))
            } else {
                Err(Error::Runtime(format!("unknown variable `{name}`")))
            }
        }
        Expr::Pop => Ok(Value::F32(io.pop())),
        Expr::Peek(e) => {
            let off = eval_expr(e, locals, binds, io)?.as_i64()?;
            Ok(Value::F32(io.peek(off)))
        }
        Expr::StateLoad { array, index } => {
            let idx = eval_expr(index, locals, binds, io)?.as_i64()?;
            Ok(Value::F32(io.state_load(array, idx)))
        }
        Expr::Binary { op, lhs, rhs } => {
            let a = eval_expr(lhs, locals, binds, io)?;
            let b = eval_expr(rhs, locals, binds, io)?;
            eval_binop(*op, a, b)
        }
        Expr::Unary { op, operand } => {
            let v = eval_expr(operand, locals, binds, io)?;
            match op {
                UnOp::Neg => match v {
                    // Wrapping, matching `eval_binop` and the bytecode.
                    Value::I64(i) => Ok(Value::I64(i.wrapping_neg())),
                    other => Ok(Value::F32(-other.as_f32()?)),
                },
                UnOp::Not => Ok(Value::Bool(!v.as_bool())),
            }
        }
        Expr::Call { intrinsic, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_expr(a, locals, binds, io)?);
            }
            eval_intrinsic(*intrinsic, &vals)
        }
    }
}

/// Execute a statement list.
///
/// # Errors
///
/// See [`eval_expr`].
pub fn exec_body(
    body: &[Stmt],
    locals: &mut HashMap<String, Value>,
    binds: &Bindings,
    io: &mut dyn IrIo,
) -> Result<()> {
    for stmt in body {
        match stmt {
            Stmt::Assign { name, expr } => {
                let v = eval_expr(expr, locals, binds, io)?;
                locals.insert(name.clone(), v);
            }
            Stmt::StateStore { array, index, expr } => {
                let idx = eval_expr(index, locals, binds, io)?.as_i64()?;
                let v = eval_expr(expr, locals, binds, io)?.as_f32()?;
                io.state_store(array, idx, v);
            }
            Stmt::Push(e) => {
                let v = eval_expr(e, locals, binds, io)?.as_f32()?;
                io.push(v);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = eval_expr(cond, locals, binds, io)?.as_bool();
                let branch = if c { then_body } else { else_body };
                exec_body(branch, locals, binds, io)?;
            }
            Stmt::For {
                var,
                start,
                end,
                body: loop_body,
            } => {
                let lo = eval_expr(start, locals, binds, io)?.as_i64()?;
                let hi = eval_expr(end, locals, binds, io)?.as_i64()?;
                for i in lo..hi {
                    locals.insert(var.clone(), Value::I64(i));
                    exec_body(loop_body, locals, binds, io)?;
                }
            }
        }
    }
    Ok(())
}

/// An [`IrIo`] over plain host vectors — used in unit tests and by the
/// host-side (opaque-actor) fallback path.
#[derive(Debug, Default)]
pub struct VecIo {
    /// Input window.
    pub input: Vec<f32>,
    /// Read cursor for pops.
    pub cursor: usize,
    /// Collected pushes.
    pub output: Vec<f32>,
    /// Named state arrays.
    pub state: HashMap<String, Vec<f32>>,
}

impl IrIo for VecIo {
    fn pop(&mut self) -> f32 {
        let v = self.input[self.cursor];
        self.cursor += 1;
        v
    }

    fn peek(&mut self, offset: i64) -> f32 {
        self.input[offset as usize]
    }

    fn push(&mut self, v: f32) {
        self.output.push(v);
    }

    fn state_load(&mut self, array: &str, idx: i64) -> f32 {
        self.state[array][idx as usize]
    }

    fn state_store(&mut self, array: &str, idx: i64, v: f32) {
        self.state.get_mut(array).expect("bound array")[idx as usize] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamir::graph::bindings;
    use streamir::parse::parse_program;

    fn body_of(src: &str) -> Vec<Stmt> {
        parse_program(src).unwrap().actors[0].work.body.clone()
    }

    #[test]
    fn executes_sum_body() {
        let body = body_of(
            r#"pipeline P(N) {
                actor Sum(pop N, push 1) {
                    acc = 0.0;
                    for i in 0..N { acc = acc + pop(); }
                    push(acc);
                }
            }"#,
        );
        let mut io = VecIo {
            input: vec![1.0, 2.0, 3.0],
            ..Default::default()
        };
        let mut locals = HashMap::new();
        exec_body(&body, &mut locals, &bindings(&[("N", 3)]), &mut io).unwrap();
        assert_eq!(io.output, vec![6.0]);
        assert_eq!(io.cursor, 3);
    }

    #[test]
    fn peeks_and_state() {
        let body = body_of(
            r#"pipeline P(N) {
                actor A(pop N, push 1, peek N) {
                    state w[N];
                    push(peek(1) * w[0]);
                }
            }"#,
        );
        let mut io = VecIo {
            input: vec![5.0, 7.0],
            ..Default::default()
        };
        io.state.insert("w".into(), vec![10.0, 0.0]);
        let mut locals = HashMap::new();
        exec_body(&body, &mut locals, &bindings(&[("N", 2)]), &mut io).unwrap();
        assert_eq!(io.output, vec![70.0]);
        assert_eq!(io.cursor, 0); // peeks do not consume
    }

    #[test]
    fn unknown_variable_is_error() {
        let body = vec![Stmt::Push(Expr::var("ghost"))];
        let mut io = VecIo::default();
        let mut locals = HashMap::new();
        assert!(exec_body(&body, &mut locals, &bindings(&[]), &mut io).is_err());
    }

    #[test]
    fn state_store_round_trips() {
        let body = body_of(
            r#"pipeline P() {
                actor A(pop 1, push 1) {
                    state buf[4];
                    buf[2] = pop();
                    push(buf[2]);
                }
            }"#,
        );
        let mut io = VecIo {
            input: vec![9.0],
            ..Default::default()
        };
        io.state.insert("buf".into(), vec![0.0; 4]);
        let mut locals = HashMap::new();
        exec_body(&body, &mut locals, &bindings(&[]), &mut io).unwrap();
        assert_eq!(io.state["buf"][2], 9.0);
        assert_eq!(io.output, vec![9.0]);
    }
}
