//! Runtime kernel management (§3 of the paper).
//!
//! At execution time the kernel-management unit selects the properly
//! optimized variant for the actual program input, sets each kernel's
//! launch parameters (blocks, threads per block, shared-memory size),
//! uploads/restructures host data, launches the plan's kernels in order on
//! the simulated device, and reads back the output. As in the paper, the
//! selection logic itself runs on the host and its cost is hidden under
//! the initial host-to-device transfer, so it does not appear in kernel
//! time.

use std::collections::HashMap;
use std::sync::Arc;

use gpu_sim::{
    try_launch_pooled, BufId, ExecMode, ExecPolicy, FaultInjector, GlobalMem, Kernel, KernelStats,
    LaunchControl, LaunchError, ScratchPool, StatsCache,
};
use perfmodel::{estimate_stats, TimingEstimate};
use streamir::actor::{ActorDef, StateVar};
use streamir::error::{Error, Result};
use streamir::ir::{Expr, Stmt};
use streamir::rates::Bindings;
use streamir::schedule::rate_match;
use streamir::value::Value;

use crate::analysis::opcount::eval_bound;
use crate::analysis::reduction::ReductionPattern;
use crate::bytecode;
use crate::exec_ir::{exec_body, VecIo};
use crate::layout::{restructure, unrestructure, Layout};
use crate::opt::segmentation::ReduceChoice;
use crate::plan::{CompiledProgram, SegChoice, SegKind, SegPrograms, UnitsPerFiring};
use crate::templates::{
    two_kernel_reduce, FusedReduce, MapKernel, ReduceSpec, SingleKernelReduce, StencilKernel,
};

/// Host data bound to one actor's state array before execution.
#[derive(Debug, Clone)]
pub struct StateBinding {
    pub actor: String,
    pub array: String,
    pub data: Vec<f32>,
}

impl StateBinding {
    /// Convenience constructor.
    pub fn new(actor: &str, array: &str, data: Vec<f32>) -> StateBinding {
        StateBinding {
            actor: actor.to_string(),
            array: array.to_string(),
            data,
        }
    }
}

/// Statistics and timing of one launched kernel.
#[derive(Debug, Clone)]
pub struct KernelReport {
    pub name: Arc<str>,
    pub stats: KernelStats,
    pub estimate: TimingEstimate,
    /// True when the stats were served from a [`crate::LaunchCache`] (or
    /// any other [`StatsCache`]) instead of being re-simulated.
    pub cached: bool,
}

/// How failed launches are retried before the runtime gives up on a
/// kernel: attempt budget, bounded exponential backoff between attempts,
/// and an optional per-launch deadline.
///
/// The default policy changes nothing about fault-free runs: retries only
/// trigger on a failed launch, and `deadline_us == 0` disables the
/// watchdog entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per launch (first try included); at least 1.
    pub max_attempts: u32,
    /// Backoff before retry `k` is `base << (k-1)`, capped below.
    pub backoff_base_us: u64,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap_us: u64,
    /// Wall-clock budget for the whole resilient run; 0 disables the
    /// deadline watchdog. A single in-flight attempt gets this as its
    /// simulated launch deadline, and once the budget has elapsed no
    /// further retries are issued — neither within a launch's attempt
    /// loop nor down the manager's variant-fallback ladder. The first
    /// attempt always runs, so a zero-remaining budget degrades to
    /// one try, not zero.
    pub deadline_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_us: 50,
            backoff_cap_us: 800,
            deadline_us: 0,
        }
    }
}

impl RetryPolicy {
    /// Backoff to sleep before retrying after `failed_attempts` failures.
    pub(crate) fn backoff_us(&self, failed_attempts: u32) -> u64 {
        let shift = failed_attempts.saturating_sub(1).min(16);
        (self.backoff_base_us << shift).min(self.backoff_cap_us)
    }
}

/// Which evaluator executes compiled work bodies inside the kernel
/// templates. The default is the warp-batched SIMT interpreter
/// ([`crate::warp`]); the two slower evaluators are retained as
/// differential oracles, the PR 2–3 pattern: proptests assert all three
/// produce bit-identical outputs and kernel statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalBackend {
    /// Warp-batched bytecode dispatch with lane masks (the fast path).
    #[default]
    Warp,
    /// The scalar bytecode interpreter: one dispatch loop per thread per
    /// firing (the PR 3 engine, now the first-line oracle).
    Scalar,
    /// The AST walker (the original evaluator, the deepest oracle).
    Ast,
}

/// How the runtime executes a program's kernels: the grid-sampling mode
/// and the engine driving the block loop, plus the resilience knobs (fault
/// injector, retry policy).
///
/// The lifetime ties an optional borrowed [`FaultInjector`] to the options
/// value; fault-free callers use `RunOptions<'static>` (what the
/// constructors return) and never see it.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions<'f> {
    /// How much of each grid to execute/record.
    pub mode: ExecMode,
    /// Serial or deterministic-parallel block execution.
    pub policy: ExecPolicy,
    /// Which evaluator runs work bodies (warp-batched, scalar bytecode,
    /// or the AST walker; the latter two are differential oracles).
    pub backend: EvalBackend,
    /// Run this variant of the table instead of the one selected for the
    /// input. The kernel-management unit uses it to launch the variant its
    /// *recalibrated* boundaries picked; tests use it to measure a variant
    /// outside its model-assigned sub-range.
    pub force_variant: Option<usize>,
    /// Fault injector consulted once per launch attempt (chaos testing);
    /// `None` in production runs.
    pub faults: Option<&'f dyn FaultInjector>,
    /// Retry/backoff/deadline policy applied to every launch.
    pub retry: RetryPolicy,
}

impl<'f> RunOptions<'f> {
    /// The given mode on the serial engine (the historical behaviour).
    pub fn serial(mode: ExecMode) -> RunOptions<'static> {
        RunOptions {
            mode,
            policy: ExecPolicy::Serial,
            backend: EvalBackend::Warp,
            force_variant: None,
            faults: None,
            retry: RetryPolicy::default(),
        }
    }

    /// The given mode on the parallel engine sized to the host.
    pub fn parallel(mode: ExecMode) -> RunOptions<'static> {
        RunOptions {
            mode,
            policy: ExecPolicy::auto(),
            backend: EvalBackend::Warp,
            force_variant: None,
            faults: None,
            retry: RetryPolicy::default(),
        }
    }

    /// Select the work-body evaluator.
    pub fn with_backend(mut self, backend: EvalBackend) -> RunOptions<'f> {
        self.backend = backend;
        self
    }

    /// Switch work-body evaluation to the AST reference interpreter
    /// (sugar for [`RunOptions::with_backend`], kept for the PR 3 tests).
    pub fn with_ast_oracle(mut self, on: bool) -> RunOptions<'f> {
        self.backend = if on {
            EvalBackend::Ast
        } else {
            EvalBackend::Warp
        };
        self
    }

    /// Force a specific variant of the table, bypassing input-based
    /// selection.
    pub fn with_variant(mut self, index: usize) -> RunOptions<'f> {
        self.force_variant = Some(index);
        self
    }

    /// Consult this injector on every launch attempt (shortens the
    /// lifetime to the injector's borrow).
    pub fn with_faults<'g>(self, faults: &'g dyn FaultInjector) -> RunOptions<'g>
    where
        'f: 'g,
    {
        RunOptions {
            faults: Some(faults),
            ..self
        }
    }

    /// Replace the retry/backoff/deadline policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> RunOptions<'f> {
        self.retry = retry;
        self
    }
}

impl Default for RunOptions<'static> {
    fn default() -> Self {
        RunOptions::serial(ExecMode::Full)
    }
}

/// The result of running a compiled program on one input.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// The program's output stream.
    pub output: Vec<f32>,
    /// Per-kernel statistics, in launch order.
    pub kernels: Vec<KernelReport>,
    /// Estimated device time (µs), kernels + launch overheads.
    pub time_us: f64,
    /// Host-side time (µs) spent in opaque (non-GPU) segments.
    pub host_time_us: f64,
    /// Which variant of the table ran.
    pub variant_index: usize,
    /// Kernel launches served from the memoization cache in this run.
    pub cache_hits: u64,
    /// Kernel launches that had to simulate in this run (always equals the
    /// launch count when no cache was supplied).
    pub cache_misses: u64,
    /// Launch attempts re-issued after a failed attempt in this run.
    pub retries: u64,
    /// Launch failures the resilient pipeline observed (each either
    /// retried away or escalated to [`Error::LaunchFailed`]).
    pub faults_observed: u64,
    /// Launch attempts that overran their deadline budget (injected hangs
    /// and genuine overruns).
    pub deadline_overruns: u64,
    /// Kernel-management-unit telemetry, filled in when the run went
    /// through a [`crate::KernelManager`]; `None` for direct runs.
    pub telemetry: Option<crate::telemetry::TelemetrySnapshot>,
}

impl ExecutionReport {
    /// Total floating-point operations counted across kernels.
    pub fn flops(&self) -> f64 {
        self.kernels.iter().map(|k| k.stats.totals.flops).sum()
    }

    /// Achieved GFLOPS under the estimated time.
    pub fn gflops(&self) -> f64 {
        let t = self.time_us + self.host_time_us;
        if t > 0.0 {
            self.flops() / (t * 1e3)
        } else {
            0.0
        }
    }
}

impl CompiledProgram {
    /// Run the program on `input` at axis value `x`, with full (exact)
    /// execution and no state arrays.
    ///
    /// # Errors
    ///
    /// See [`CompiledProgram::run_with`].
    pub fn run(&self, x: i64, input: &[f32]) -> Result<ExecutionReport> {
        self.run_with(x, input, &[], ExecMode::Full)
    }

    /// Run with state bindings and an execution mode.
    ///
    /// [`ExecMode::SampledExec`] executes a block subset — outputs are
    /// partial but the statistics (and therefore timing) still describe
    /// the whole launch; use it for timing-only sweeps.
    ///
    /// Uses the serial engine and no memoization; see
    /// [`CompiledProgram::run_opts`] for the parallel engine and the
    /// launch-stats cache.
    ///
    /// # Errors
    ///
    /// Returns scheduling errors, [`Error::InsufficientInput`], and
    /// [`Error::Runtime`] for missing state bindings.
    pub fn run_with(
        &self,
        x: i64,
        input: &[f32],
        state: &[StateBinding],
        mode: ExecMode,
    ) -> Result<ExecutionReport> {
        self.run_opts(x, input, state, RunOptions::serial(mode), None)
    }

    /// Run with explicit execution options and an optional launch-stats
    /// memoization cache.
    ///
    /// The engine choice ([`RunOptions::policy`]) never changes results:
    /// parallel execution merges per-worker counters in block-index order
    /// and is bit-for-bit identical to serial. Supplying a `cache` *does*
    /// change functional output on hits — memoized launches are not
    /// re-executed, so device buffers keep their prior contents. Only pass
    /// a cache in timing-only sweeps over data-independent workloads
    /// (where [`ExecMode::SampledExec`] is already discarding outputs);
    /// hit/miss counts are reported in the [`ExecutionReport`].
    ///
    /// # Errors
    ///
    /// Same as [`CompiledProgram::run_with`].
    pub fn run_opts(
        &self,
        x: i64,
        input: &[f32],
        state: &[StateBinding],
        opts: RunOptions<'_>,
        cache: Option<&dyn StatsCache>,
    ) -> Result<ExecutionReport> {
        let env = LaunchEnv {
            device: &self.device,
            opts,
            cache,
            // Fingerprint of this run's input dimensions: the axis value
            // and the stream length. Together with the kernel name and
            // launch geometry this pins the statistics of a
            // data-independent launch.
            dims: (x as u64, input.len() as u64),
            hits: std::cell::Cell::new(0),
            misses: std::cell::Cell::new(0),
            retries: std::cell::Cell::new(0),
            faults_observed: std::cell::Cell::new(0),
            deadline_overruns: std::cell::Cell::new(0),
            scratch: ScratchPool::new(),
        };
        let (variant_index, variant) = match opts.force_variant {
            Some(idx) => {
                // Forcing bypasses selection, not the input contract: an
                // axis value outside the compiled range is a typed error
                // (the unforced path clamps because selection alone moves;
                // here the caller named a specific (variant, x) pair, so
                // silently running a different point would falsify the
                // measurement they asked for).
                let (lo, hi) = self.axis_range();
                if x < lo || x > hi {
                    return Err(Error::InputOutOfRange { x, lo, hi });
                }
                let variant = self.variants.get(idx).ok_or_else(|| {
                    Error::Runtime(format!(
                        "forced variant {idx} out of bounds (table has {})",
                        self.variants.len()
                    ))
                })?;
                (idx, variant)
            }
            None => self.try_variant_for(x.clamp(self.axis_range().0, self.axis_range().1))?,
        };
        let choices = variant.choices.clone();
        let binds = self.axis.bind(x);
        let fg = self.program.flatten()?;
        let sched = rate_match(&fg, &binds)?;
        if sched.steady_input == 0 {
            return Err(Error::RateMismatch("program consumes no input".into()));
        }
        let iterations = input.len() as u64 / sched.steady_input;
        if iterations == 0 {
            return Err(Error::InsufficientInput {
                needed: sched.steady_input as usize,
                got: input.len(),
            });
        }

        let mut mem = GlobalMem::new();
        // Upload state arrays once, in binding order. Segments resolve
        // their arrays positionally against this dense table — no per-run
        // map and no string clones on the resolution path.
        let state_bufs: Vec<BufId> = state.iter().map(|sb| mem.alloc_from(&sb.data)).collect();

        let mut kernels: Vec<KernelReport> = Vec::new();
        let mut host_time_us = 0.0f64;
        // The current stream: either still on the host (before the first
        // GPU segment) or a device buffer.
        let mut cur_host: Option<Vec<f32>> = Some(input.to_vec());
        let mut cur_buf: Option<BufId> = None;
        let mut cur_layout = Layout::RowMajor;

        let resolve_state = |actor: &ActorDef| -> Result<Vec<(String, BufId)>> {
            let mut out = Vec::new();
            for sv in &actor.state {
                if let StateVar::Array { name, .. } = sv {
                    let buf = state
                        .iter()
                        .position(|sb| sb.actor == actor.name && sb.array == *name)
                        .map(|p| state_bufs[p])
                        .ok_or_else(|| {
                            Error::Runtime(format!("state array {}::{name} not bound", actor.name))
                        })?;
                    out.push((name.clone(), buf));
                }
            }
            Ok(out)
        };

        for (i, seg) in self.segments.iter().enumerate() {
            let reps = sched.reps(seg.node).max(1) * iterations;
            let want_in_layout = self.edge_layouts[i];
            let choice = &choices[i];

            match (&seg.kind, choice) {
                (SegKind::Unit(u), SegChoice::Map { coarsen }) => {
                    let upf = match &u.units_per_firing {
                        UnitsPerFiring::One => 1i64,
                        UnitsPerFiring::Loop(e) => eval_bound(e, &binds)
                            .ok_or_else(|| Error::Runtime("unbound loop bound".into()))?,
                    }
                    .max(1) as usize;
                    let units = reps as usize * upf;
                    let window = match &u.window_pop {
                        Some(w) => Some(w.eval(&binds)?.max(0) as usize),
                        None => None,
                    };
                    let in_items = match window {
                        Some(w) => reps as usize * w,
                        None => units * u.pops_per_unit,
                    };
                    let out_items = units * u.pushes_per_unit;
                    let in_buf = ensure_device(
                        &mut mem,
                        &mut cur_host,
                        &mut cur_buf,
                        &mut cur_layout,
                        if window.is_some() {
                            Layout::RowMajor
                        } else {
                            want_in_layout
                        },
                        u.pops_per_unit,
                        in_items,
                    )?;
                    let out_buf = mem.alloc(out_items);
                    let SegPrograms::Unit(prog) = &self.programs[i] else {
                        return Err(Error::Runtime("segment/program mismatch".into()));
                    };
                    let mut k = MapKernel::precompiled(
                        &seg.label,
                        u.body.clone(),
                        binds.clone(),
                        u.loop_var.clone(),
                        units,
                        u.pops_per_unit,
                        u.pushes_per_unit,
                        in_buf,
                        out_buf,
                        prog.clone(),
                    )
                    .with_layouts(cur_layout, self.edge_layouts[i + 1])
                    .with_coarsen(*coarsen)
                    .with_frames(self.frames.clone())
                    .with_warp_frames(self.warp_frames.clone());
                    k.units_per_firing = upf;
                    k.window_pop = window;
                    k.backend = opts.backend;
                    for actor_name in &u.state_actors {
                        if let Some(actor) = self.program.actor(actor_name) {
                            for (n, b) in resolve_state(actor)? {
                                k = k.with_state(&n, b);
                            }
                        }
                    }
                    run_kernel(&env, &mut mem, &k, &mut kernels)?;
                    cur_buf = Some(out_buf);
                    cur_layout = self.edge_layouts[i + 1];
                }
                (SegKind::Reduce(r), SegChoice::Reduce { choice }) => {
                    let n_arrays = reps as usize;
                    let n_elements = eval_bound(&r.pattern.bound, &binds)
                        .ok_or_else(|| Error::Runtime("unbound reduction bound".into()))?
                        .max(1) as usize;
                    let ppe = r.pattern.pops_per_elem.max(1);
                    let in_items = n_arrays * n_elements * ppe;
                    let out_buf_len = n_arrays;
                    let SegPrograms::Reduce { elem, post, serial } = &self.programs[i] else {
                        return Err(Error::Runtime("segment/program mismatch".into()));
                    };
                    let mut spec = ReduceSpec::from_pattern(&r.pattern, binds.clone());
                    spec.exec.precompiled = Some((elem.clone(), post.clone()));
                    spec.exec.frames = self.frames.clone();
                    spec.exec.warp_frames = self.warp_frames.clone();
                    spec.exec.backend = opts.backend;
                    if let Some(actor) = self.program.actor(&r.actor) {
                        spec.state.extend(resolve_state(actor)?);
                    }
                    match choice {
                        ReduceChoice::ThreadPerArray { block_dim } => {
                            // Lower as a per-array serial map with the
                            // array-major (transposed) layout.
                            let in_buf = ensure_device(
                                &mut mem,
                                &mut cur_host,
                                &mut cur_buf,
                                &mut cur_layout,
                                Layout::Transposed,
                                n_elements * ppe,
                                in_items,
                            )?;
                            let out_buf = mem.alloc(out_buf_len);
                            let body = pattern_to_serial_body(&r.pattern);
                            let mut k = MapKernel::precompiled(
                                &format!("{}_tpa", seg.label),
                                body,
                                binds.clone(),
                                None,
                                n_arrays,
                                n_elements * ppe,
                                1,
                                in_buf,
                                out_buf,
                                serial.clone(),
                            )
                            .with_layouts(cur_layout, Layout::RowMajor)
                            .with_block_dim(*block_dim)
                            .with_frames(self.frames.clone())
                            .with_warp_frames(self.warp_frames.clone());
                            k.backend = opts.backend;
                            for (n, b) in &spec.state {
                                k = k.with_state(n, *b);
                            }
                            run_kernel(&env, &mut mem, &k, &mut kernels)?;
                            cur_buf = Some(out_buf);
                            cur_layout = Layout::RowMajor;
                        }
                        ReduceChoice::OneKernel {
                            arrays_per_block,
                            block_dim,
                        } => {
                            let in_buf = ensure_device(
                                &mut mem,
                                &mut cur_host,
                                &mut cur_buf,
                                &mut cur_layout,
                                want_in_layout,
                                ppe,
                                in_items,
                            )?;
                            let out_buf = mem.alloc(out_buf_len);
                            let k = SingleKernelReduce {
                                spec,
                                name: seg.label.clone(),
                                n_arrays,
                                n_elements,
                                arrays_per_block: *arrays_per_block,
                                block_dim: *block_dim,
                                in_buf,
                                in_layout: cur_layout,
                                out_buf,
                                apply_post: true,
                                out_stride: 1,
                                out_offset: 0,
                            };
                            run_kernel(&env, &mut mem, &k, &mut kernels)?;
                            cur_buf = Some(out_buf);
                            cur_layout = Layout::RowMajor;
                        }
                        ReduceChoice::TwoKernel { block_dim } => {
                            let initial_blocks = crate::opt::segmentation::pick_initial_blocks(
                                &self.device,
                                n_arrays,
                                n_elements,
                                *block_dim,
                            )
                            .max(2);
                            let in_buf = ensure_device(
                                &mut mem,
                                &mut cur_host,
                                &mut cur_buf,
                                &mut cur_layout,
                                want_in_layout,
                                ppe,
                                in_items,
                            )?;
                            let partials = mem.alloc(n_arrays * initial_blocks);
                            let out_buf = mem.alloc(out_buf_len);
                            let (k1, k2) = two_kernel_reduce(
                                spec,
                                n_arrays,
                                n_elements,
                                initial_blocks,
                                *block_dim,
                                in_buf,
                                cur_layout,
                                partials,
                                out_buf,
                            );
                            run_kernel(&env, &mut mem, &k1, &mut kernels)?;
                            run_kernel(&env, &mut mem, &k2, &mut kernels)?;
                            cur_buf = Some(out_buf);
                            cur_layout = Layout::RowMajor;
                        }
                    }
                }
                (SegKind::Stencil(s), SegChoice::Stencil { tile }) => {
                    if reps != 1 {
                        return Err(Error::Runtime(format!(
                            "stencil segment `{}` must process the whole input in one \
                             firing (got {reps} firings)",
                            seg.label
                        )));
                    }
                    let total = eval_bound(&s.pattern.bound, &binds)
                        .ok_or_else(|| Error::Runtime("unbound stencil bound".into()))?
                        .max(1);
                    let cols = match &s.pattern.width_param {
                        Some(w) => binds.get(w).copied().unwrap_or(total).max(1),
                        None => total,
                    };
                    let rows = (total / cols).max(1);
                    let (hr, hc) = s.pattern.halo();
                    let in_buf = ensure_device(
                        &mut mem,
                        &mut cur_host,
                        &mut cur_buf,
                        &mut cur_layout,
                        Layout::RowMajor,
                        1,
                        total as usize,
                    )?;
                    let out_buf = mem.alloc(total as usize);
                    let SegPrograms::Stencil(prog) = &self.programs[i] else {
                        return Err(Error::Runtime("segment/program mismatch".into()));
                    };
                    let mut k = StencilKernel::precompiled(
                        &seg.label,
                        s.pattern.body.clone(),
                        &s.pattern.loop_var,
                        binds.clone(),
                        rows as usize,
                        cols as usize,
                        tile.0,
                        tile.1,
                        hr as usize,
                        hc as usize,
                        in_buf,
                        out_buf,
                        prog.clone(),
                    )
                    .with_frames(self.frames.clone())
                    .with_warp_frames(self.warp_frames.clone());
                    k.backend = opts.backend;
                    if let Some(actor) = self.program.actor(&s.actor) {
                        for (n, b) in resolve_state(actor)? {
                            k = k.with_state(&n, b);
                        }
                    }
                    run_kernel(&env, &mut mem, &k, &mut kernels)?;
                    cur_buf = Some(out_buf);
                    cur_layout = Layout::RowMajor;
                }
                (SegKind::HFused(h), SegChoice::HFused { fused }) => {
                    let n_arrays = reps as usize;
                    let first = &h.patterns[0];
                    let n_elements = eval_bound(&first.bound, &binds)
                        .ok_or_else(|| Error::Runtime("unbound reduction bound".into()))?
                        .max(1) as usize;
                    let ppe = first.pops_per_elem.max(1);
                    let k_out = h.patterns.len();
                    let in_items = n_arrays * n_elements * ppe;
                    let in_buf = ensure_device(
                        &mut mem,
                        &mut cur_host,
                        &mut cur_buf,
                        &mut cur_layout,
                        want_in_layout,
                        ppe,
                        in_items,
                    )?;
                    let out_buf = mem.alloc(n_arrays * k_out);
                    let SegPrograms::HFused(sib_progs) = &self.programs[i] else {
                        return Err(Error::Runtime("segment/program mismatch".into()));
                    };
                    let mut specs = Vec::new();
                    for ((pat, actor_name), (elem, post)) in
                        h.patterns.iter().zip(&h.actors).zip(sib_progs)
                    {
                        let mut spec = ReduceSpec::from_pattern(pat, binds.clone());
                        spec.exec.precompiled = Some((elem.clone(), post.clone()));
                        spec.exec.frames = self.frames.clone();
                        spec.exec.warp_frames = self.warp_frames.clone();
                        spec.exec.warp_frames = self.warp_frames.clone();
                        spec.exec.backend = opts.backend;
                        if let Some(actor) = self.program.actor(actor_name) {
                            spec.state.extend(resolve_state(actor)?);
                        }
                        specs.push(spec);
                    }
                    if *fused {
                        // Shared memory holds one block_dim-sized segment
                        // per sibling; shrink blocks until they fit.
                        let cap = self.device.shared_words_per_block as usize;
                        let mut block_dim = 256usize;
                        while block_dim > 32 && block_dim * k_out > cap {
                            block_dim /= 2;
                        }
                        let k = FusedReduce {
                            specs,
                            name: seg.label.clone(),
                            n_arrays,
                            n_elements,
                            block_dim: block_dim as u32,
                            in_buf,
                            in_layout: cur_layout,
                            out_buf,
                        };
                        run_kernel(&env, &mut mem, &k, &mut kernels)?;
                    } else {
                        for (s_idx, spec) in specs.into_iter().enumerate() {
                            let k = SingleKernelReduce {
                                spec,
                                name: format!("{}_{s_idx}", seg.label),
                                n_arrays,
                                n_elements,
                                arrays_per_block: 1,
                                block_dim: 256,
                                in_buf,
                                in_layout: cur_layout,
                                out_buf,
                                apply_post: true,
                                out_stride: k_out,
                                out_offset: s_idx,
                            };
                            run_kernel(&env, &mut mem, &k, &mut kernels)?;
                        }
                    }
                    cur_buf = Some(out_buf);
                    cur_layout = Layout::RowMajor;
                }
                (SegKind::MapSiblings(m), SegChoice::MapSiblings) => {
                    let units = reps as usize;
                    let in_items = units * m.pops_per_unit;
                    let out_items = units * m.total_push;
                    let in_buf = ensure_device(
                        &mut mem,
                        &mut cur_host,
                        &mut cur_buf,
                        &mut cur_layout,
                        want_in_layout,
                        m.pops_per_unit,
                        in_items,
                    )?;
                    let out_buf = mem.alloc(out_items);
                    let SegPrograms::MapSiblings(branch_progs) = &self.programs[i] else {
                        return Err(Error::Runtime("segment/program mismatch".into()));
                    };
                    let mut offset = 0usize;
                    for ((body, pushes, actor_name), prog) in m.branches.iter().zip(branch_progs) {
                        let mut k = MapKernel::precompiled(
                            &format!("{}_{actor_name}", seg.label),
                            body.clone(),
                            binds.clone(),
                            None,
                            units,
                            m.pops_per_unit,
                            *pushes,
                            in_buf,
                            out_buf,
                            prog.clone(),
                        )
                        .with_layouts(cur_layout, Layout::RowMajor)
                        .with_frames(self.frames.clone())
                        .with_warp_frames(self.warp_frames.clone());
                        k.backend = opts.backend;
                        k.out_group = Some((m.total_push, offset));
                        if let Some(actor) = self.program.actor(actor_name) {
                            for (n, b) in resolve_state(actor)? {
                                k = k.with_state(&n, b);
                            }
                        }
                        run_kernel(&env, &mut mem, &k, &mut kernels)?;
                        offset += pushes;
                    }
                    cur_buf = Some(out_buf);
                    cur_layout = Layout::RowMajor;
                }
                (SegKind::Opaque(actor_idx), SegChoice::Opaque) => {
                    // Host execution: download, interpret, keep on host.
                    let actor = &self.program.actors[*actor_idx];
                    let data = match (&cur_host, cur_buf) {
                        (Some(h), _) => h.clone(),
                        (None, Some(buf)) => mem.read(buf).to_vec(),
                        _ => unreachable!("stream is somewhere"),
                    };
                    let SegPrograms::Opaque(prog) = &self.programs[i] else {
                        return Err(Error::Runtime("segment/program mismatch".into()));
                    };
                    // Host execution has no warp machinery; anything but
                    // the AST oracle runs the scalar bytecode.
                    let prog = if opts.backend == EvalBackend::Ast {
                        None
                    } else {
                        prog.as_deref()
                    };
                    let (out, us) = run_opaque(actor, reps as usize, &data, &binds, state, prog)?;
                    host_time_us += us;
                    cur_host = Some(out);
                    cur_buf = None;
                    cur_layout = Layout::RowMajor;
                }
                (kind, choice) => {
                    return Err(Error::Runtime(format!(
                        "segment/choice mismatch: {kind:?} with {choice:?}"
                    )));
                }
            }
        }

        // Read back the output.
        let mut output = match (cur_host, cur_buf) {
            (Some(h), _) => h,
            (None, Some(buf)) => mem.read(buf).to_vec(),
            _ => Vec::new(),
        };
        if cur_layout == Layout::Transposed {
            // The final push window of the last unit segment.
            if let Some(SegKind::Unit(u)) = self.segments.last().map(|s| &s.kind) {
                if u.pushes_per_unit > 1 {
                    output = unrestructure(&output, u.pushes_per_unit);
                }
            }
        }

        let time_us = kernels.iter().map(|k| k.estimate.time_us).sum();
        Ok(ExecutionReport {
            output,
            kernels,
            time_us,
            host_time_us,
            variant_index,
            cache_hits: env.hits.get(),
            cache_misses: env.misses.get(),
            retries: env.retries.get(),
            faults_observed: env.faults_observed.get(),
            deadline_overruns: env.deadline_overruns.get(),
            telemetry: None,
        })
    }
}

/// Ensure the stream lives in device memory with the wanted layout;
/// restructuring host data is free (done at generation time, §4.1.1).
fn ensure_device(
    mem: &mut GlobalMem,
    cur_host: &mut Option<Vec<f32>>,
    cur_buf: &mut Option<BufId>,
    cur_layout: &mut Layout,
    want: Layout,
    window: usize,
    expect_items: usize,
) -> Result<BufId> {
    if let Some(host) = cur_host.take() {
        if host.len() < expect_items {
            return Err(Error::InsufficientInput {
                needed: expect_items,
                got: host.len(),
            });
        }
        let host = &host[..expect_items];
        let data = if want == Layout::Transposed && window > 1 {
            restructure(host, window)
        } else {
            host.to_vec()
        };
        let buf = mem.alloc_from(&data);
        *cur_buf = Some(buf);
        *cur_layout = if window > 1 { want } else { Layout::RowMajor };
        return Ok(buf);
    }
    // Device-resident data keeps whatever layout its producer wrote; the
    // planner guarantees producer/consumer agreement. A stream that is on
    // neither side is a planner bug, surfaced as a typed error rather than
    // a panic so callers in long-running services keep control.
    cur_buf.ok_or_else(|| Error::Runtime("stream is neither on host nor device".into()))
}

/// Per-run launch context threaded through [`run_kernel`]: the device, the
/// engine options, the optional memoization cache, this run's dimension
/// fingerprint for cache keys, the resilience counters, and the scratch
/// pool that recycles warp accounting arenas across the run's kernel
/// launches.
struct LaunchEnv<'a> {
    device: &'a gpu_sim::DeviceSpec,
    opts: RunOptions<'a>,
    cache: Option<&'a dyn StatsCache>,
    dims: (u64, u64),
    hits: std::cell::Cell<u64>,
    misses: std::cell::Cell<u64>,
    retries: std::cell::Cell<u64>,
    faults_observed: std::cell::Cell<u64>,
    deadline_overruns: std::cell::Cell<u64>,
    scratch: ScratchPool,
}

/// Launch one kernel under the resilient pipeline: every attempt runs
/// fallibly (panic-isolated, deadline-budgeted, injector-consulted); a
/// failed attempt is retried with bounded exponential backoff up to
/// [`RetryPolicy::max_attempts`], after which the launch escalates as
/// [`Error::LaunchFailed`]. Retrying is sound because kernels never write
/// their input buffers: a partially-executed grid recomputes byte-identical
/// output on the next attempt.
fn run_kernel(
    env: &LaunchEnv<'_>,
    mem: &mut GlobalMem,
    kernel: &(dyn Kernel + Sync),
    out: &mut Vec<KernelReport>,
) -> Result<()> {
    let retry = env.opts.retry;
    let started = std::time::Instant::now();
    let ctl = LaunchControl {
        faults: env.opts.faults,
        deadline: (retry.deadline_us > 0)
            .then(|| std::time::Duration::from_micros(retry.deadline_us)),
    };
    let mut attempt = 0u32;
    let (stats, cached) = loop {
        attempt += 1;
        let result = match env.cache {
            Some(cache) => cache.launch_cached(
                env.device,
                mem,
                kernel,
                env.opts.mode,
                env.opts.policy,
                env.dims,
                &env.scratch,
                ctl,
            ),
            None => try_launch_pooled(
                env.device,
                mem,
                kernel,
                env.opts.mode,
                env.opts.policy,
                &env.scratch,
                ctl,
            )
            .map(|stats| (stats, false)),
        };
        match result {
            Ok(r) => break r,
            Err(e) => {
                env.faults_observed.set(env.faults_observed.get() + 1);
                if matches!(e, LaunchError::DeadlineExceeded { .. }) {
                    env.deadline_overruns.set(env.deadline_overruns.get() + 1);
                }
                // The wall-clock budget bounds retrying, not the first
                // try: once it is spent, escalate with the last cause.
                let elapsed_us = started.elapsed().as_micros() as u64;
                let over_budget = retry.deadline_us > 0 && elapsed_us >= retry.deadline_us;
                if over_budget {
                    env.deadline_overruns.set(env.deadline_overruns.get() + 1);
                }
                if attempt >= retry.max_attempts.max(1) || over_budget {
                    let cause = if over_budget {
                        format!("{e} (retry budget {}us exhausted)", retry.deadline_us)
                    } else {
                        e.to_string()
                    };
                    return Err(Error::LaunchFailed {
                        kernel: kernel.name().to_string(),
                        attempts: attempt,
                        cause,
                    });
                }
                env.retries.set(env.retries.get() + 1);
                let mut backoff = retry.backoff_us(attempt);
                if retry.deadline_us > 0 {
                    // Never sleep past the budget's expiry.
                    backoff = backoff.min(retry.deadline_us.saturating_sub(elapsed_us));
                }
                if backoff > 0 {
                    std::thread::sleep(std::time::Duration::from_micros(backoff));
                }
            }
        }
    };
    if cached {
        env.hits.set(env.hits.get() + 1);
    } else {
        env.misses.set(env.misses.get() + 1);
    }
    let estimate = estimate_stats(env.device, &stats);
    out.push(KernelReport {
        name: stats.name.clone(),
        stats,
        estimate,
        cached,
    });
    Ok(())
}

/// Rebuild a serial reduction body from its pattern (used by the
/// thread-per-array lowering and the CUDA printer).
pub(crate) fn pattern_to_serial_body(p: &ReductionPattern) -> Vec<Stmt> {
    let combine = match p.op {
        crate::analysis::CombineOp::Add => Expr::add(Expr::var(&p.acc), p.elem.clone()),
        crate::analysis::CombineOp::Mul => Expr::mul(Expr::var(&p.acc), p.elem.clone()),
        crate::analysis::CombineOp::Max => Expr::Call {
            intrinsic: streamir::ir::Intrinsic::Max,
            args: vec![Expr::var(&p.acc), p.elem.clone()],
        },
        crate::analysis::CombineOp::Min => Expr::Call {
            intrinsic: streamir::ir::Intrinsic::Min,
            args: vec![Expr::var(&p.acc), p.elem.clone()],
        },
    };
    vec![
        Stmt::Assign {
            name: p.acc.clone(),
            expr: Expr::Float(p.init),
        },
        Stmt::For {
            var: p.loop_var.clone(),
            start: Expr::Int(0),
            end: p.bound.clone(),
            body: vec![Stmt::Assign {
                name: p.acc.clone(),
                expr: combine,
            }],
        },
        Stmt::Push(p.post.clone()),
    ]
}

/// Interpret an opaque actor on the host for `firings` firings.
///
/// When the plan managed to lower the body to bytecode, `prog` is the
/// compiled program and the hot loop runs on a single reused [`Frame`];
/// scalar state lives in its slot and is copied back into the prototype
/// after each firing so it persists. Otherwise fall back to AST walking.
fn run_opaque(
    actor: &ActorDef,
    firings: usize,
    input: &[f32],
    binds: &Bindings,
    state: &[StateBinding],
    prog: Option<&bytecode::Program>,
) -> Result<(Vec<f32>, f64)> {
    let pop = actor.work.pop.eval(binds)?.max(0) as usize;
    let needed = firings * pop;
    if input.len() < needed {
        return Err(Error::InsufficientInput {
            needed,
            got: input.len(),
        });
    }
    let mut io = VecIo::default();
    for sv in &actor.state {
        if let StateVar::Array { name, .. } = sv {
            let data = state
                .iter()
                .find(|s| s.actor == actor.name && s.array == *name)
                .map(|s| s.data.clone())
                .ok_or_else(|| {
                    Error::Runtime(format!("state array {}::{name} not bound", actor.name))
                })?;
            io.state.insert(name.clone(), data);
        }
    }
    let counts = crate::analysis::opcount::body_counts(&actor.work.body, binds);
    let mut output = Vec::new();

    if let Some(prog) = prog {
        // Bytecode path: one frame reused across firings; scalar state is
        // seeded into its preset slot and written back into the prototype
        // after each firing.
        let mut proto = prog.bind(binds)?;
        let mut scalar_slots = Vec::new();
        for sv in &actor.state {
            if let StateVar::Scalar { name, init } = sv {
                let slot = prog.slot_of(name).ok_or_else(|| {
                    Error::Runtime(format!("scalar state {name} missing from program"))
                })?;
                proto[slot as usize] = Value::F32(*init);
                scalar_slots.push(slot);
            }
        }
        let mut frame = bytecode::Frame::default();
        frame.fit(prog);
        for f in 0..firings {
            io.input = input[f * pop..(f + 1) * pop].to_vec();
            io.cursor = 0;
            io.output.clear();
            frame.reset(&proto);
            bytecode::eval(prog, &mut frame, &mut io);
            for &slot in &scalar_slots {
                proto[slot as usize] = frame.get(slot);
            }
            output.extend(io.output.iter().copied());
        }
    } else {
        let mut scalars: HashMap<String, Value> = actor
            .state
            .iter()
            .filter_map(|sv| match sv {
                StateVar::Scalar { name, init } => Some((name.clone(), Value::F32(*init))),
                _ => None,
            })
            .collect();
        for f in 0..firings {
            io.input = input[f * pop..(f + 1) * pop].to_vec();
            io.cursor = 0;
            io.output.clear();
            let mut locals: HashMap<String, Value> = scalars.clone();
            exec_body(&actor.work.body, &mut locals, binds, &mut io)?;
            // Persist scalar state.
            for (name, v) in &locals {
                if scalars.contains_key(name) {
                    scalars.insert(name.clone(), *v);
                }
            }
            output.extend(io.output.iter().copied());
        }
    }
    let host_us = crate::cost::host_cost_us(firings, counts.compute);
    Ok((output, host_us))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{compile, compile_with_options, CompileOptions, InputAxis};
    use gpu_sim::{DeviceSpec, LaunchCache};
    use streamir::interp::Interpreter;
    use streamir::parse::parse_program;

    fn device() -> DeviceSpec {
        DeviceSpec::tesla_c2050()
    }

    #[test]
    fn compiled_sum_matches_interpreter_across_variants() {
        let src = r#"pipeline P(N) {
            actor Sum(pop N, push 1) {
                acc = 0.0;
                for i in 0..N { acc = acc + pop(); }
                push(acc);
            }
        }"#;
        let p = parse_program(src).unwrap();
        let axis = InputAxis::total_size("N", 64, 1 << 20);
        let compiled = compile(&p, &device(), &axis).unwrap();
        for n in [64usize, 1024, 65536] {
            let input: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
            let report = compiled.run(n as i64, &input).unwrap();
            let expected: f32 = input.iter().sum();
            assert!(
                (report.output[0] - expected).abs() <= 1e-3 * expected.max(1.0),
                "n={n}: {} vs {expected}",
                report.output[0]
            );
            assert!(report.time_us > 0.0);
        }
    }

    #[test]
    fn different_sizes_select_different_variants() {
        let src = r#"pipeline P(N) {
            actor Sum(pop N, push 1) {
                acc = 0.0;
                for i in 0..N { acc = acc + pop(); }
                push(acc);
            }
        }"#;
        let p = parse_program(src).unwrap();
        let axis = InputAxis::total_size("N", 64, 1 << 22);
        let compiled = compile(&p, &device(), &axis).unwrap();
        let small = compiled.run(64, &vec![1.0; 64]).unwrap();
        let large = compiled
            .run_with(
                1 << 20,
                &vec![1.0; 1 << 20],
                &[],
                ExecMode::SampledStats(64),
            )
            .unwrap();
        assert_ne!(small.variant_index, large.variant_index);
    }

    #[test]
    fn fused_map_chain_runs_correctly() {
        let src = r#"pipeline P(N) {
            actor Scale(pop 1, push 1) { push(pop() * 2.0); }
            actor Offset(pop 1, push 1) { push(pop() + 1.0); }
        }"#;
        let p = parse_program(src).unwrap();
        let axis = InputAxis::total_size("N", 64, 1 << 16);
        let compiled = compile(&p, &device(), &axis).unwrap();
        let input: Vec<f32> = (0..1024).map(|i| i as f32).collect();
        let report = compiled.run(1024, &input).unwrap();
        let expected: Vec<f32> = input.iter().map(|x| x * 2.0 + 1.0).collect();
        assert_eq!(report.output, expected);
        // Fused: exactly one kernel.
        assert_eq!(report.kernels.len(), 1);
    }

    #[test]
    fn unfused_chain_launches_two_kernels() {
        let src = r#"pipeline P(N) {
            actor Scale(pop 1, push 1) { push(pop() * 2.0); }
            actor Offset(pop 1, push 1) { push(pop() + 1.0); }
        }"#;
        let p = parse_program(src).unwrap();
        let axis = InputAxis::total_size("N", 64, 1 << 16);
        let compiled = compile_with_options(
            &p,
            &device(),
            &axis,
            CompileOptions {
                integration: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let input: Vec<f32> = (0..256).map(|i| i as f32).collect();
        let report = compiled.run(256, &input).unwrap();
        assert_eq!(report.kernels.len(), 2);
        let expected: Vec<f32> = input.iter().map(|x| x * 2.0 + 1.0).collect();
        assert_eq!(report.output, expected);
    }

    #[test]
    fn splitjoin_fused_and_unfused_agree() {
        let src = r#"pipeline P(N) {
            splitjoin {
                split duplicate;
                actor MaxA(pop N, push 1) {
                    m = -100000.0;
                    for i in 0..N { m = max(m, pop()); }
                    push(m);
                }
                actor SumA(pop N, push 1) {
                    s = 0.0;
                    for i in 0..N { s = s + pop(); }
                    push(s);
                }
                join roundrobin(1, 1);
            }
        }"#;
        let p = parse_program(src).unwrap();
        let axis = InputAxis::total_size("N", 256, 1 << 16);
        let input: Vec<f32> = (0..4096).map(|i| ((i * 13) % 100) as f32).collect();
        let mut it = Interpreter::new(&p);
        it.bind_param("N", 4096);
        let expected = it.run(&input).unwrap();

        let fused = compile(&p, &device(), &axis).unwrap();
        let rf = fused.run(4096, &input).unwrap();
        assert_eq!(rf.kernels.len(), 1);
        assert_eq!(rf.output.len(), 2);
        assert!((rf.output[0] - expected[0]).abs() < 1e-2);
        assert!((rf.output[1] - expected[1]).abs() < 1e-1);

        let unfused = compile_with_options(
            &p,
            &device(),
            &axis,
            CompileOptions {
                integration: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let ru = unfused.run(4096, &input).unwrap();
        assert_eq!(ru.kernels.len(), 2);
        assert!((ru.output[0] - expected[0]).abs() < 1e-2);
        assert!((ru.output[1] - expected[1]).abs() < 1e-1);
    }

    #[test]
    fn map_siblings_fused_and_unfused_agree_with_interpreter() {
        let src = r#"pipeline P(N) {
            splitjoin {
                split duplicate;
                actor Twice(pop 2, push 1) { a = pop(); b = pop(); push(a + b); }
                actor Diff(pop 2, push 2) { a = pop(); b = pop(); push(a - b); push(b - a); }
                join roundrobin(1, 2);
            }
        }"#;
        let p = streamir::parse::parse_program(src).unwrap();
        let input: Vec<f32> = (0..512).map(|i| ((i * 7) % 23) as f32).collect();
        let golden = Interpreter::new(&p).run(&input).unwrap();
        let axis = InputAxis::total_size("N", 16, 4096);

        let fused = compile(&p, &device(), &axis).unwrap();
        let rf = fused.run(256, &input).unwrap();
        assert_eq!(rf.kernels.len(), 1, "fused siblings launch one kernel");
        assert_eq!(rf.output, golden);

        let unfused = compile_with_options(
            &p,
            &device(),
            &axis,
            CompileOptions {
                integration: false,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        let ru = unfused.run(256, &input).unwrap();
        assert_eq!(ru.kernels.len(), 2, "unfused siblings launch per actor");
        assert_eq!(ru.output, golden);

        // The fusion claim: one kernel reads the duplicated window once.
        assert!(
            rf.kernels[0].stats.totals.load_transactions
                < ru.kernels
                    .iter()
                    .map(|k| k.stats.totals.load_transactions)
                    .sum::<f64>()
        );
    }

    #[test]
    fn stencil_program_end_to_end() {
        let src = r#"pipeline P(rows, cols) {
            actor S(pop rows*cols, push rows*cols, peek rows*cols) {
                for idx in 0..rows*cols {
                    r = idx / cols;
                    c = idx % cols;
                    if (r > 0 && r < rows - 1 && c > 0 && c < cols - 1) {
                        push(0.25 * (peek(idx - 1) + peek(idx + 1)
                            + peek(idx - cols) + peek(idx + cols)));
                    } else {
                        push(peek(idx));
                    }
                }
            }
        }"#;
        let p = parse_program(src).unwrap();
        // Axis: square grids of side x.
        let axis = InputAxis::new("side", 16, 512, |x| {
            streamir::graph::bindings(&[("rows", x), ("cols", x)])
        });
        let compiled = compile(&p, &device(), &axis).unwrap();
        let side = 48usize;
        let input: Vec<f32> = (0..side * side).map(|i| (i % 11) as f32).collect();
        let mut it = Interpreter::new(&p);
        it.bind_param("rows", side as i64);
        it.bind_param("cols", side as i64);
        let expected = it.run(&input).unwrap();
        let report = compiled.run(side as i64, &input).unwrap();
        assert_eq!(report.output, expected);
    }

    #[test]
    fn tmv_with_state_vector() {
        let src = r#"pipeline TMV(rows, cols) {
            actor RowDot(pop cols, push 1) {
                state x[cols];
                acc = 0.0;
                for i in 0..cols { acc = acc + pop() * x[i]; }
                push(acc);
            }
        }"#;
        let p = parse_program(src).unwrap();
        // Fixed 64K elements, shape swept by row count.
        let total: i64 = 1 << 16;
        let axis = InputAxis::new("rows", 4, total / 4, move |rows| {
            streamir::graph::bindings(&[("rows", rows), ("cols", total / rows)])
        });
        let compiled = compile(&p, &device(), &axis).unwrap();
        for rows in [4usize, 256, 4096] {
            let cols = (total as usize) / rows;
            let a: Vec<f32> = (0..rows * cols).map(|i| ((i * 7) % 13) as f32).collect();
            let x: Vec<f32> = (0..cols).map(|i| ((i + 1) % 5) as f32).collect();
            let state = [StateBinding::new("RowDot", "x", x.clone())];
            let report = compiled
                .run_with(rows as i64, &a, &state, ExecMode::Full)
                .unwrap();
            assert_eq!(report.output.len(), rows);
            for r in 0..rows {
                let expected: f32 = (0..cols).map(|c| a[r * cols + c] * x[c]).sum();
                let got = report.output[r];
                assert!(
                    (got - expected).abs() <= 1e-3 * expected.abs().max(1.0),
                    "rows={rows} r={r}: {got} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn opaque_actor_falls_back_to_host() {
        let src = r#"pipeline P(N) {
            actor Scan(pop N, push N) {
                acc = 0.0;
                for i in 0..N { acc = acc * 0.5 + pop(); push(acc); }
            }
        }"#;
        let p = parse_program(src).unwrap();
        let axis = InputAxis::total_size("N", 16, 4096);
        let compiled = compile(&p, &device(), &axis).unwrap();
        let input: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let mut it = Interpreter::new(&p);
        it.bind_param("N", 64);
        let expected = it.run(&input).unwrap();
        let report = compiled.run(64, &input).unwrap();
        assert_eq!(report.output, expected);
        assert!(report.kernels.is_empty());
        assert!(report.host_time_us > 0.0);
    }

    #[test]
    fn parallel_engine_matches_serial_run() {
        let src = r#"pipeline P(N) {
            actor Sum(pop N, push 1) {
                acc = 0.0;
                for i in 0..N { acc = acc + pop(); }
                push(acc);
            }
        }"#;
        let p = parse_program(src).unwrap();
        let axis = InputAxis::total_size("N", 64, 1 << 20);
        let compiled = compile(&p, &device(), &axis).unwrap();
        let n = 65536usize;
        let input: Vec<f32> = (0..n).map(|i| (i % 11) as f32).collect();
        for mode in [ExecMode::Full, ExecMode::SampledExec(16)] {
            let serial = compiled.run_with(n as i64, &input, &[], mode).unwrap();
            let par = compiled
                .run_opts(n as i64, &input, &[], RunOptions::parallel(mode), None)
                .unwrap();
            assert_eq!(serial.output, par.output, "mode {mode:?}");
            assert_eq!(serial.kernels.len(), par.kernels.len());
            for (s, q) in serial.kernels.iter().zip(&par.kernels) {
                assert_eq!(s.stats, q.stats, "mode {mode:?} kernel {}", s.name);
            }
            assert_eq!(par.cache_hits, 0);
            assert_eq!(par.cache_misses, par.kernels.len() as u64);
        }
    }

    #[test]
    fn launch_cache_memoizes_repeated_runs() {
        let src = r#"pipeline P(N) {
            actor Sum(pop N, push 1) {
                acc = 0.0;
                for i in 0..N { acc = acc + pop(); }
                push(acc);
            }
        }"#;
        let p = parse_program(src).unwrap();
        let axis = InputAxis::total_size("N", 64, 1 << 20);
        let compiled = compile(&p, &device(), &axis).unwrap();
        let n = 4096usize;
        let input: Vec<f32> = (0..n).map(|i| (i % 5) as f32).collect();
        let cache = LaunchCache::new();
        let opts = RunOptions::parallel(ExecMode::SampledExec(8));
        let cold = compiled
            .run_opts(n as i64, &input, &[], opts, Some(&cache))
            .unwrap();
        assert_eq!(cold.cache_hits, 0);
        assert!(cold.cache_misses > 0);
        let warm = compiled
            .run_opts(n as i64, &input, &[], opts, Some(&cache))
            .unwrap();
        assert_eq!(warm.cache_hits, cold.cache_misses);
        assert_eq!(warm.cache_misses, 0);
        assert!(warm.kernels.iter().all(|k| k.cached));
        // Memoized stats are identical, so so is the timing estimate.
        assert_eq!(cold.time_us, warm.time_us);
        for (c, w) in cold.kernels.iter().zip(&warm.kernels) {
            assert_eq!(c.stats, w.stats);
        }
        // A different input size is a different key: misses again.
        let m = 8192usize;
        let input2: Vec<f32> = (0..m).map(|i| (i % 5) as f32).collect();
        let other = compiled
            .run_opts(m as i64, &input2, &[], opts, Some(&cache))
            .unwrap();
        assert_eq!(other.cache_hits, 0);
        assert!(other.cache_misses > 0);
    }

    #[test]
    fn frame_pool_reuses_frames_across_runs() {
        let src = r#"pipeline P(N) {
            actor Scale(pop 1, push 1) { push(pop() * 2.0); }
            actor Sum(pop N, push 1) {
                acc = 0.0;
                for i in 0..N { acc = acc + pop(); }
                push(acc);
            }
        }"#;
        let p = parse_program(src).unwrap();
        let axis = InputAxis::total_size("N", 64, 1 << 16);
        let compiled = compile(&p, &device(), &axis).unwrap();
        let n = 4096usize;
        let input: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
        let first = compiled.run(n as i64, &input).unwrap();
        let warp_created = compiled.warp_frames.created();
        assert!(warp_created > 0, "first run must populate the warp pool");
        assert!(
            compiled.warp_frames.idle() > 0,
            "warp frames return to the pool"
        );
        for _ in 0..3 {
            let again = compiled.run(n as i64, &input).unwrap();
            assert_eq!(again.output, first.output);
        }
        // Steady state: later runs allocate no new frames, only reuse.
        assert_eq!(compiled.warp_frames.created(), warp_created);
        assert!(compiled.warp_frames.reused() > 0);

        // The scalar backend drives the scalar frame pool the same way.
        let opts = RunOptions::serial(ExecMode::Full).with_backend(EvalBackend::Scalar);
        let scalar_first = compiled
            .run_opts(n as i64, &input, &[], opts, None)
            .unwrap();
        assert_eq!(scalar_first.output, first.output);
        let created_once = compiled.frames.created();
        assert!(created_once > 0, "scalar run must populate the pool");
        assert!(compiled.frames.idle() > 0, "frames return to the pool");
        for _ in 0..3 {
            let again = compiled
                .run_opts(n as i64, &input, &[], opts, None)
                .unwrap();
            assert_eq!(again.output, first.output);
        }
        assert_eq!(compiled.frames.created(), created_once);
        assert!(compiled.frames.reused() > 0);
    }

    #[test]
    fn forced_variant_rejects_out_of_range_axis_value() {
        let src = r#"pipeline P(N) {
            actor Sum(pop N, push 1) {
                acc = 0.0;
                for i in 0..N { acc = acc + pop(); }
                push(acc);
            }
        }"#;
        let p = parse_program(src).unwrap();
        let axis = InputAxis::total_size("N", 64, 1 << 16);
        let compiled = compile(&p, &device(), &axis).unwrap();
        for x in [63i64, (1 << 16) + 1] {
            let err = compiled
                .run_opts(
                    x,
                    &vec![1.0; 128],
                    &[],
                    RunOptions::default().with_variant(0),
                    None,
                )
                .unwrap_err();
            assert!(
                matches!(err, Error::InputOutOfRange { x: ex, lo: 64, .. } if ex == x),
                "x={x}: {err:?}"
            );
        }
    }

    #[test]
    fn ast_oracle_matches_bytecode_run() {
        let src = r#"pipeline P(N) {
            actor Scale(pop 1, push 1) { push(pop() * 2.0 + 0.5); }
            actor Sum(pop N, push 1) {
                acc = 0.0;
                for i in 0..N { acc = acc + pop(); }
                push(acc);
            }
        }"#;
        let p = parse_program(src).unwrap();
        let axis = InputAxis::total_size("N", 64, 1 << 16);
        let compiled = compile(&p, &device(), &axis).unwrap();
        let n = 4096usize;
        let input: Vec<f32> = (0..n).map(|i| ((i * 13) % 29) as f32).collect();
        let fast = compiled
            .run_opts(n as i64, &input, &[], RunOptions::default(), None)
            .unwrap();
        let oracle = compiled
            .run_opts(
                n as i64,
                &input,
                &[],
                RunOptions::default().with_ast_oracle(true),
                None,
            )
            .unwrap();
        assert_eq!(fast.output, oracle.output);
        assert_eq!(fast.kernels.len(), oracle.kernels.len());
        for (f, o) in fast.kernels.iter().zip(&oracle.kernels) {
            assert_eq!(f.stats, o.stats, "kernel {}", f.name);
        }
    }
}
