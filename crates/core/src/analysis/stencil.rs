//! Neighboring-access (stencil) pattern detection (§4.1.2 of the paper).
//!
//! A common pattern in simulation workloads computes each point from its
//! neighbors using non-destructive `peek` reads while the main index
//! advances linearly (Figure 4 of the paper). The recognized shape is:
//!
//! ```text
//! for idx in 0..<bound> {
//!     ... locals, edge conditions ...
//!     push(f(peek(idx + o₁), peek(idx + o₂), ...));
//! }
//! ```
//!
//! where each peek offset is *affine in the loop index and the row width*:
//! `idx + dr*width + dc`. The extracted `(dr, dc)` offsets describe the
//! stencil's footprint, from which the neighboring-access optimization
//! sizes its super tiles and halos.

use std::collections::BTreeSet;

use streamir::actor::ActorDef;
use streamir::ir::{BinOp, Expr, Stmt, UnOp};

/// One stencil tap, as a (row delta, column delta) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Offset {
    pub dr: i64,
    pub dc: i64,
}

/// A detected neighboring-access actor.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilPattern {
    /// Loop variable ranging over output elements.
    pub loop_var: String,
    /// Elements per firing (loop bound expression, e.g. `rows*cols`).
    pub bound: Expr,
    /// Name of the row-width parameter, when 2-D (`None` for 1-D stencils
    /// such as separable convolution passes).
    pub width_param: Option<String>,
    /// The stencil footprint (deduplicated, sorted).
    pub offsets: Vec<Offset>,
    /// The full loop body, re-executed per element by the template (so
    /// edge conditions and the combining function keep their exact
    /// semantics).
    pub body: Vec<Stmt>,
}

impl StencilPattern {
    /// Halo radius above/below (rows) and left/right (columns).
    pub fn halo(&self) -> (i64, i64) {
        let dr = self.offsets.iter().map(|o| o.dr.abs()).max().unwrap_or(0);
        let dc = self.offsets.iter().map(|o| o.dc.abs()).max().unwrap_or(0);
        (dr, dc)
    }
}

/// An affine form `idx + dr*width + dc` (coefficient of `idx` must be 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Affine {
    idx: i64,
    width: i64,
    konst: i64,
}

impl Affine {
    fn add(a: Affine, b: Affine) -> Affine {
        Affine {
            idx: a.idx + b.idx,
            width: a.width + b.width,
            konst: a.konst + b.konst,
        }
    }

    fn neg(a: Affine) -> Affine {
        Affine {
            idx: -a.idx,
            width: -a.width,
            konst: -a.konst,
        }
    }
}

/// Match an expression as affine in (`idx`, one width parameter). Returns
/// the affine form and the width parameter name if one occurred.
fn match_affine(expr: &Expr, idx: &str, width_seen: &mut Option<String>) -> Option<Affine> {
    match expr {
        Expr::Int(k) => Some(Affine {
            konst: *k,
            ..Default::default()
        }),
        Expr::Var(v) if v == idx => Some(Affine {
            idx: 1,
            ..Default::default()
        }),
        Expr::Var(v) => {
            // A parameter acting as the row width.
            match width_seen {
                Some(w) if w != v => None,
                _ => {
                    *width_seen = Some(v.clone());
                    Some(Affine {
                        width: 1,
                        ..Default::default()
                    })
                }
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let a = match_affine(lhs, idx, width_seen)?;
            let b = match_affine(rhs, idx, width_seen)?;
            match op {
                BinOp::Add => Some(Affine::add(a, b)),
                BinOp::Sub => Some(Affine::add(a, Affine::neg(b))),
                BinOp::Mul => {
                    // Only constant * width (or constant * constant).
                    if a.idx == 0 && a.width == 0 {
                        Some(Affine {
                            idx: a.konst * b.idx,
                            width: a.konst * b.width,
                            konst: a.konst * b.konst,
                        })
                    } else if b.idx == 0 && b.width == 0 {
                        Some(Affine {
                            idx: b.konst * a.idx,
                            width: b.konst * a.width,
                            konst: b.konst * a.konst,
                        })
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        Expr::Unary {
            op: UnOp::Neg,
            operand,
        } => match_affine(operand, idx, width_seen).map(Affine::neg),
        _ => None,
    }
}

/// Every execution path through `body` must push exactly `n` items for the
/// per-element template to be applicable. Returns the common push count.
fn pushes_per_path(body: &[Stmt]) -> Option<usize> {
    let mut total = 0usize;
    for s in body {
        match s {
            Stmt::Push(_) => total += 1,
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                let t = pushes_per_path(then_body)?;
                let e = pushes_per_path(else_body)?;
                if t != e {
                    return None;
                }
                total += t;
            }
            Stmt::For { body: inner, .. } => {
                // Inner loops must not push (the element loop is the only
                // push producer).
                if pushes_per_path(inner)? != 0 {
                    return None;
                }
            }
            Stmt::Assign { .. } | Stmt::StateStore { .. } => {}
        }
    }
    Some(total)
}

/// Detect the neighboring-access pattern in an actor.
///
/// Conservative: any peek that is not affine in the loop index, a pop
/// inside the element loop, or an unbalanced push disqualifies the actor
/// (it falls back to the baseline lowering).
pub fn detect_stencil(actor: &ActorDef) -> Option<StencilPattern> {
    let body = &actor.work.body;
    if body.len() != 1 {
        return None;
    }
    let Stmt::For {
        var: loop_var,
        start,
        end: bound,
        body: loop_body,
    } = &body[0]
    else {
        return None;
    };
    if !matches!(start, Expr::Int(0)) {
        return None;
    }
    // No pops anywhere in the loop; exactly one push per path.
    let mut pops = 0usize;
    for s in loop_body {
        s.visit_exprs(&mut |e| {
            if matches!(e, Expr::Pop) {
                pops += 1;
            }
        });
    }
    if pops > 0 || pushes_per_path(loop_body)? != 1 {
        return None;
    }
    // Collect peek offsets; all must be affine.
    let mut width_seen: Option<String> = None;
    let mut offsets: BTreeSet<Offset> = BTreeSet::new();
    let mut ok = true;
    for s in loop_body {
        s.visit_exprs(&mut |e| {
            if let Expr::Peek(arg) = e {
                match match_affine(arg, loop_var, &mut width_seen) {
                    Some(a) if a.idx == 1 => {
                        offsets.insert(Offset {
                            dr: a.width,
                            dc: a.konst,
                        });
                    }
                    _ => ok = false,
                }
            }
        });
    }
    if !ok || offsets.is_empty() {
        return None;
    }
    Some(StencilPattern {
        loop_var: loop_var.clone(),
        bound: bound.clone(),
        width_param: width_seen,
        offsets: offsets.into_iter().collect(),
        body: loop_body.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamir::parse::parse_program;

    fn actor_of(src: &str) -> ActorDef {
        parse_program(src).unwrap().actors[0].clone()
    }

    const FIVE_POINT: &str = r#"
        pipeline P(rows, cols) {
            actor Stencil(pop rows*cols, push rows*cols, peek rows*cols) {
                for idx in 0..rows*cols {
                    r = idx / cols;
                    c = idx % cols;
                    if (r > 0 && r < rows - 1 && c > 0 && c < cols - 1) {
                        push(0.2 * (peek(idx) + peek(idx - 1) + peek(idx + 1)
                            + peek(idx - cols) + peek(idx + cols)));
                    } else {
                        push(peek(idx));
                    }
                }
            }
        }
    "#;

    #[test]
    fn detects_five_point_stencil() {
        let a = actor_of(FIVE_POINT);
        let s = detect_stencil(&a).expect("stencil detected");
        assert_eq!(s.width_param.as_deref(), Some("cols"));
        assert_eq!(
            s.offsets,
            vec![
                Offset { dr: -1, dc: 0 },
                Offset { dr: 0, dc: -1 },
                Offset { dr: 0, dc: 0 },
                Offset { dr: 0, dc: 1 },
                Offset { dr: 1, dc: 0 },
            ]
        );
        assert_eq!(s.halo(), (1, 1));
    }

    #[test]
    fn detects_1d_convolution() {
        let a = actor_of(
            r#"
            pipeline P(n) {
                actor Conv(pop n, push n, peek n) {
                    for i in 0..n {
                        if (i >= 2 && i < n - 2) {
                            push(peek(i - 2) + peek(i - 1) + peek(i) + peek(i + 1) + peek(i + 2));
                        } else {
                            push(0.0);
                        }
                    }
                }
            }
            "#,
        );
        let s = detect_stencil(&a).expect("conv detected");
        assert_eq!(s.width_param, None);
        assert_eq!(s.halo(), (0, 2));
        assert_eq!(s.offsets.len(), 5);
    }

    #[test]
    fn popping_loop_rejected() {
        let a = actor_of(
            r#"
            pipeline P(n) {
                actor M(pop n, push n) {
                    for i in 0..n { push(pop() * 2.0); }
                }
            }
            "#,
        );
        assert!(detect_stencil(&a).is_none());
    }

    #[test]
    fn nonaffine_peek_rejected() {
        let a = actor_of(
            r#"
            pipeline P(n) {
                actor M(pop n, push n, peek n) {
                    for i in 0..n { push(peek(i * i)); }
                }
            }
            "#,
        );
        assert!(detect_stencil(&a).is_none());
    }

    #[test]
    fn two_width_params_rejected() {
        let a = actor_of(
            r#"
            pipeline P(a, b) {
                actor M(pop a*b, push a*b, peek a*b) {
                    for i in 0..a*b { push(peek(i + a) + peek(i + b)); }
                }
            }
            "#,
        );
        assert!(detect_stencil(&a).is_none());
    }

    #[test]
    fn unbalanced_pushes_rejected() {
        let a = actor_of(
            r#"
            pipeline P(n) {
                actor M(pop n, push n, peek n) {
                    for i in 0..n {
                        if (i > 0) {
                            push(peek(i));
                            push(peek(i - 1));
                        } else {
                            push(peek(i));
                        }
                    }
                }
            }
            "#,
        );
        assert!(detect_stencil(&a).is_none());
    }

    #[test]
    fn scaled_row_offsets_supported() {
        let a = actor_of(
            r#"
            pipeline P(rows, cols) {
                actor M(pop rows*cols, push rows*cols, peek rows*cols) {
                    for i in 0..rows*cols {
                        push(peek(i) + peek(i + 2 * cols));
                    }
                }
            }
            "#,
        );
        let s = detect_stencil(&a).expect("detected");
        assert!(s.offsets.contains(&Offset { dr: 2, dc: 0 }));
        assert_eq!(s.halo(), (2, 0));
    }
}
