//! Intra-actor parallelization (§4.2.2 of the paper).
//!
//! Actors with large pop/push rates contain loops with high trip counts
//! that a naive lowering would execute in a single thread. This analysis
//! breaks such loops into independent iterations that map to one GPU
//! thread each. Using data-flow analysis it detects cross-iteration
//! dependencies; *linear recurrences* through accumulator variables
//! (`count = count + C`) are eliminated by induction-variable substitution
//! (`count = initial + i*C`), the same transformation parallelizing CPU
//! compilers use to expose loop-level parallelism.

use streamir::actor::{ActorDef, StateVar};
use streamir::ir::{BinOp, Expr, Stmt};
use streamir::rates::Bindings;

use super::opcount::const_value;
use streamir::value::Value;

/// A loop whose iterations have been proven (or made) independent.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelLoop {
    /// Loop variable; each GPU thread receives one value of it.
    pub loop_var: String,
    /// Trip count expression (iterations per firing).
    pub bound: Expr,
    /// Items popped by each iteration.
    pub pops_per_iter: usize,
    /// Items pushed by each iteration.
    pub pushes_per_iter: usize,
    /// Transformed per-iteration body (recurrences substituted away).
    pub body: Vec<Stmt>,
    /// Whether induction-variable substitution was applied (for reports).
    pub ivs_applied: bool,
    /// True when iterations read the firing's input window via `peek`
    /// instead of popping (requires `pops_per_iter == 0`); each thread
    /// then addresses the window of the firing its iteration belongs to.
    pub window_peeks: bool,
}

/// Count pops/pushes per iteration; they must be unconditional and
/// constant per iteration. Returns `None` otherwise.
fn io_per_iteration(body: &[Stmt]) -> Option<(usize, usize)> {
    let mut pops = 0usize;
    let mut pushes = 0usize;
    for s in body {
        match s {
            Stmt::Push(e) => {
                pushes += 1;
                pops += e.count_pops();
            }
            Stmt::Assign { expr, .. } => pops += expr.count_pops(),
            Stmt::StateStore { index, expr, .. } => {
                pops += index.count_pops() + expr.count_pops();
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                // Conditional I/O breaks the fixed per-iteration window.
                if cond.count_pops() > 0 {
                    return None;
                }
                let (tp, tu) = io_per_iteration(then_body)?;
                let (ep, eu) = io_per_iteration(else_body)?;
                if tp != ep || tu != eu {
                    return None;
                }
                pops += tp;
                pushes += tu;
            }
            Stmt::For { .. } => {
                // Nested pops/pushes would need symbolic window math;
                // reject those. Nested *peeks* are fine — they address the
                // firing window absolutely and do not move the cursor.
                let mut inner_pops = 0usize;
                s.visit_exprs(&mut |e| {
                    if matches!(e, Expr::Pop) {
                        inner_pops += 1;
                    }
                });
                let mut inner_push = 0usize;
                s.visit(&mut |s| {
                    if matches!(s, Stmt::Push(_)) {
                        inner_push += 1;
                    }
                });
                if inner_pops > 0 || inner_push > 0 {
                    return None;
                }
            }
        }
    }
    Some((pops, pushes))
}

/// Variables assigned anywhere in a statement list.
fn assigned_vars(body: &[Stmt], out: &mut Vec<String>) {
    for s in body {
        s.visit(&mut |s| {
            if let Stmt::Assign { name, .. } = s {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        });
    }
}

/// Check whether every read of a loop-assigned variable is preceded by an
/// assignment *within the same iteration* — i.e. the variable is
/// iteration-local. `defined` starts with iteration-invariant names.
fn reads_before_writes(body: &[Stmt], loop_assigned: &[String], defined: &mut Vec<String>) -> bool {
    fn expr_ok(e: &Expr, loop_assigned: &[String], defined: &[String]) -> bool {
        let mut ok = true;
        e.visit(&mut |e| {
            if let Expr::Var(v) = e {
                if loop_assigned.contains(v) && !defined.contains(v) {
                    ok = false;
                }
            }
        });
        ok
    }
    for s in body {
        match s {
            Stmt::Assign { name, expr } => {
                if !expr_ok(expr, loop_assigned, defined) {
                    return false;
                }
                if !defined.contains(name) {
                    defined.push(name.clone());
                }
            }
            Stmt::StateStore { index, expr, .. } => {
                if !expr_ok(index, loop_assigned, defined) || !expr_ok(expr, loop_assigned, defined)
                {
                    return false;
                }
            }
            Stmt::Push(e) => {
                if !expr_ok(e, loop_assigned, defined) {
                    return false;
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if !expr_ok(cond, loop_assigned, defined) {
                    return false;
                }
                // A variable is defined after the If only if both branches
                // define it; track conservatively with separate copies.
                let mut t = defined.clone();
                let mut e = defined.clone();
                if !reads_before_writes(then_body, loop_assigned, &mut t)
                    || !reads_before_writes(else_body, loop_assigned, &mut e)
                {
                    return false;
                }
                for v in t {
                    if e.contains(&v) && !defined.contains(&v) {
                        defined.push(v);
                    }
                }
            }
            Stmt::For {
                start, end, body, ..
            } => {
                if !expr_ok(start, loop_assigned, defined) || !expr_ok(end, loop_assigned, defined)
                {
                    return false;
                }
                if !reads_before_writes(body, loop_assigned, defined) {
                    return false;
                }
            }
        }
    }
    true
}

/// Find `v = v + C` / `v = v - C` at the top level of the loop body where
/// `C` is loop-invariant and `v` has a constant pre-loop initializer.
/// Returns (statement index, step expression as `i`-scaled form).
fn find_linear_recurrence(
    body: &[Stmt],
    prologue: &[(String, Value)],
    binds: &Bindings,
) -> Option<(usize, String, Value, Expr)> {
    for (si, s) in body.iter().enumerate() {
        let Stmt::Assign { name, expr } = s else {
            continue;
        };
        let Expr::Binary { op, lhs, rhs } = expr else {
            continue;
        };
        let step = match (op, &**lhs, &**rhs) {
            (BinOp::Add, Expr::Var(v), e) | (BinOp::Add, e, Expr::Var(v)) if v == name => e.clone(),
            (BinOp::Sub, Expr::Var(v), e) if v == name => Expr::Unary {
                op: streamir::ir::UnOp::Neg,
                operand: Box::new(e.clone()),
            },
            _ => continue,
        };
        // Step must be loop-invariant and constant-evaluable.
        if const_value(&step, binds).is_none() {
            continue;
        }
        // The variable must have a constant initializer in the prologue and
        // no other assignment in the loop.
        let init = prologue.iter().find(|(n, _)| n == name).map(|(_, v)| *v)?;
        let assigns = body
            .iter()
            .filter(|s| matches!(s, Stmt::Assign { name: n, .. } if n == name))
            .count();
        if assigns != 1 {
            continue;
        }
        return Some((si, name.clone(), init, step));
    }
    None
}

fn value_expr(v: Value) -> Expr {
    match v {
        Value::F32(x) => Expr::Float(x),
        Value::I64(i) => Expr::Int(i),
        Value::Bool(b) => Expr::Int(b as i64),
    }
}

/// Attempt to parallelize an actor's main loop.
///
/// The actor must consist of constant prologue assignments followed by a
/// single `for` loop from 0; nothing may follow the loop. Scalar actor
/// state (values carried across firings) disqualifies the actor. Returns
/// `None` when iterations cannot be made independent.
pub fn parallelize(actor: &ActorDef, binds: &Bindings) -> Option<ParallelLoop> {
    // Scalar state is a cross-firing dependence.
    if actor
        .state
        .iter()
        .any(|s| matches!(s, StateVar::Scalar { .. }))
    {
        return None;
    }
    // Shape: prologue of constant assigns + one For, nothing after.
    let mut prologue: Vec<(String, Value)> = Vec::new();
    let mut stmts = actor.work.body.iter();
    let mut the_loop = None;
    for s in stmts.by_ref() {
        match s {
            Stmt::Assign { name, expr } => {
                let v = const_value(expr, binds)?;
                prologue.push((name.clone(), v));
            }
            Stmt::For { .. } => {
                the_loop = Some(s.clone());
                break;
            }
            _ => return None,
        }
    }
    if stmts.next().is_some() {
        return None;
    }
    let Stmt::For {
        var: loop_var,
        start,
        end: bound,
        body,
    } = the_loop?
    else {
        return None;
    };
    if !matches!(start, Expr::Int(0)) {
        return None;
    }
    // Peeks inside the loop are allowed only for pop-free bodies: the
    // iterations then share the firing's window read-only (the DCT-style
    // case of §4.2.2). Mixed pop+peek windows are left to the stencil
    // path.
    let mut peeks = 0usize;
    for s in &body {
        s.visit_exprs(&mut |e| {
            if matches!(e, Expr::Peek(_)) {
                peeks += 1;
            }
        });
    }
    // State stores inside the loop would race across threads.
    let mut state_stores = 0usize;
    for s in &body {
        s.visit(&mut |s| {
            if matches!(s, Stmt::StateStore { .. }) {
                state_stores += 1;
            }
        });
    }
    if state_stores > 0 {
        return None;
    }

    let (pops_per_iter, pushes_per_iter) = io_per_iteration(&body)?;
    if pushes_per_iter == 0 {
        return None;
    }
    let window_peeks = peeks > 0;
    if window_peeks && pops_per_iter > 0 {
        return None;
    }

    // Dependence test; on failure, try removing one linear recurrence via
    // induction-variable substitution and retest.
    let mut loop_assigned = Vec::new();
    assigned_vars(&body, &mut loop_assigned);
    let invariant: Vec<String> = prologue
        .iter()
        .map(|(n, _)| n.clone())
        .filter(|n| !loop_assigned.contains(n))
        .chain(std::iter::once(loop_var.clone()))
        .collect();

    let mut work_body = body.clone();
    let mut ivs_applied = false;
    loop {
        let mut defined = invariant.clone();
        // Prologue vars that are re-assigned in the loop are NOT defined at
        // iteration entry (their value depends on the previous iteration).
        if reads_before_writes(&work_body, &loop_assigned, &mut defined) {
            break;
        }
        // Try to break one recurrence.
        let (si, name, init, step) = find_linear_recurrence(&work_body, &prologue, binds)?;
        // Replace `v = v + C` with `v = init + (i + 1) * C`, and make the
        // value at iteration entry available by prepending
        // `v = init + i * C`.
        let i_var = Expr::var(&loop_var);
        let entry_val = Expr::add(value_expr(init), Expr::mul(i_var.clone(), step.clone()));
        let exit_val = Expr::add(
            value_expr(init),
            Expr::mul(Expr::add(i_var, Expr::Int(1)), step.clone()),
        );
        work_body[si] = Stmt::Assign {
            name: name.clone(),
            expr: exit_val,
        };
        work_body.insert(
            0,
            Stmt::Assign {
                name,
                expr: entry_val,
            },
        );
        ivs_applied = true;
    }

    Some(ParallelLoop {
        loop_var,
        bound,
        pops_per_iter,
        pushes_per_iter,
        body: work_body,
        ivs_applied,
        window_peeks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamir::graph::bindings;
    use streamir::parse::parse_program;

    fn actor_of(src: &str) -> ActorDef {
        parse_program(src).unwrap().actors[0].clone()
    }

    #[test]
    fn parallelizes_saxpy_loop() {
        let a = actor_of(
            r#"
            pipeline P(N) {
                actor Saxpy(pop 2*N, push N) {
                    for i in 0..N {
                        x = pop();
                        y = pop();
                        push(2.0 * x + y);
                    }
                }
            }
            "#,
        );
        let pl = parallelize(&a, &bindings(&[("N", 64)])).expect("parallel");
        assert_eq!(pl.pops_per_iter, 2);
        assert_eq!(pl.pushes_per_iter, 1);
        assert!(!pl.ivs_applied);
    }

    #[test]
    fn eliminates_accumulator_recurrence() {
        // `addr = addr + 4` is a cross-iteration dependence that IVS breaks.
        let a = actor_of(
            r#"
            pipeline P(N) {
                actor Strided(pop N, push N) {
                    addr = 0;
                    for i in 0..N {
                        v = pop();
                        addr = addr + 4;
                        push(v + addr);
                    }
                }
            }
            "#,
        );
        let pl = parallelize(&a, &bindings(&[("N", 8)])).expect("parallel after IVS");
        assert!(pl.ivs_applied);
        // The recurrence statement is gone; `addr` is now induction-derived.
        let has_self_ref = pl.body.iter().any(
            |s| matches!(s, Stmt::Assign { name, expr } if name == "addr" && expr.mentions("addr")),
        );
        assert!(!has_self_ref);
    }

    #[test]
    fn true_recurrence_rejected() {
        // Each iteration reads the previous iteration's value scaled by a
        // popped item — not linear, not parallelizable.
        let a = actor_of(
            r#"
            pipeline P(N) {
                actor Scan(pop N, push N) {
                    acc = 0.0;
                    for i in 0..N {
                        acc = acc * 0.5 + pop();
                        push(acc);
                    }
                }
            }
            "#,
        );
        assert!(parallelize(&a, &bindings(&[("N", 8)])).is_none());
    }

    #[test]
    fn scalar_state_rejected() {
        let a = actor_of(
            r#"
            pipeline P(N) {
                actor Running(pop N, push N) {
                    state total = 0.0;
                    for i in 0..N {
                        total = total + pop();
                        push(total);
                    }
                }
            }
            "#,
        );
        assert!(parallelize(&a, &bindings(&[("N", 8)])).is_none());
    }

    #[test]
    fn conditional_io_rejected() {
        let a = actor_of(
            r#"
            pipeline P(N) {
                actor M(pop N, push N) {
                    for i in 0..N {
                        if (i % 2 == 0) {
                            push(pop() * 2.0);
                        } else {
                            push(pop());
                        }
                    }
                }
            }
            "#,
        );
        // Balanced I/O in both branches: accepted.
        assert!(parallelize(&a, &bindings(&[("N", 8)])).is_some());
        let b = actor_of(
            r#"
            pipeline P(N) {
                actor M(pop N, push N) {
                    for i in 0..N {
                        x = pop();
                        if (x > 0.0) {
                            push(x);
                        } else {
                            push(0.0 - x);
                            push(x);
                        }
                    }
                }
            }
            "#,
        );
        assert!(parallelize(&b, &bindings(&[("N", 8)])).is_none());
    }

    #[test]
    fn trailing_statement_rejected() {
        let a = actor_of(
            r#"
            pipeline P(N) {
                actor M(pop N, push N + 1) {
                    for i in 0..N { push(pop()); }
                }
            }
            "#,
        );
        // Loop only: fine.
        assert!(parallelize(&a, &bindings(&[("N", 4)])).is_some());
    }

    #[test]
    fn iteration_local_temporaries_are_fine() {
        let a = actor_of(
            r#"
            pipeline P(N) {
                actor M(pop N, push N) {
                    for i in 0..N {
                        t = pop();
                        u = t * t;
                        push(u + t);
                    }
                }
            }
            "#,
        );
        let pl = parallelize(&a, &bindings(&[("N", 4)])).unwrap();
        assert_eq!(pl.pops_per_iter, 1);
    }
}
