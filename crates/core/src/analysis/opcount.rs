//! Instruction and I/O counting over work-function IR.
//!
//! The performance model needs per-firing instruction mixes *as functions
//! of the input size*. Loop trip counts in the IR are expressions over
//! program parameters, so under a concrete binding every count collapses
//! to a number. These counts feed the closed-form [`LaunchProfile`]s the
//! compiler uses to choose optimizations before anything executes.
//!
//! [`LaunchProfile`]: perfmodel::LaunchProfile

use streamir::ir::{Expr, Stmt};
use streamir::rates::Bindings;
use streamir::value::Value;

/// Per-firing operation counts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpCounts {
    /// Arithmetic/logic instructions (adds, muls, compares, intrinsics).
    pub compute: f64,
    /// Floating-point operations (a subset of `compute`, for GFLOPS).
    pub flops: f64,
    /// Dynamic `pop()` executions.
    pub pops: f64,
    /// Dynamic `peek()` executions.
    pub peeks: f64,
    /// Dynamic `push()` executions.
    pub pushes: f64,
    /// State-array loads with unit-varying indices.
    pub state_loads: f64,
    /// State-array loads with unit-invariant (constant) indices — hoisted
    /// to one load per block by the templates, so nearly free.
    pub state_loads_uniform: f64,
    /// State-array stores.
    pub state_stores: f64,
}

impl OpCounts {
    fn scale(mut self, k: f64) -> OpCounts {
        self.compute *= k;
        self.flops *= k;
        self.pops *= k;
        self.peeks *= k;
        self.pushes *= k;
        self.state_loads *= k;
        self.state_loads_uniform *= k;
        self.state_stores *= k;
        self
    }

    fn add(&mut self, other: OpCounts) {
        self.compute += other.compute;
        self.flops += other.flops;
        self.pops += other.pops;
        self.peeks += other.peeks;
        self.pushes += other.pushes;
        self.state_loads += other.state_loads;
        self.state_loads_uniform += other.state_loads_uniform;
        self.state_stores += other.state_stores;
    }

    /// Total global-memory-facing accesses per firing (pops, peeks,
    /// pushes, state traffic).
    pub fn mem_accesses(&self) -> f64 {
        self.pops + self.peeks + self.pushes + self.state_loads + self.state_stores
    }
}

/// Try to evaluate an expression to a constant under `binds` (parameters
/// only; locals and stream reads make it dynamic).
fn const_eval(expr: &Expr, binds: &Bindings) -> Option<f64> {
    match expr {
        Expr::Float(x) => Some(*x as f64),
        Expr::Int(i) => Some(*i as f64),
        Expr::Var(name) => binds.get(name).map(|v| *v as f64),
        Expr::Binary { op, lhs, rhs } => {
            let a = const_eval(lhs, binds)?;
            let b = const_eval(rhs, binds)?;
            use streamir::ir::BinOp::*;
            Some(match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => {
                    if b == 0.0 {
                        return None;
                    }
                    a / b
                }
                Rem => {
                    if b == 0.0 {
                        return None;
                    }
                    a % b
                }
                _ => return None,
            })
        }
        Expr::Unary { op, operand } => {
            let v = const_eval(operand, binds)?;
            match op {
                streamir::ir::UnOp::Neg => Some(-v),
                streamir::ir::UnOp::Not => None,
            }
        }
        _ => None,
    }
}

fn expr_counts(expr: &Expr, binds: &Bindings) -> OpCounts {
    let mut c = OpCounts::default();
    match expr {
        Expr::Float(_) | Expr::Int(_) | Expr::Var(_) => {}
        Expr::Pop => c.pops += 1.0,
        Expr::Peek(e) => {
            c.peeks += 1.0;
            c.add(expr_counts(e, binds));
        }
        Expr::StateLoad { index, .. } => {
            if const_eval(index, binds).is_some() {
                c.state_loads_uniform += 1.0;
            } else {
                c.state_loads += 1.0;
            }
            c.add(expr_counts(index, binds));
        }
        Expr::Binary { op, lhs, rhs } => {
            c.compute += 1.0;
            if !op.is_comparison() {
                c.flops += 1.0;
            }
            c.add(expr_counts(lhs, binds));
            c.add(expr_counts(rhs, binds));
        }
        Expr::Unary { operand, .. } => {
            c.compute += 1.0;
            c.add(expr_counts(operand, binds));
        }
        Expr::Call { intrinsic, args } => {
            // Transcendental intrinsics cost several instructions.
            use streamir::ir::Intrinsic::*;
            let (insts, flops) = match intrinsic {
                Sqrt | Exp | Log | Sin | Cos | Pow => (8.0, 8.0),
                Abs | Floor | Max | Min => (1.0, 1.0),
                Select => (1.0, 0.0),
            };
            c.compute += insts;
            c.flops += flops;
            for a in args {
                c.add(expr_counts(a, binds));
            }
        }
    }
    c
}

/// Count per-firing operations of a work body under concrete parameter
/// bindings. Loop bounds that cannot be evaluated (data-dependent) fall
/// back to an assumed trip count of 1.
pub fn body_counts(body: &[Stmt], binds: &Bindings) -> OpCounts {
    let mut c = OpCounts::default();
    for s in body {
        c.add(stmt_counts(s, binds));
    }
    c
}

fn stmt_counts(stmt: &Stmt, binds: &Bindings) -> OpCounts {
    match stmt {
        Stmt::Assign { expr, .. } => expr_counts(expr, binds),
        Stmt::StateStore { index, expr, .. } => {
            let mut c = expr_counts(index, binds);
            c.add(expr_counts(expr, binds));
            c.state_stores += 1.0;
            c
        }
        Stmt::Push(e) => {
            let mut c = expr_counts(e, binds);
            c.pushes += 1.0;
            c
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            // Both sides charged at half weight (branch probability 0.5)
            // plus the condition itself — a standard static estimate.
            let mut c = expr_counts(cond, binds);
            c.compute += 1.0;
            let mut t = OpCounts::default();
            for s in then_body {
                t.add(stmt_counts(s, binds));
            }
            let mut e = OpCounts::default();
            for s in else_body {
                e.add(stmt_counts(s, binds));
            }
            // I/O must be counted fully (rates are exact); arithmetic is
            // averaged. Use max of I/O counts, average of compute.
            let mut merged = OpCounts {
                compute: 0.5 * (t.compute + e.compute),
                flops: 0.5 * (t.flops + e.flops),
                pops: t.pops.max(e.pops),
                peeks: t.peeks.max(e.peeks),
                pushes: t.pushes.max(e.pushes),
                state_loads: t.state_loads.max(e.state_loads),
                state_loads_uniform: t.state_loads_uniform.max(e.state_loads_uniform),
                state_stores: t.state_stores.max(e.state_stores),
            };
            merged.add(c);
            merged
        }
        Stmt::For {
            start, end, body, ..
        } => {
            let lo = const_eval(start, binds);
            let hi = const_eval(end, binds);
            let trips = match (lo, hi) {
                (Some(a), Some(b)) => (b - a).max(0.0),
                _ => 1.0,
            };
            let mut inner = OpCounts::default();
            for s in body {
                inner.add(stmt_counts(s, binds));
            }
            // Loop overhead: one increment + one compare per trip.
            inner.compute += 2.0;
            inner.scale(trips)
        }
    }
}

/// Evaluate a loop bound to a constant if possible (shared helper used by
/// the pattern matchers).
pub fn eval_bound(expr: &Expr, binds: &Bindings) -> Option<i64> {
    const_eval(expr, binds).map(|v| v as i64)
}

/// Fold a constant expression into a [`Value`] when possible.
pub fn const_value(expr: &Expr, binds: &Bindings) -> Option<Value> {
    match expr {
        Expr::Int(i) => Some(Value::I64(*i)),
        _ => const_eval(expr, binds).map(|v| Value::F32(v as f32)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamir::graph::bindings;
    use streamir::ir::{BinOp, Intrinsic};

    #[test]
    fn straightline_counts() {
        // push(pop() * 2.0 + 1.0)
        let body = vec![Stmt::Push(Expr::add(
            Expr::mul(Expr::Pop, Expr::Float(2.0)),
            Expr::Float(1.0),
        ))];
        let c = body_counts(&body, &bindings(&[]));
        assert_eq!(c.pops, 1.0);
        assert_eq!(c.pushes, 1.0);
        assert_eq!(c.compute, 2.0);
        assert_eq!(c.flops, 2.0);
    }

    #[test]
    fn loop_scales_by_trip_count() {
        let body = vec![Stmt::For {
            var: "i".into(),
            start: Expr::Int(0),
            end: Expr::var("N"),
            body: vec![Stmt::Push(Expr::Pop)],
        }];
        let c = body_counts(&body, &bindings(&[("N", 100)]));
        assert_eq!(c.pops, 100.0);
        assert_eq!(c.pushes, 100.0);
        assert_eq!(c.compute, 200.0); // loop overhead
    }

    #[test]
    fn nested_loops_multiply() {
        let body = vec![Stmt::For {
            var: "i".into(),
            start: Expr::Int(0),
            end: Expr::var("R"),
            body: vec![Stmt::For {
                var: "j".into(),
                start: Expr::Int(0),
                end: Expr::var("C"),
                body: vec![Stmt::Push(Expr::Pop)],
            }],
        }];
        let c = body_counts(&body, &bindings(&[("R", 4), ("C", 8)]));
        assert_eq!(c.pops, 32.0);
    }

    #[test]
    fn unknown_bound_falls_back_to_one() {
        let body = vec![Stmt::For {
            var: "i".into(),
            start: Expr::Int(0),
            end: Expr::var("unbound"),
            body: vec![Stmt::Push(Expr::Pop)],
        }];
        let c = body_counts(&body, &bindings(&[]));
        assert_eq!(c.pops, 1.0);
    }

    #[test]
    fn branch_io_uses_max_compute_uses_average() {
        let body = vec![Stmt::If {
            cond: Expr::bin(BinOp::Lt, Expr::var("N"), Expr::Int(5)),
            then_body: vec![Stmt::Push(Expr::add(Expr::Pop, Expr::Float(1.0)))],
            else_body: vec![Stmt::Push(Expr::Pop)],
        }];
        let c = body_counts(&body, &bindings(&[("N", 1)]));
        assert_eq!(c.pushes, 1.0);
        assert_eq!(c.pops, 1.0);
        // cond compare (1) + branch overhead (1) + avg(1, 0) arithmetic
        assert_eq!(c.compute, 2.5);
    }

    #[test]
    fn intrinsics_have_weights() {
        let body = vec![Stmt::Push(Expr::Call {
            intrinsic: Intrinsic::Sqrt,
            args: vec![Expr::Pop],
        })];
        let c = body_counts(&body, &bindings(&[]));
        assert_eq!(c.compute, 8.0);
        let body2 = vec![Stmt::Push(Expr::Call {
            intrinsic: Intrinsic::Abs,
            args: vec![Expr::Pop],
        })];
        assert_eq!(body_counts(&body2, &bindings(&[])).compute, 1.0);
    }

    #[test]
    fn state_traffic_counted() {
        let body = vec![
            Stmt::Assign {
                name: "v".into(),
                expr: Expr::StateLoad {
                    array: "x".into(),
                    index: Box::new(Expr::Int(0)),
                },
            },
            Stmt::StateStore {
                array: "x".into(),
                index: Expr::Int(1),
                expr: Expr::var("v"),
            },
            Stmt::Push(Expr::var("v")),
        ];
        let c = body_counts(&body, &bindings(&[]));
        // Constant-index loads are classified uniform (hoistable).
        assert_eq!(c.state_loads, 0.0);
        assert_eq!(c.state_loads_uniform, 1.0);
        assert_eq!(c.state_stores, 1.0);
        assert_eq!(c.mem_accesses(), 2.0);
    }

    #[test]
    fn eval_bound_handles_arithmetic() {
        let e = Expr::bin(
            BinOp::Div,
            Expr::mul(Expr::var("N"), Expr::Int(3)),
            Expr::Int(2),
        );
        assert_eq!(eval_bound(&e, &bindings(&[("N", 10)])), Some(15));
        assert_eq!(eval_bound(&Expr::var("x"), &bindings(&[])), None);
        assert_eq!(
            eval_bound(
                &Expr::bin(BinOp::Div, Expr::Int(1), Expr::Int(0)),
                &bindings(&[])
            ),
            None
        );
    }
}
