//! Compiler analyses over work-function IR.
//!
//! * [`opcount`] — per-firing instruction/IO counting as a function of the
//!   input (feeds the performance model's closed-form profiles);
//! * [`reduction`] — stream-reduction pattern detection (§4.2.1);
//! * [`stencil`] — neighboring-access pattern detection (§4.1.2);
//! * [`recurrence`] — intra-actor parallelization with induction-variable
//!   substitution (§4.2.2);
//! * [`classify`] — the dispatcher combining all of the above.

pub mod classify;
pub mod opcount;
pub mod recurrence;
pub mod reduction;
pub mod stencil;

pub use classify::{classify, ActorClass};
pub use opcount::{body_counts, OpCounts};
pub use recurrence::{parallelize, ParallelLoop};
pub use reduction::{detect_reduction, CombineOp, ReductionPattern};
pub use stencil::{detect_stencil, Offset, StencilPattern};
