//! Stream-reduction pattern detection (§4.2.1 of the paper).
//!
//! Adaptic automatically detects reduction operations in the stream graph
//! using pattern matching and replaces the reduction actor with highly
//! optimized kernels. The recognized shape is the canonical accumulation
//! loop:
//!
//! ```text
//! acc = <init>;
//! for i in 0..<bound> {
//!     acc = acc <op> <elem(i, pops, peeks, state)>;
//! }
//! push(<post(acc)>);
//! ```
//!
//! where `<op>` is associative and commutative (`+`, `*`, `max`, `min`) —
//! the legality condition for tree-based parallelization. `<elem>` may pop
//! a fixed number of items (e.g. `pop() * pop()` for a dot product of
//! interleaved vectors), read bound state arrays (`pop() * x[i]` for
//! matrix–vector products), and use the loop index. `<post>` allows final
//! transforms such as `sqrt(acc)` (snrm2) or `acc / N` (mean).

use streamir::actor::ActorDef;
use streamir::ir::{BinOp, Expr, Intrinsic, Stmt};

/// Associative + commutative combiner of a reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CombineOp {
    Add,
    Mul,
    Max,
    Min,
}

impl CombineOp {
    /// The identity element: combining with it is a no-op.
    pub fn identity(self) -> f32 {
        match self {
            CombineOp::Add => 0.0,
            CombineOp::Mul => 1.0,
            CombineOp::Max => f32::NEG_INFINITY,
            CombineOp::Min => f32::INFINITY,
        }
    }

    /// Apply the combiner.
    #[inline]
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            CombineOp::Add => a + b,
            CombineOp::Mul => a * b,
            CombineOp::Max => a.max(b),
            CombineOp::Min => a.min(b),
        }
    }

    /// CUDA spelling of the combining expression.
    pub fn cuda_expr(self, a: &str, b: &str) -> String {
        match self {
            CombineOp::Add => format!("{a} + {b}"),
            CombineOp::Mul => format!("{a} * {b}"),
            CombineOp::Max => format!("fmaxf({a}, {b})"),
            CombineOp::Min => format!("fminf({a}, {b})"),
        }
    }
}

/// A detected reduction.
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionPattern {
    /// Accumulator variable name.
    pub acc: String,
    /// Initial accumulator value.
    pub init: f32,
    /// The combiner.
    pub op: CombineOp,
    /// Per-element expression (may mention the loop variable, pops, peeks
    /// and state arrays; must not mention the accumulator).
    pub elem: Expr,
    /// Loop variable name used by `elem`.
    pub loop_var: String,
    /// Items popped per element.
    pub pops_per_elem: usize,
    /// Elements per firing (the loop bound expression).
    pub bound: Expr,
    /// Final expression pushed (mentions the accumulator; identity when the
    /// actor pushes `acc` directly).
    pub post: Expr,
}

impl ReductionPattern {
    /// True when the pushed value is the bare accumulator.
    pub fn post_is_identity(&self) -> bool {
        matches!(&self.post, Expr::Var(v) if *v == self.acc)
    }
}

/// Match `acc <op> elem` (either operand order) where `acc` is the given
/// variable. Returns the combiner and the element expression.
fn match_combine<'e>(expr: &'e Expr, acc: &str) -> Option<(CombineOp, &'e Expr)> {
    match expr {
        Expr::Binary { op, lhs, rhs } => {
            let cop = match op {
                BinOp::Add => CombineOp::Add,
                BinOp::Mul => CombineOp::Mul,
                _ => return None,
            };
            match (&**lhs, &**rhs) {
                (Expr::Var(v), e) if v == acc && !e.mentions(acc) => Some((cop, e)),
                (e, Expr::Var(v)) if v == acc && !e.mentions(acc) => Some((cop, e)),
                _ => None,
            }
        }
        Expr::Call { intrinsic, args } if args.len() == 2 => {
            let cop = match intrinsic {
                Intrinsic::Max => CombineOp::Max,
                Intrinsic::Min => CombineOp::Min,
                _ => return None,
            };
            match (&args[0], &args[1]) {
                (Expr::Var(v), e) if v == acc && !e.mentions(acc) => Some((cop, e)),
                (e, Expr::Var(v)) if v == acc && !e.mentions(acc) => Some((cop, e)),
                _ => None,
            }
        }
        _ => None,
    }
}

fn init_value(expr: &Expr) -> Option<f32> {
    match expr {
        Expr::Float(x) => Some(*x),
        Expr::Int(i) => Some(*i as f32),
        Expr::Unary {
            op: streamir::ir::UnOp::Neg,
            operand,
        } => init_value(operand).map(|v| -v),
        _ => None,
    }
}

/// Detect the reduction pattern in an actor's work body.
///
/// Returns `None` when the body does not match; matching is conservative —
/// a false negative only costs performance (the actor falls back to the
/// baseline lowering), never correctness.
pub fn detect_reduction(actor: &ActorDef) -> Option<ReductionPattern> {
    let body = &actor.work.body;
    if body.len() != 3 {
        return None;
    }
    // 1. acc = <const>;
    let Stmt::Assign {
        name: acc,
        expr: init_expr,
    } = &body[0]
    else {
        return None;
    };
    let init = init_value(init_expr)?;
    // 2. for i in 0..bound { acc = acc <op> elem; }
    let Stmt::For {
        var: loop_var,
        start,
        end: bound,
        body: loop_body,
    } = &body[1]
    else {
        return None;
    };
    if !matches!(start, Expr::Int(0)) || loop_body.len() != 1 {
        return None;
    }
    let Stmt::Assign {
        name: acc2,
        expr: combine,
    } = &loop_body[0]
    else {
        return None;
    };
    if acc2 != acc {
        return None;
    }
    let (op, elem) = match_combine(combine, acc)?;
    // Elements must not peek (peeking reductions would need window
    // semantics the templates do not implement) and must pop a fixed,
    // positive number of items.
    if elem.count_peeks() > 0 {
        return None;
    }
    let pops_per_elem = elem.count_pops();
    // elem may not mention the loop bound's dynamic state; structural
    // checks above suffice. The bound itself must not pop.
    if bound.count_pops() > 0 {
        return None;
    }
    // 3. push(post(acc));
    let Stmt::Push(post) = &body[2] else {
        return None;
    };
    if !post.mentions(acc) || post.count_pops() > 0 || post.count_peeks() > 0 {
        return None;
    }
    // The initial value must be the combiner's identity, or foldable into
    // the final result; both are handled by the templates, but non-identity
    // inits for Mul with init 0 would zero everything — reject the ones
    // that change semantics under reassociation. (Any init is legal for
    // assoc+comm ops because `init ⊕ x₀ ⊕ … ⊕ xₙ` can be combined last;
    // the templates do exactly that.)
    Some(ReductionPattern {
        acc: acc.clone(),
        init,
        op,
        elem: elem.clone(),
        loop_var: loop_var.clone(),
        pops_per_elem,
        bound: bound.clone(),
        post: post.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamir::actor::WorkFn;
    use streamir::parse::parse_program;
    use streamir::rates::RateExpr;

    fn actor_of(src: &str) -> ActorDef {
        let p = parse_program(src).unwrap();
        p.actors[0].clone()
    }

    #[test]
    fn detects_sum() {
        let a = actor_of(
            r#"pipeline P(N) {
                actor Sum(pop N, push 1) {
                    acc = 0.0;
                    for i in 0..N { acc = acc + pop(); }
                    push(acc);
                }
            }"#,
        );
        let r = detect_reduction(&a).expect("sum detected");
        assert_eq!(r.op, CombineOp::Add);
        assert_eq!(r.init, 0.0);
        assert_eq!(r.pops_per_elem, 1);
        assert!(r.post_is_identity());
    }

    #[test]
    fn detects_dot_product_with_two_pops() {
        let a = actor_of(
            r#"pipeline P(N) {
                actor Dot(pop 2*N, push 1) {
                    acc = 0.0;
                    for i in 0..N { acc = acc + pop() * pop(); }
                    push(acc);
                }
            }"#,
        );
        let r = detect_reduction(&a).expect("dot detected");
        assert_eq!(r.pops_per_elem, 2);
        assert_eq!(r.op, CombineOp::Add);
    }

    #[test]
    fn detects_max_abs_with_post() {
        let a = actor_of(
            r#"pipeline P(N) {
                actor Isamax(pop N, push 1) {
                    best = 0.0;
                    for i in 0..N { best = max(best, abs(pop())); }
                    push(best);
                }
            }"#,
        );
        let r = detect_reduction(&a).expect("isamax detected");
        assert_eq!(r.op, CombineOp::Max);
    }

    #[test]
    fn detects_snrm2_style_post() {
        let a = actor_of(
            r#"pipeline P(N) {
                actor Snrm2(pop N, push 1) {
                    acc = 0.0;
                    for i in 0..N { acc = acc + pop() * pop(); }
                    push(sqrt(acc));
                }
            }"#,
        );
        // NOTE: this actor pops 2 per element but declares pop N; the
        // detector is structural and accepts it — rate validation is the
        // scheduler's job.
        let r = detect_reduction(&a).expect("snrm2 detected");
        assert!(!r.post_is_identity());
    }

    #[test]
    fn detects_state_indexed_elem() {
        let a = actor_of(
            r#"pipeline P(cols) {
                actor RowDot(pop cols, push 1) {
                    state x[cols];
                    acc = 0.0;
                    for i in 0..cols { acc = acc + pop() * x[i]; }
                    push(acc);
                }
            }"#,
        );
        let r = detect_reduction(&a).expect("row dot detected");
        assert_eq!(r.loop_var, "i");
        assert!(r.elem.mentions("i"));
    }

    #[test]
    fn swapped_operand_order_matches() {
        let a = actor_of(
            r#"pipeline P(N) {
                actor Sum(pop N, push 1) {
                    acc = 0.0;
                    for i in 0..N { acc = pop() + acc; }
                    push(acc);
                }
            }"#,
        );
        assert!(detect_reduction(&a).is_some());
    }

    #[test]
    fn subtraction_is_not_a_reduction() {
        let a = actor_of(
            r#"pipeline P(N) {
                actor NotRed(pop N, push 1) {
                    acc = 0.0;
                    for i in 0..N { acc = acc - pop(); }
                    push(acc);
                }
            }"#,
        );
        assert!(detect_reduction(&a).is_none());
    }

    #[test]
    fn elem_mentioning_acc_rejected() {
        let a = actor_of(
            r#"pipeline P(N) {
                actor Weird(pop N, push 1) {
                    acc = 0.0;
                    for i in 0..N { acc = acc + pop() * acc; }
                    push(acc);
                }
            }"#,
        );
        assert!(detect_reduction(&a).is_none());
    }

    #[test]
    fn map_actor_is_not_a_reduction() {
        let a = actor_of("pipeline P() { actor Id(pop 1, push 1) { push(pop()); } }");
        assert!(detect_reduction(&a).is_none());
    }

    #[test]
    fn peeking_body_rejected() {
        let a = ActorDef::new(
            "P",
            WorkFn {
                pop: RateExpr::param("N"),
                push: RateExpr::constant(1),
                peek: RateExpr::param("N"),
                body: vec![
                    Stmt::Assign {
                        name: "acc".into(),
                        expr: Expr::Float(0.0),
                    },
                    Stmt::For {
                        var: "i".into(),
                        start: Expr::Int(0),
                        end: Expr::var("N"),
                        body: vec![Stmt::Assign {
                            name: "acc".into(),
                            expr: Expr::add(Expr::var("acc"), Expr::Peek(Box::new(Expr::var("i")))),
                        }],
                    },
                    Stmt::Push(Expr::var("acc")),
                ],
            },
        );
        assert!(detect_reduction(&a).is_none());
    }

    #[test]
    fn combine_op_semantics() {
        assert_eq!(CombineOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(CombineOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(CombineOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(CombineOp::Min.apply(2.0, 3.0), 2.0);
        for op in [
            CombineOp::Add,
            CombineOp::Mul,
            CombineOp::Max,
            CombineOp::Min,
        ] {
            assert_eq!(op.apply(op.identity(), 7.0), 7.0);
        }
    }

    #[test]
    fn cuda_spellings() {
        assert_eq!(CombineOp::Add.cuda_expr("a", "b"), "a + b");
        assert_eq!(CombineOp::Max.cuda_expr("a", "b"), "fmaxf(a, b)");
    }
}
