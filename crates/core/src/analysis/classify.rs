//! Actor classification.
//!
//! The compiler's first pass over each actor decides which lowering
//! families apply. Classification is ordered from most to least
//! specialized: reduction, stencil, parallelizable loop, per-firing map,
//! transfer, and finally opaque (host execution).

use streamir::actor::{ActorDef, ActorKind, StateVar};
use streamir::ir::Stmt;
use streamir::rates::Bindings;

use super::recurrence::{parallelize, ParallelLoop};
use super::reduction::{detect_reduction, ReductionPattern};
use super::stencil::{detect_stencil, StencilPattern};

/// How an actor will be lowered.
#[derive(Debug, Clone, PartialEq)]
pub enum ActorClass {
    /// Tree-parallelizable reduction (§4.2.1).
    Reduction(ReductionPattern),
    /// Neighboring-access actor (§4.1.2).
    Stencil(StencilPattern),
    /// Large loop with independent iterations (§4.2.2); one thread per
    /// iteration.
    ParallelLoop(ParallelLoop),
    /// Small fixed-rate actor; one thread per firing.
    Map,
    /// Pure data reorganization; candidate for index translation (§4.3.1).
    Transfer,
    /// Not GPU-lowerable (stateful, irregular); interpreted on the host.
    Opaque,
}

impl ActorClass {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ActorClass::Reduction(_) => "reduction",
            ActorClass::Stencil(_) => "stencil",
            ActorClass::ParallelLoop(_) => "parallel-loop",
            ActorClass::Map => "map",
            ActorClass::Transfer => "transfer",
            ActorClass::Opaque => "opaque",
        }
    }
}

/// True when the actor's firing has no cross-firing or cross-thread
/// hazards: no scalar state, no state-array stores.
fn firing_is_pure(actor: &ActorDef) -> bool {
    if actor
        .state
        .iter()
        .any(|s| matches!(s, StateVar::Scalar { .. }))
    {
        return false;
    }
    let mut stores = 0usize;
    for s in &actor.work.body {
        s.visit(&mut |s| {
            if matches!(s, Stmt::StateStore { .. }) {
                stores += 1;
            }
        });
    }
    stores == 0
}

/// Classify an actor under concrete parameter bindings.
///
/// Bindings are needed because parallelizability of loops (constant
/// initializers, loop-invariant steps) is checked by evaluation.
pub fn classify(actor: &ActorDef, binds: &Bindings) -> ActorClass {
    if !firing_is_pure(actor) {
        return ActorClass::Opaque;
    }
    if let Some(r) = detect_reduction(actor) {
        return ActorClass::Reduction(r);
    }
    if let Some(s) = detect_stencil(actor) {
        return ActorClass::Stencil(s);
    }
    // Large symbolic-rate loops want intra-actor parallelization; small
    // constant-rate actors are plain maps. The threshold admits block
    // transforms like an 8x8 DCT (64 items per firing) as single-thread
    // maps while sending symbolic-rate loops to the parallelizer.
    let pop_const = actor.work.pop.as_constant();
    let push_const = actor.work.push.as_constant();
    let small = matches!((pop_const, push_const), (Some(p), Some(q)) if p <= 64 && q <= 64);
    // Wide firings (symbolic rates, or >=32 items) deserve intra-actor
    // parallelization; narrow maps are cheaper as one thread per firing.
    let wide = !small || matches!(pop_const, Some(p) if p >= 32);
    if wide {
        if let Some(pl) = parallelize(actor, binds) {
            return ActorClass::ParallelLoop(pl);
        }
    }
    // Peeking beyond the window disqualifies the plain map lowering.
    if actor.peeks_beyond_pops() && !small {
        return ActorClass::Opaque;
    }
    if small {
        return match actor.kind() {
            ActorKind::Transfer => ActorClass::Transfer,
            ActorKind::Generic => ActorClass::Map,
        };
    }
    ActorClass::Opaque
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamir::graph::bindings;
    use streamir::parse::parse_program;

    fn classify_first(src: &str) -> ActorClass {
        let p = parse_program(src).unwrap();
        classify(
            &p.actors[0],
            &bindings(&[("N", 1024), ("rows", 64), ("cols", 64)]),
        )
    }

    #[test]
    fn classifies_reduction() {
        let c = classify_first(
            r#"pipeline P(N) {
                actor Sum(pop N, push 1) {
                    acc = 0.0;
                    for i in 0..N { acc = acc + pop(); }
                    push(acc);
                }
            }"#,
        );
        assert!(matches!(c, ActorClass::Reduction(_)));
        assert_eq!(c.label(), "reduction");
    }

    #[test]
    fn classifies_stencil() {
        let c = classify_first(
            r#"pipeline P(rows, cols) {
                actor S(pop rows*cols, push rows*cols, peek rows*cols) {
                    for i in 0..rows*cols {
                        push(peek(i) + 1.0);
                    }
                }
            }"#,
        );
        assert!(matches!(c, ActorClass::Stencil(_)));
    }

    #[test]
    fn classifies_parallel_loop() {
        let c = classify_first(
            r#"pipeline P(N) {
                actor Axpy(pop 2*N, push N) {
                    for i in 0..N { x = pop(); y = pop(); push(x + y); }
                }
            }"#,
        );
        assert!(matches!(c, ActorClass::ParallelLoop(_)));
    }

    #[test]
    fn classifies_map_and_transfer() {
        let m = classify_first("pipeline P() { actor M(pop 1, push 1) { push(pop() * 2.0); } }");
        assert!(matches!(m, ActorClass::Map));
        let t = classify_first(
            "pipeline P() { actor T(pop 2, push 2) { a = pop(); b = pop(); push(b); push(a); } }",
        );
        assert!(matches!(t, ActorClass::Transfer));
    }

    #[test]
    fn stateful_actor_is_opaque() {
        let c = classify_first(
            r#"pipeline P() {
                actor R(pop 1, push 1) {
                    state total = 0.0;
                    total = total + pop();
                    push(total);
                }
            }"#,
        );
        assert!(matches!(c, ActorClass::Opaque));
    }

    #[test]
    fn irregular_big_loop_is_opaque() {
        let c = classify_first(
            r#"pipeline P(N) {
                actor Scan(pop N, push N) {
                    acc = 0.0;
                    for i in 0..N { acc = acc * 0.5 + pop(); push(acc); }
                }
            }"#,
        );
        assert!(matches!(c, ActorClass::Opaque));
    }
}
