//! Input-aware optimization decisions (§4 of the paper).
//!
//! * [`memory`] — memory restructuring and super-tile sizing (§4.1);
//! * [`segmentation`] — reduction-lowering choice and work splitting
//!   (§4.2);
//! * [`integration`] — vertical and horizontal actor integration (§4.3).
//!
//! Each module exposes *decisions* (pure functions over shapes and cost
//! profiles); the transformations themselves live with the IR
//! ([`crate::analysis`], [`integration`]) and the templates execute the
//! result.

pub mod integration;
pub mod memory;
pub mod segmentation;

pub use integration::{can_fuse_horizontal, fuse_into_reduction, fuse_parallel_loops};
pub use memory::{choose_edge_layout, choose_tile, reuse_metric};
pub use segmentation::{best_reduce_choice, pick_initial_blocks, ReduceChoice};
