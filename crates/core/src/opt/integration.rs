//! Actor-integration transforms (§4.3 of the paper).
//!
//! *Vertical integration* fuses consecutive actors so their intermediate
//! stream lives in registers instead of global memory; transfer actors
//! dissolve into index translation as a by-product. *Horizontal
//! integration* fuses siblings of a duplicate splitter (implemented by the
//! [`crate::templates::FusedReduce`] template; the legality check lives
//! here).
//!
//! Fusion works at the IR level on straight-line per-unit bodies: the
//! producer's `push(e)` statements become temporaries, and the consumer's
//! `pop()`s are substituted with those temporaries in order.

use streamir::ir::{Expr, Stmt};
use streamir::rates::Bindings;

use crate::analysis::opcount::eval_bound;
use crate::analysis::recurrence::ParallelLoop;
use crate::analysis::reduction::ReductionPattern;

/// True when every statement is a top-level assign/push (no control flow)
/// — the precondition for pop/push substitution being order-safe.
fn is_straightline(body: &[Stmt]) -> bool {
    body.iter()
        .all(|s| matches!(s, Stmt::Assign { .. } | Stmt::Push(_)))
}

/// Rename every local variable in `body` with a prefix, avoiding capture
/// when two fused bodies use the same temporary names. Parameters (listed
/// in `binds`) are left untouched.
fn rename_locals(body: &[Stmt], prefix: &str, binds: &Bindings, keep: &[&str]) -> Vec<Stmt> {
    fn rename_expr(e: &Expr, prefix: &str, binds: &Bindings, keep: &[&str]) -> Expr {
        match e {
            Expr::Var(v) => {
                if binds.contains_key(v) || keep.contains(&v.as_str()) {
                    Expr::Var(v.clone())
                } else {
                    Expr::Var(format!("{prefix}{v}"))
                }
            }
            Expr::Peek(inner) => Expr::Peek(Box::new(rename_expr(inner, prefix, binds, keep))),
            Expr::StateLoad { array, index } => Expr::StateLoad {
                array: array.clone(),
                index: Box::new(rename_expr(index, prefix, binds, keep)),
            },
            Expr::Binary { op, lhs, rhs } => Expr::Binary {
                op: *op,
                lhs: Box::new(rename_expr(lhs, prefix, binds, keep)),
                rhs: Box::new(rename_expr(rhs, prefix, binds, keep)),
            },
            Expr::Unary { op, operand } => Expr::Unary {
                op: *op,
                operand: Box::new(rename_expr(operand, prefix, binds, keep)),
            },
            Expr::Call { intrinsic, args } => Expr::Call {
                intrinsic: *intrinsic,
                args: args
                    .iter()
                    .map(|a| rename_expr(a, prefix, binds, keep))
                    .collect(),
            },
            Expr::Float(_) | Expr::Int(_) | Expr::Pop => e.clone(),
        }
    }
    body.iter()
        .map(|s| match s {
            Stmt::Assign { name, expr } => Stmt::Assign {
                name: if binds.contains_key(name) || keep.contains(&name.as_str()) {
                    name.clone()
                } else {
                    format!("{prefix}{name}")
                },
                expr: rename_expr(expr, prefix, binds, keep),
            },
            Stmt::Push(e) => Stmt::Push(rename_expr(e, prefix, binds, keep)),
            Stmt::StateStore { array, index, expr } => Stmt::StateStore {
                array: array.clone(),
                index: rename_expr(index, prefix, binds, keep),
                expr: rename_expr(expr, prefix, binds, keep),
            },
            other => other.clone(),
        })
        .collect()
}

/// Substitute the `n` pops of `expr` (in evaluation order) with the given
/// replacement expressions. Returns `None` when counts mismatch.
fn substitute_pops_expr(expr: &Expr, repl: &[Expr], next: &mut usize) -> Expr {
    match expr {
        Expr::Pop => {
            let e = repl[*next].clone();
            *next += 1;
            e
        }
        Expr::Peek(inner) => Expr::Peek(Box::new(substitute_pops_expr(inner, repl, next))),
        Expr::StateLoad { array, index } => Expr::StateLoad {
            array: array.clone(),
            index: Box::new(substitute_pops_expr(index, repl, next)),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(substitute_pops_expr(lhs, repl, next)),
            rhs: Box::new(substitute_pops_expr(rhs, repl, next)),
        },
        Expr::Unary { op, operand } => Expr::Unary {
            op: *op,
            operand: Box::new(substitute_pops_expr(operand, repl, next)),
        },
        Expr::Call { intrinsic, args } => Expr::Call {
            intrinsic: *intrinsic,
            args: args
                .iter()
                .map(|a| substitute_pops_expr(a, repl, next))
                .collect(),
        },
        Expr::Float(_) | Expr::Int(_) | Expr::Var(_) => expr.clone(),
    }
}

/// Vertically integrate two parallel loops: `a` feeds `b` element-wise.
///
/// Requires matching per-iteration rates (`a` pushes what `b` pops),
/// matching trip counts under `binds`, and straight-line bodies. The
/// result consumes `a`'s input and produces `b`'s output with the
/// intermediate stream held in registers.
pub fn fuse_parallel_loops(
    a: &ParallelLoop,
    b: &ParallelLoop,
    binds: &Bindings,
) -> Option<ParallelLoop> {
    if a.pushes_per_iter != b.pops_per_iter {
        return None;
    }
    if a.window_peeks || b.window_peeks {
        return None; // window-sharing iterations don't compose element-wise
    }
    let (ba, bb) = (eval_bound(&a.bound, binds)?, eval_bound(&b.bound, binds)?);
    if ba != bb {
        return None;
    }
    if !is_straightline(&a.body) || !is_straightline(&b.body) {
        return None;
    }

    // Producer: pushes become temporaries.
    let a_body = rename_locals(&a.body, "__a_", binds, &[&a.loop_var]);
    let mut fused: Vec<Stmt> = Vec::new();
    let mut temps: Vec<Expr> = Vec::new();
    for s in a_body {
        match s {
            Stmt::Push(e) => {
                let name = format!("__t{}", temps.len());
                temps.push(Expr::var(&name));
                fused.push(Stmt::Assign { name, expr: e });
            }
            other => fused.push(other),
        }
    }

    // Consumer: pops become those temporaries, in order. The consumer's
    // loop variable is unified with the producer's.
    let keep_b: Vec<&str> = vec![&b.loop_var];
    let b_body = rename_locals(&b.body, "__b_", binds, &keep_b);
    let mut next = 0usize;
    for s in b_body {
        let s = match s {
            Stmt::Assign { name, expr } => Stmt::Assign {
                name,
                expr: substitute_pops_expr(&expr, &temps, &mut next),
            },
            Stmt::Push(e) => Stmt::Push(substitute_pops_expr(&e, &temps, &mut next)),
            Stmt::StateStore { array, index, expr } => Stmt::StateStore {
                array,
                index: substitute_pops_expr(&index, &temps, &mut next),
                expr: substitute_pops_expr(&expr, &temps, &mut next),
            },
            other => other,
        };
        fused.push(s);
    }
    if next != temps.len() {
        return None; // consumer did not pop everything the producer pushed
    }
    // Unify loop variables: b's loop var must alias a's.
    if b.loop_var != a.loop_var {
        fused.insert(
            0,
            Stmt::Assign {
                name: b.loop_var.clone(),
                expr: Expr::var(&a.loop_var),
            },
        );
    }

    Some(ParallelLoop {
        loop_var: a.loop_var.clone(),
        bound: a.bound.clone(),
        pops_per_iter: a.pops_per_iter,
        pushes_per_iter: b.pushes_per_iter,
        body: fused,
        ivs_applied: a.ivs_applied || b.ivs_applied,
        window_peeks: false,
    })
}

/// Vertically integrate a map (as a parallel loop) into a downstream
/// reduction: the reduction's element expression absorbs the producer's
/// computation, eliminating the intermediate buffer entirely.
///
/// The producer must be straight-line with exactly one push per iteration
/// matching the reduction's per-element pops of 1... more precisely, each
/// reduction element consumes `red.pops_per_elem` producer outputs; each
/// is replaced by one inlined copy of the producer's push expression.
pub fn fuse_into_reduction(
    producer: &ParallelLoop,
    red: &ReductionPattern,
    binds: &Bindings,
) -> Option<ReductionPattern> {
    if producer.pushes_per_iter != 1 || !is_straightline(&producer.body) {
        return None;
    }
    // The producer body must be a single push (pure expression) so it can
    // be inlined into the element expression verbatim.
    let push_expr = match producer.body.as_slice() {
        [Stmt::Push(e)] => e.clone(),
        _ => {
            // Inline chains of assigns by substitution would be possible;
            // keep to the single-expression case the benchmarks need.
            return None;
        }
    };
    // Check rate compatibility: total elements consumed by the reduction
    // equals total iterations produced.
    let red_elems = eval_bound(&red.bound, binds)?;
    let prod_iters = eval_bound(&producer.bound, binds)?;
    if red_elems * red.pops_per_elem as i64 != prod_iters {
        return None;
    }
    // Each of the reduction's pops becomes one instance of the producer's
    // expression; the producer's own pops then read the original stream.
    let repl: Vec<Expr> = (0..red.pops_per_elem).map(|_| push_expr.clone()).collect();
    let mut next = 0usize;
    let fused_elem = substitute_pops_expr(&red.elem, &repl, &mut next);
    if next != repl.len() {
        return None;
    }
    Some(ReductionPattern {
        acc: red.acc.clone(),
        init: red.init,
        op: red.op,
        elem: fused_elem,
        loop_var: red.loop_var.clone(),
        pops_per_elem: red.pops_per_elem * producer.pops_per_iter,
        bound: red.bound.clone(),
        post: red.post.clone(),
    })
}

/// Horizontally integrate sibling *map* actors under a duplicate splitter:
/// the window is popped once into shared temporaries and every sibling's
/// body runs on those values, pushes interleaving in branch order (which
/// is exactly a `roundrobin(q1, q2, ...)` joiner's order).
///
/// Requires straight-line bodies (pop substitution must be order-safe).
pub fn fuse_duplicate_maps(branches: &[(Vec<Stmt>, String)], pops: usize) -> Option<Vec<Stmt>> {
    if branches.iter().any(|(b, _)| !is_straightline(b)) {
        return None;
    }
    let empty = Bindings::new();
    let mut fused: Vec<Stmt> = Vec::new();
    let mut temps: Vec<Expr> = Vec::new();
    for j in 0..pops {
        let name = format!("__w{j}");
        temps.push(Expr::var(&name));
        fused.push(Stmt::Assign {
            name,
            expr: Expr::Pop,
        });
    }
    for (i, (body, _)) in branches.iter().enumerate() {
        let renamed = rename_locals(body, &format!("__h{i}_"), &empty, &[]);
        let mut next = 0usize;
        for s in renamed {
            let s = match s {
                Stmt::Assign { name, expr } => Stmt::Assign {
                    name,
                    expr: substitute_pops_expr(&expr, &temps, &mut next),
                },
                Stmt::Push(e) => Stmt::Push(substitute_pops_expr(&e, &temps, &mut next)),
                other => other,
            };
            fused.push(s);
        }
        if next != temps.len() {
            return None; // a sibling did not consume the whole window
        }
    }
    Some(fused)
}

/// Legality of horizontal integration for sibling reductions: they must
/// observe the same duplicated stream with the same element windows.
pub fn can_fuse_horizontal(patterns: &[&ReductionPattern]) -> bool {
    if patterns.len() < 2 {
        return false;
    }
    let ppe = patterns[0].pops_per_elem;
    let bound = &patterns[0].bound;
    patterns
        .iter()
        .all(|p| p.pops_per_elem == ppe && p.bound == *bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamir::graph::bindings;
    use streamir::parse::parse_program;

    use crate::analysis::recurrence::parallelize;
    use crate::analysis::reduction::detect_reduction;
    use crate::exec_ir::{exec_body, VecIo};

    fn loop_of(src: &str, binds: &Bindings) -> ParallelLoop {
        let p = parse_program(src).unwrap();
        parallelize(&p.actors[0], binds).expect("parallelizable")
    }

    fn run_loop(pl: &ParallelLoop, binds: &Bindings, input: &[f32]) -> Vec<f32> {
        let n = eval_bound(&pl.bound, binds).unwrap() as usize;
        let mut out = Vec::new();
        for i in 0..n {
            let mut io = VecIo {
                input: input[i * pl.pops_per_iter..(i + 1) * pl.pops_per_iter].to_vec(),
                ..Default::default()
            };
            let mut locals = std::collections::HashMap::new();
            locals.insert(pl.loop_var.clone(), streamir::value::Value::I64(i as i64));
            exec_body(&pl.body, &mut locals, binds, &mut io).unwrap();
            out.extend(io.output);
        }
        out
    }

    #[test]
    fn fused_loops_compute_composition() {
        let binds = bindings(&[("N", 8)]);
        let a = loop_of(
            "pipeline P(N) { actor A(pop N, push N) { for i in 0..N { push(pop() * 2.0); } } }",
            &binds,
        );
        let b = loop_of(
            "pipeline P(N) { actor B(pop N, push N) { for j in 0..N { push(pop() + 1.0); } } }",
            &binds,
        );
        let fused = fuse_parallel_loops(&a, &b, &binds).expect("fusable");
        assert_eq!(fused.pops_per_iter, 1);
        assert_eq!(fused.pushes_per_iter, 1);
        let input: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let out = run_loop(&fused, &binds, &input);
        let expected: Vec<f32> = input.iter().map(|x| x * 2.0 + 1.0).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn fusion_respects_multi_rate_windows() {
        let binds = bindings(&[("N", 4)]);
        // a: 2 pops -> 2 pushes (swap); b: 2 pops -> 1 push (sum).
        let a = loop_of(
            "pipeline P(N) { actor A(pop 2*N, push 2*N) { for i in 0..N { x = pop(); y = pop(); push(y); push(x); } } }",
            &binds,
        );
        let b = loop_of(
            "pipeline P(N) { actor B(pop 2*N, push N) { for i in 0..N { p = pop(); q = pop(); push(p - q); } } }",
            &binds,
        );
        let fused = fuse_parallel_loops(&a, &b, &binds).expect("fusable");
        assert_eq!(fused.pops_per_iter, 2);
        assert_eq!(fused.pushes_per_iter, 1);
        let input = vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0];
        let out = run_loop(&fused, &binds, &input);
        // swap then subtract: (y - x)
        assert_eq!(out, vec![9.0, 18.0, 27.0, 36.0]);
    }

    #[test]
    fn rate_mismatch_rejected() {
        let binds = bindings(&[("N", 4)]);
        let a = loop_of(
            "pipeline P(N) { actor A(pop N, push 2*N) { for i in 0..N { x = pop(); push(x); push(x); } } }",
            &binds,
        );
        let b = loop_of(
            "pipeline P(N) { actor B(pop N, push N) { for i in 0..N { push(pop()); } } }",
            &binds,
        );
        assert!(fuse_parallel_loops(&a, &b, &binds).is_none());
    }

    #[test]
    fn local_name_collision_is_safe() {
        let binds = bindings(&[("N", 2)]);
        // Both use a local named `t`.
        let a = loop_of(
            "pipeline P(N) { actor A(pop N, push N) { for i in 0..N { t = pop(); push(t * 3.0); } } }",
            &binds,
        );
        let b = loop_of(
            "pipeline P(N) { actor B(pop N, push N) { for i in 0..N { t = pop(); push(t + 5.0); } } }",
            &binds,
        );
        let fused = fuse_parallel_loops(&a, &b, &binds).unwrap();
        let out = run_loop(&fused, &binds, &[1.0, 2.0]);
        assert_eq!(out, vec![8.0, 11.0]);
    }

    #[test]
    fn fuse_square_into_sum_gives_snrm2_core() {
        let binds = bindings(&[("N", 8)]);
        // `pow(pop(), 2)` rather than `pop()*pop()`: the latter would
        // square two *different* stream items.
        let square = loop_of(
            "pipeline P(N) { actor Sq(pop N, push N) { for i in 0..N { push(pow(pop(), 2.0)); } } }",
            &binds,
        );
        let p = parse_program(
            r#"pipeline P(N) {
                actor Sum(pop N, push 1) {
                    acc = 0.0;
                    for i in 0..N { acc = acc + pop(); }
                    push(sqrt(acc));
                }
            }"#,
        )
        .unwrap();
        let red = detect_reduction(&p.actors[0]).unwrap();
        let fused = fuse_into_reduction(&square, &red, &binds).expect("fusable");
        assert_eq!(fused.pops_per_elem, 1);
        assert!(matches!(fused.elem, Expr::Call { .. }));
    }

    #[test]
    fn horizontal_legality() {
        let p = parse_program(
            r#"pipeline P(N) {
                actor MaxA(pop N, push 1) {
                    m = -1000000.0;
                    for i in 0..N { m = max(m, pop()); }
                    push(m);
                }
                actor SumA(pop N, push 1) {
                    s = 0.0;
                    for i in 0..N { s = s + pop(); }
                    push(s);
                }
            }"#,
        )
        .unwrap();
        let a = detect_reduction(&p.actors[0]).unwrap();
        let b = detect_reduction(&p.actors[1]).unwrap();
        assert!(can_fuse_horizontal(&[&a, &b]));
        let mut c = b.clone();
        c.pops_per_elem = 2;
        assert!(!can_fuse_horizontal(&[&a, &c]));
        assert!(!can_fuse_horizontal(&[&a]));
    }
}
