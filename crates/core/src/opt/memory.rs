//! Memory-optimization decisions (§4.1 of the paper).
//!
//! * **Memory restructuring** (§4.1.1): decide per stream edge whether the
//!   transposed layout is applicable — it requires the producer and
//!   consumer windows to match (rate-matched edges), which is why the
//!   paper notes the optimization is inapplicable across mismatched-rate
//!   actor pairs.
//! * **Super-tile sizing** (§4.1.2): choose the tile geometry for a
//!   stencil by maximizing the paper's *reuse metric* subject to the
//!   shared-memory budget, shrinking tiles for small inputs to keep
//!   enough blocks in flight.

use gpu_sim::DeviceSpec;

use crate::layout::Layout;

/// Decide the layout of a stream edge.
///
/// `producer_rate`/`consumer_rate` are the per-unit push/pop window sizes
/// on each side (`None` for the host side, which can restructure freely at
/// generation time). Transposed is chosen when some GPU side has a
/// multi-word window (otherwise both layouts are identical) and the
/// device-resident sides agree on the window size.
pub fn choose_edge_layout(producer_rate: Option<usize>, consumer_rate: Option<usize>) -> Layout {
    match (producer_rate, consumer_rate) {
        (None, None) => Layout::RowMajor,
        (Some(p), None) => {
            if p > 1 {
                Layout::Transposed
            } else {
                Layout::RowMajor
            }
        }
        (None, Some(c)) => {
            if c > 1 {
                Layout::Transposed
            } else {
                Layout::RowMajor
            }
        }
        (Some(p), Some(c)) => {
            if p == c && p > 1 {
                Layout::Transposed
            } else {
                Layout::RowMajor
            }
        }
    }
}

/// The reuse metric of §4.1.2: total shared-memory element accesses per
/// halo word fetched. Larger is better.
pub fn reuse_metric(
    tile_w: usize,
    tile_h: usize,
    halo_r: usize,
    halo_c: usize,
    taps: usize,
) -> f64 {
    let area = tile_w * tile_h;
    let ext = (tile_w + 2 * halo_c) * (tile_h + 2 * halo_r);
    let halo = ext - area;
    if halo == 0 {
        return f64::INFINITY;
    }
    (taps * area) as f64 / halo as f64
}

/// Choose a super-tile geometry for a stencil.
///
/// Enumerates warp-multiple widths and power-of-two heights, rejects
/// shapes whose extended tile exceeds the shared-memory budget, and picks
/// the shape the performance model predicts fastest (§4.1.2: increasing a
/// super tile trades halo traffic against occupancy, possibly flipping
/// the kernel latency-bound — exactly what the model arbitrates). The
/// reuse metric breaks ties.
pub fn choose_tile(
    device: &DeviceSpec,
    rows: usize,
    cols: usize,
    halo_r: usize,
    halo_c: usize,
    taps: usize,
) -> (usize, usize) {
    let shared_cap = device.shared_words_per_block as usize;
    let widths = [32usize, 64, 128, 256, 512];
    let heights: Vec<usize> = if rows == 1 {
        vec![1]
    } else {
        vec![1, 2, 4, 8, 16, 32]
    };

    let mut best: Option<(f64, f64, (usize, usize))> = None;
    for &w in &widths {
        if w > cols.next_power_of_two().max(32) {
            continue;
        }
        for &h in &heights {
            if h > rows.next_power_of_two() {
                continue;
            }
            let ext = (w + 2 * halo_c) * (h + 2 * halo_r);
            if ext > shared_cap {
                continue;
            }
            let compute_per_elem = 2.0 * taps as f64 + 2.0;
            let profile = crate::cost::stencil_profile(
                device,
                rows,
                cols,
                w,
                h,
                halo_r,
                halo_c,
                taps,
                compute_per_elem,
                taps as f64,
                256,
            );
            let time = perfmodel::estimate(device, &profile).time_us;
            let m = reuse_metric(w, h, halo_r, halo_c, taps);
            let better = match best {
                None => true,
                Some((bt, bm, _)) => time < bt || (time == bt && m > bm),
            };
            if better {
                best = Some((time, m, (w, h)));
            }
        }
    }
    best.map(|(_, _, wh)| wh).unwrap_or((32, 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_layout_rules() {
        // Host-to-kernel with wide windows: restructure.
        assert_eq!(choose_edge_layout(None, Some(4)), Layout::Transposed);
        assert_eq!(choose_edge_layout(Some(4), None), Layout::Transposed);
        // Unit windows: nothing to gain.
        assert_eq!(choose_edge_layout(None, Some(1)), Layout::RowMajor);
        assert_eq!(choose_edge_layout(Some(1), Some(1)), Layout::RowMajor);
        // Matching device windows: restructure.
        assert_eq!(choose_edge_layout(Some(3), Some(3)), Layout::Transposed);
        // Rate-mismatched device edge: the paper's inapplicable case.
        assert_eq!(choose_edge_layout(Some(2), Some(4)), Layout::RowMajor);
    }

    #[test]
    fn reuse_metric_prefers_big_tiles() {
        let small = reuse_metric(8, 8, 1, 1, 5);
        let big = reuse_metric(32, 32, 1, 1, 5);
        assert!(big > small);
    }

    #[test]
    fn reuse_metric_infinite_without_halo() {
        assert!(reuse_metric(8, 8, 0, 0, 1).is_infinite());
    }

    #[test]
    fn tile_fits_shared_memory() {
        let d = gpu_sim::DeviceSpec::gtx285(); // small 16 KB shared
        let (w, h) = choose_tile(&d, 4096, 4096, 1, 1, 5);
        let ext = (w + 2) * (h + 2);
        assert!(ext <= d.shared_words_per_block as usize);
        assert!(w % 32 == 0);
    }

    #[test]
    fn small_inputs_get_smaller_tiles() {
        let d = gpu_sim::DeviceSpec::tesla_c2050();
        let (bw, bh) = choose_tile(&d, 4096, 4096, 1, 1, 5);
        let (sw, sh) = choose_tile(&d, 64, 64, 1, 1, 5);
        assert!(
            sw * sh <= bw * bh,
            "small input tile {sw}x{sh} should not exceed large input tile {bw}x{bh}"
        );
        // Small input must still produce multiple tiles.
        assert!(64usize.div_ceil(sh) * 64usize.div_ceil(sw) > 1);
    }

    #[test]
    fn one_dimensional_inputs_get_row_tiles() {
        let d = gpu_sim::DeviceSpec::tesla_c2050();
        let (_, h) = choose_tile(&d, 1, 1 << 20, 0, 8, 17);
        assert_eq!(h, 1);
    }
}
