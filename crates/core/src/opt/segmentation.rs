//! Actor-segmentation decisions (§4.2 of the paper): how to split a
//! reduction's work across threads and blocks for the actual input shape.

use gpu_sim::DeviceSpec;
use perfmodel::estimate;

use crate::cost::{initial_reduce_profile, single_reduce_profile};
use crate::layout::Layout;

/// A concrete reduction-lowering choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceChoice {
    /// Two-kernel scheme (§4.2.1, Figure 7c): a chunking kernel then a
    /// merge kernel. The number of chunking blocks per array is a *launch
    /// parameter* computed from the actual input by the runtime
    /// kernel-management unit ([`pick_initial_blocks`]), not part of the
    /// compiled variant.
    TwoKernel { block_dim: u32 },
    /// Single-kernel scheme (Figure 7b): `arrays_per_block` arrays per
    /// block (>1 = horizontal thread integration).
    OneKernel {
        arrays_per_block: usize,
        block_dim: u32,
    },
    /// One thread reduces one whole array serially (the TMV case study's
    /// fifth kernel: many very short rows). Lowered as a map over firings
    /// with a restructured (array-major) input so loads stay coalesced.
    ThreadPerArray { block_dim: u32 },
}

impl ReduceChoice {
    /// Human-readable label for reports.
    pub fn label(&self) -> String {
        match self {
            ReduceChoice::TwoKernel { .. } => "two-kernel".to_string(),
            ReduceChoice::OneKernel {
                arrays_per_block, ..
            } => format!("one-kernel({arrays_per_block} arrays/block)"),
            ReduceChoice::ThreadPerArray { .. } => "thread-per-array".to_string(),
        }
    }
}

/// Pick the number of chunking blocks for the two-kernel scheme: enough to
/// fill the device a couple of waves over, but never more blocks than
/// there are thread-sized chunks.
pub fn pick_initial_blocks(
    device: &DeviceSpec,
    n_arrays: usize,
    n_elements: usize,
    block_dim: u32,
) -> usize {
    let target_blocks = (device.sm_count * device.max_blocks_per_sm) as usize * 2;
    let per_array = target_blocks.div_ceil(n_arrays.max(1));
    let max_useful = n_elements.div_ceil(block_dim as usize).max(1);
    per_array.clamp(1, max_useful).min(256)
}

/// Estimated time (µs) of a reduction under a given choice.
#[allow(clippy::too_many_arguments)]
pub fn reduce_choice_time(
    device: &DeviceSpec,
    choice: ReduceChoice,
    n_arrays: usize,
    n_elements: usize,
    pops_per_elem: usize,
    state_per_elem: f64,
    compute_per_elem: f64,
    layout: Layout,
) -> f64 {
    match choice {
        ReduceChoice::OneKernel {
            arrays_per_block,
            block_dim,
        } => {
            let p = single_reduce_profile(
                device,
                n_arrays,
                n_elements,
                pops_per_elem,
                state_per_elem,
                compute_per_elem,
                arrays_per_block,
                block_dim,
                layout,
            );
            estimate(device, &p).time_us
        }
        ReduceChoice::ThreadPerArray { block_dim } => {
            let p = crate::cost::map_profile(
                device,
                n_arrays,
                n_elements * pops_per_elem,
                1,
                state_per_elem * n_elements as f64,
                compute_per_elem * n_elements as f64,
                (1 + pops_per_elem) as f64 * n_elements as f64,
                Layout::Transposed,
                Layout::RowMajor,
                1,
                block_dim,
            );
            estimate(device, &p).time_us
        }
        ReduceChoice::TwoKernel { block_dim } => {
            let initial_blocks = pick_initial_blocks(device, n_arrays, n_elements, block_dim);
            let init = initial_reduce_profile(
                device,
                n_arrays,
                n_elements,
                pops_per_elem,
                state_per_elem,
                compute_per_elem,
                initial_blocks,
                block_dim,
                layout,
            );
            let merge_block = (initial_blocks.next_power_of_two().max(32) as u32).min(256);
            let merge = single_reduce_profile(
                device,
                n_arrays,
                initial_blocks,
                1,
                0.0,
                1.0,
                1,
                merge_block,
                Layout::RowMajor,
            );
            estimate(device, &init).time_us + estimate(device, &merge).time_us
        }
    }
}

/// Enumerate the reduction-lowering candidates for a shape.
pub fn reduce_candidates(
    device: &DeviceSpec,
    n_arrays: usize,
    n_elements: usize,
) -> Vec<ReduceChoice> {
    let mut out = Vec::new();
    for block_dim in [128u32, 256] {
        // With one chunk per array the two-kernel scheme degenerates into
        // the one-kernel scheme plus a useless merge pass — never offer it.
        if pick_initial_blocks(device, n_arrays, n_elements, block_dim) > 1 {
            out.push(ReduceChoice::TwoKernel { block_dim });
        }
        for apb in [1usize, 2, 4, 8] {
            if apb <= n_arrays.max(1) && block_dim as usize / apb >= 32 {
                out.push(ReduceChoice::OneKernel {
                    arrays_per_block: apb,
                    block_dim,
                });
            }
        }
    }
    out.push(ReduceChoice::ThreadPerArray { block_dim: 256 });
    out
}

/// The best choice for a shape (used by single-point compilation and by
/// the range partitioner as one of its cost closures).
#[allow(clippy::too_many_arguments)]
pub fn best_reduce_choice(
    device: &DeviceSpec,
    n_arrays: usize,
    n_elements: usize,
    pops_per_elem: usize,
    state_per_elem: f64,
    compute_per_elem: f64,
    layout: Layout,
) -> (ReduceChoice, f64) {
    reduce_candidates(device, n_arrays, n_elements)
        .into_iter()
        .map(|c| {
            (
                c,
                reduce_choice_time(
                    device,
                    c,
                    n_arrays,
                    n_elements,
                    pops_per_elem,
                    state_per_elem,
                    compute_per_elem,
                    layout,
                ),
            )
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("candidate list is never empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn device() -> DeviceSpec {
        DeviceSpec::tesla_c2050()
    }

    #[test]
    fn initial_blocks_bounded_by_chunks() {
        let d = device();
        assert_eq!(pick_initial_blocks(&d, 1, 100, 256), 1);
        let big = pick_initial_blocks(&d, 1, 1 << 22, 256);
        assert!(big >= d.sm_count as usize);
        assert!(big <= 256);
        // Many arrays need few blocks each.
        assert_eq!(pick_initial_blocks(&d, 10_000, 1 << 22, 256), 1);
    }

    #[test]
    fn one_huge_array_prefers_two_kernel() {
        let d = device();
        let (choice, _) = best_reduce_choice(&d, 1, 1 << 22, 1, 0.0, 3.0, Layout::RowMajor);
        assert!(
            matches!(choice, ReduceChoice::TwoKernel { .. }),
            "{choice:?}"
        );
    }

    #[test]
    fn many_arrays_prefer_one_kernel() {
        let d = device();
        let (choice, _) = best_reduce_choice(&d, 8192, 512, 1, 0.0, 3.0, Layout::RowMajor);
        assert!(
            matches!(choice, ReduceChoice::OneKernel { .. }),
            "{choice:?}"
        );
    }

    #[test]
    fn tiny_rows_get_thread_integration() {
        // Huge number of very short arrays: best served by packing several
        // arrays per block.
        let d = device();
        let (choice, _) = best_reduce_choice(&d, 1 << 18, 32, 1, 0.0, 3.0, Layout::RowMajor);
        match choice {
            ReduceChoice::OneKernel {
                arrays_per_block, ..
            } => assert!(arrays_per_block > 1, "expected thread integration"),
            ReduceChoice::ThreadPerArray { .. } => {} // even stronger packing
            other => panic!("expected packed lowering, got {other:?}"),
        }
    }

    #[test]
    fn candidates_are_valid_shapes() {
        let d = device();
        for c in reduce_candidates(&d, 64, 4096) {
            match c {
                ReduceChoice::OneKernel {
                    arrays_per_block,
                    block_dim,
                } => {
                    assert!((block_dim as usize).is_multiple_of(arrays_per_block));
                    assert!((block_dim as usize / arrays_per_block).is_power_of_two());
                }
                ReduceChoice::TwoKernel { block_dim } => {
                    assert!(block_dim.is_power_of_two())
                }
                ReduceChoice::ThreadPerArray { block_dim } => {
                    assert!(block_dim.is_power_of_two());
                }
            }
        }
    }

    #[test]
    fn labels_are_descriptive() {
        let c = ReduceChoice::OneKernel {
            arrays_per_block: 4,
            block_dim: 256,
        };
        assert!(c.label().contains("one-kernel"));
    }
}
