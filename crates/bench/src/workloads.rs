//! Phase-change workload generators: seed-deterministic traffic traces
//! that stress the adaptive loop end to end.
//!
//! Each generator returns a sequence of per-firing input sizes (rates).
//! Everything is driven by a splitmix-style LCG seeded by the caller, so a
//! trace is reproducible from `(shape parameters, seed)` alone — the drift
//! stress suite replays the same trace against adaptive, static and
//! always-replan systems and compares outputs bit for bit.
//!
//! Three phase-change shapes:
//!
//! * [`diurnal`] — a smooth log-space ramp up and back down per period,
//!   like a day/night load curve, with multiplicative jitter;
//! * [`bursty`] — a steady base regime interrupted by deterministic
//!   bursts of heavy sizes;
//! * [`regime_flip`] — abrupt switches between size regimes every `dwell`
//!   firings, the adversarial case for a rate-conditioned plan.

/// The repo-wide 64-bit LCG (same constants as `data`), exposed as a
/// stateful generator for workload shaping.
#[derive(Debug, Clone)]
pub struct Lcg(u64);

impl Lcg {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Lcg {
        Lcg(seed)
    }

    /// Next raw 64-bit state-derived value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() & ((1 << 31) - 1)) as f64 / (1u64 << 31) as f64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        lo + (self.next_u64() as i64).rem_euclid(hi - lo + 1)
    }

    /// Log-uniform integer in `[lo, hi]` (inclusive): sizes spread evenly
    /// across orders of magnitude, the natural distribution for input
    /// sizes.
    pub fn log_range(&mut self, lo: i64, hi: i64) -> i64 {
        let (lo, hi) = (lo.min(hi).max(1), lo.max(hi).max(1));
        let (llo, lhi) = ((lo as f64).ln(), (hi as f64).ln());
        let v = (llo + (lhi - llo) * self.next_f64()).exp().round() as i64;
        v.clamp(lo, hi)
    }
}

/// A diurnal ramp: sizes sweep smoothly from `lo` up to `hi` and back over
/// each `period` firings (cosine in log space), with `±jitter`
/// multiplicative noise. `firings` sizes total; deterministic in `seed`.
pub fn diurnal(
    firings: usize,
    lo: i64,
    hi: i64,
    period: usize,
    jitter: f64,
    seed: u64,
) -> Vec<i64> {
    let (lo, hi) = (lo.min(hi).max(1), lo.max(hi).max(1));
    let period = period.max(2);
    let (llo, lhi) = ((lo as f64).ln(), (hi as f64).ln());
    let mut rng = Lcg::new(seed);
    (0..firings)
        .map(|t| {
            let phase = (t % period) as f64 / period as f64;
            let level = 0.5 - 0.5 * (2.0 * std::f64::consts::PI * phase).cos();
            let base = (llo + (lhi - llo) * level).exp();
            let j = 1.0 + jitter * (2.0 * rng.next_f64() - 1.0);
            ((base * j).round() as i64).clamp(lo, hi)
        })
        .collect()
}

/// A bursty mix: sizes sit in the `base` regime, except that every
/// `burst_every` firings a burst of `burst_len` firings draws from the
/// `burst` regime. Regimes are inclusive `(lo, hi)` ranges sampled
/// log-uniformly; deterministic in `seed`.
pub fn bursty(
    firings: usize,
    base: (i64, i64),
    burst: (i64, i64),
    burst_every: usize,
    burst_len: usize,
    seed: u64,
) -> Vec<i64> {
    let burst_every = burst_every.max(1);
    let mut rng = Lcg::new(seed);
    (0..firings)
        .map(|t| {
            let in_burst = t % burst_every < burst_len.min(burst_every);
            let (lo, hi) = if in_burst { burst } else { base };
            rng.log_range(lo, hi)
        })
        .collect()
}

/// A regime-flip mix: traffic dwells in one size regime for `dwell`
/// firings, then abruptly flips to the next (round-robin over `regimes`).
/// Sizes are log-uniform within the active regime; deterministic in
/// `seed`. This is the adversarial trace for a rate-conditioned plan —
/// every flip leaves the planned window at once.
pub fn regime_flip(firings: usize, regimes: &[(i64, i64)], dwell: usize, seed: u64) -> Vec<i64> {
    assert!(!regimes.is_empty(), "regime_flip needs at least one regime");
    let dwell = dwell.max(1);
    let mut rng = Lcg::new(seed);
    (0..firings)
        .map(|t| {
            let (lo, hi) = regimes[(t / dwell) % regimes.len()];
            rng.log_range(lo, hi)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_seed_deterministic() {
        assert_eq!(
            diurnal(64, 256, 65536, 16, 0.1, 7),
            diurnal(64, 256, 65536, 16, 0.1, 7)
        );
        assert_eq!(
            bursty(64, (256, 1024), (32768, 65536), 16, 4, 7),
            bursty(64, (256, 1024), (32768, 65536), 16, 4, 7)
        );
        assert_eq!(
            regime_flip(64, &[(256, 1024), (32768, 65536)], 8, 7),
            regime_flip(64, &[(256, 1024), (32768, 65536)], 8, 7)
        );
        // Different seeds change the jittered/sampled values.
        assert_ne!(
            bursty(64, (256, 1024), (32768, 65536), 16, 4, 7),
            bursty(64, (256, 1024), (32768, 65536), 16, 4, 8)
        );
    }

    #[test]
    fn diurnal_ramps_within_bounds_and_peaks_mid_period() {
        let trace = diurnal(32, 256, 65536, 32, 0.0, 1);
        assert!(trace.iter().all(|&x| (256..=65536).contains(&x)));
        // Zero jitter: the mid-period firing is the peak of the ramp.
        let peak = trace[16];
        assert!(trace.iter().all(|&x| x <= peak));
        assert!(trace[0] < peak / 8, "period starts near the trough");
    }

    #[test]
    fn bursty_separates_base_and_burst() {
        let trace = bursty(64, (256, 512), (32768, 65536), 16, 4, 3);
        for (t, &x) in trace.iter().enumerate() {
            if t % 16 < 4 {
                assert!((32768..=65536).contains(&x), "firing {t} in burst: {x}");
            } else {
                assert!((256..=512).contains(&x), "firing {t} in base: {x}");
            }
        }
    }

    #[test]
    fn regime_flip_dwells_then_switches() {
        let regimes = [(256i64, 1024i64), (32768, 65536)];
        let trace = regime_flip(40, &regimes, 10, 9);
        for (t, &x) in trace.iter().enumerate() {
            let (lo, hi) = regimes[(t / 10) % 2];
            assert!((lo..=hi).contains(&x), "firing {t} outside regime: {x}");
        }
    }

    #[test]
    fn log_range_is_bounded_and_covers_decades() {
        let mut rng = Lcg::new(5);
        let mut small = 0usize;
        for _ in 0..512 {
            let v = rng.log_range(16, 1 << 16);
            assert!((16..=(1 << 16)).contains(&v));
            if v < 1 << 10 {
                small += 1;
            }
        }
        // Log-uniform: roughly half the samples fall below the geometric
        // midpoint (2^10 of [2^4, 2^16]); a uniform sampler would put
        // ~1.5% there.
        assert!(small > 128, "only {small}/512 below the geometric mid");
    }
}
