//! Drift figure: a regime-flip traffic mix through three serving systems,
//! demonstrating that rate-conditioned re-scheduling with hysteresis beats
//! both a static plan and eager always-replanning.
//!
//! The workload is the adversarial trace for a rate-conditioned plan: the
//! per-firing input size dwells in one regime (tiny reductions), then
//! abruptly flips to another (huge reductions), round-robin, for the whole
//! trace (see [`adaptic_bench::workloads::regime_flip`]). All three
//! systems are the *same* [`adaptic::DynamicRegion`] machinery — only the
//! hysteresis policy differs:
//!
//! * `static_plan` — the governor never proposes; the startup-window plan
//!   serves every firing, the off-regime half through clamped (mis-tuned)
//!   variant selection;
//! * `always_replan` — hysteresis disabled (streak 1, no cooldown, unit
//!   spread, no artifact store): every window exit re-plans immediately;
//! * `adaptive` — the default hysteresis plus an artifact store, so a
//!   regime revisit re-proposes the identical quantized window and the
//!   re-plan resolves from the store instead of compiling.
//!
//! Cost per system = simulated device+host µs of every firing **plus**
//! wall-clock µs spent planning (initial compile and every re-plan), so
//! re-scheduling pays for its own compiles in the figure of merit.
//!
//! With `--assert` the process exits non-zero unless adaptive beats the
//! static plan by `MARGIN` and always-replan costs more than adaptive; the
//! CI `drift` job runs exactly that. Writes `results/BENCH_drift.json`
//! and `results/drift_adaptivity.txt`. Seed comes from
//! `ADAPTIC_DRIFT_SEED` (default 42).

use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

use adaptic::{ArtifactStore, CompileOptions, DynamicRegion, ExecMode, ReschedPolicy, RunOptions};
use adaptic_apps::programs;
use adaptic_bench::workloads::regime_flip;
use adaptic_bench::{bench_json, data, sweep_opts, BenchRecord};
use gpu_sim::DeviceSpec;
use streamir::{Program, RateInterval};

/// Required mean-cost advantage of adaptive over the static plan.
const MARGIN: f64 = 1.3;
/// Output sanity bound against the host reference, per firing.
const REL_TOL: f64 = 1e-3;
const FIRINGS: usize = 192;
const DWELL: usize = 24;
/// Tiny and huge size regimes; every flip leaves any one planned window.
/// The tiny regime is capped at 512 so a startup window quantized around
/// it (spread 4) stays below the reduction's structure boundary — the
/// static plan's clamped variant is genuinely mis-tuned for the huge
/// regime.
const REGIMES: [(i64, i64); 2] = [(256, 512), (1 << 15, 1 << 17)];
/// Declared dynamic interval on the reduction's rate parameter.
const DECLARED: (i64, i64) = (256, 1 << 18);

fn seed() -> u64 {
    match std::env::var("ADAPTIC_DRIFT_SEED") {
        Err(_) => 42,
        Ok(raw) => {
            let raw = raw.trim();
            let parsed =
                if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
                    u64::from_str_radix(hex, 16)
                } else {
                    raw.parse()
                };
            parsed.unwrap_or_else(|_| panic!("bad ADAPTIC_DRIFT_SEED: {raw:?}"))
        }
    }
}

/// The paper's `sasum` reduction with its rate parameter declared dynamic.
fn dynamic_sasum() -> Program {
    let mut p = programs::sasum().program;
    let interval = RateInterval::new(DECLARED.0, DECLARED.1).expect("declared interval");
    let asum = p
        .actors
        .iter_mut()
        .find(|a| a.name == "Asum")
        .expect("sasum has the Asum actor");
    asum.dyn_rates.insert("N".into(), interval);
    p
}

struct Outcome {
    serve_us: f64,
    plan_us: f64,
    plans: u64,
    exits: u64,
    clamped: u64,
    max_rel_err: f64,
}

impl Outcome {
    fn total_us(&self) -> f64 {
        self.serve_us + self.plan_us
    }
}

/// Serve the whole trace through one region configured by `policy`.
fn drive(
    program: &Program,
    trace: &[i64],
    input: &[f32],
    policy: ReschedPolicy,
    store: Option<Arc<ArtifactStore>>,
) -> Outcome {
    let device = DeviceSpec::tesla_c2050();
    // SampledStats: full execution (outputs are exact, checked against the
    // host reference) with sampled launch accounting.
    let opts = RunOptions {
        mode: ExecMode::SampledStats(256),
        ..sweep_opts()
    };
    let mut region = DynamicRegion::new(
        program,
        &device,
        CompileOptions::default(),
        policy,
        trace[0],
        store,
    )
    .expect("region plans");
    let (mut serve_us, mut max_rel_err) = (0.0f64, 0.0f64);
    for &x in trace {
        let slice = &input[..x as usize];
        let rep = region.run(x, slice, &[], opts).expect("firing serves");
        serve_us += rep.time_us + rep.host_time_us;
        let expected: f64 = slice.iter().map(|v| v.abs() as f64).sum();
        let got = rep.output[0] as f64;
        max_rel_err = max_rel_err.max((got - expected).abs() / expected.abs().max(1.0));
    }
    Outcome {
        serve_us,
        plan_us: region.plan_wall_us(),
        plans: 1 + region.reschedules(),
        exits: region.governor().exits(),
        clamped: region.clamped_runs(),
        max_rel_err,
    }
}

fn main() -> ExitCode {
    let assert_mode = std::env::args().any(|a| a == "--assert");
    let seed = seed();
    let program = dynamic_sasum();
    let trace = regime_flip(FIRINGS, &REGIMES, DWELL, seed);
    let input = data(DECLARED.1 as usize, 7);

    let static_policy = ReschedPolicy {
        exit_streak: u32::MAX, // the governor never arms
        ..ReschedPolicy::default()
    };
    let eager_policy = ReschedPolicy {
        exit_streak: 1,
        cooldown: 0,
        spread: 1.0,
        ..ReschedPolicy::default()
    };
    let store_dir = std::env::temp_dir().join(format!("adaptic_drift_{}", std::process::id()));
    let store = Arc::new(ArtifactStore::new(&store_dir));

    let systems: [(&str, ReschedPolicy, Option<Arc<ArtifactStore>>); 3] = [
        ("static_plan", static_policy, None),
        ("always_replan", eager_policy, None),
        ("adaptive", ReschedPolicy::default(), Some(store)),
    ];

    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Regime-flip drift: {FIRINGS} firings, dwell {DWELL}, regimes {:?}, seed {seed} ===\n",
        REGIMES
    );
    let mut records: Vec<BenchRecord> = Vec::new();
    let mut outcomes: Vec<(&str, Outcome)> = Vec::new();
    for (name, policy, store) in systems {
        let o = drive(&program, &trace, &input, policy, store);
        let _ = writeln!(
            out,
            "{name:>14}: total {:>10.1} us  (serve {:>10.1} us + plan {:>8.1} us)  \
             {:>3} plans  {:>3} window exits  {:>3} clamped firings  rel err {:.1e}",
            o.total_us(),
            o.serve_us,
            o.plan_us,
            o.plans,
            o.exits,
            o.clamped,
            o.max_rel_err
        );
        records.push(BenchRecord {
            name: name.into(),
            mean_ns: o.total_us() * 1000.0,
            min_ns: o.serve_us * 1000.0,
            max_ns: o.total_us() * 1000.0,
            speedup: None,
        });
        outcomes.push((name, o));
    }
    std::fs::remove_dir_all(&store_dir).ok();
    let baseline = records[0].clone();
    for r in records.iter_mut().skip(1) {
        *r = r.clone().vs(&baseline);
    }
    let static_total = outcomes[0].1.total_us();
    let eager_total = outcomes[1].1.total_us();
    let adaptive = &outcomes[2].1;
    let _ = writeln!(
        out,
        "\nadaptive vs static: {:.2}x (need >= {MARGIN}x)   adaptive vs always-replan: {:.2}x",
        static_total / adaptive.total_us(),
        eager_total / adaptive.total_us()
    );

    print!("{out}");
    let results = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("results dir");
    std::fs::write(results.join("drift_adaptivity.txt"), &out).expect("write drift_adaptivity");
    let json = bench_json("drift", &records).expect("write BENCH_drift.json");
    println!("wrote {}", json.display());

    if assert_mode {
        if adaptive.total_us() * MARGIN > static_total {
            eprintln!(
                "FAIL: adaptive {:.1} us does not beat static {static_total:.1} us by {MARGIN}x",
                adaptive.total_us()
            );
            return ExitCode::FAILURE;
        }
        if eager_total <= adaptive.total_us() {
            eprintln!(
                "FAIL: always-replan {eager_total:.1} us not the upper-overhead baseline \
                 (adaptive {:.1} us)",
                adaptive.total_us()
            );
            return ExitCode::FAILURE;
        }
        if adaptive.plans < 2 {
            eprintln!("FAIL: adaptive never re-planned across the regime flips");
            return ExitCode::FAILURE;
        }
        if let Some((name, o)) = outcomes.iter().find(|(_, o)| o.max_rel_err > REL_TOL) {
            eprintln!(
                "FAIL: {name} rel err {:.2e} above {REL_TOL:.0e}",
                o.max_rel_err
            );
            return ExitCode::FAILURE;
        }
        println!(
            "asserts hold: adaptive {:.2}x over static, always-replan pays {:.2}x adaptive",
            static_total / adaptive.total_us(),
            eager_total / adaptive.total_us()
        );
    }
    ExitCode::SUCCESS
}
