//! Target portability (§5.2.2's two-GPU claim, extended): the *same*
//! streaming source compiled for three device generations, showing that
//! variant choices adapt to each target's architectural parameters while
//! staying ahead of the input-unaware baseline everywhere.

use adaptic::{compile, compile_with_options, CompileOptions, InputAxis};
use adaptic_bench::{data, header, row, scale, size_label, sweep_mode};
use gpu_sim::DeviceSpec;
use streamir::parse::parse_program;

fn main() {
    header("Target portability: one source, three GPU generations");
    let program = parse_program(
        r#"pipeline SumSq(N) {
            actor Square(pop 1, push 1) {
                x = pop();
                push(x * x);
            }
            actor Sum(pop N, push 1) {
                acc = 0.0;
                for i in 0..N { acc = acc + pop(); }
                push(acc);
            }
        }"#,
    )
    .unwrap();
    let widths = [18usize, 10, 12, 12, 10, 30];
    println!(
        "{}",
        row(
            &[
                "device".into(),
                "N".into(),
                "unaware(us)".into(),
                "adaptic(us)".into(),
                "speedup".into(),
                "chosen reduction".into(),
            ],
            &widths
        )
    );
    for device in [
        DeviceSpec::tesla_c2050(),
        DeviceSpec::gtx285(),
        DeviceSpec::gtx480(),
    ] {
        let axis = InputAxis::total_size("N", 256, (8 << 20) as i64);
        let aware = compile(&program, &device, &axis).expect("compile");
        let unaware = compile_with_options(&program, &device, &axis, CompileOptions::baseline())
            .expect("baseline compile");
        for n in [1usize << 12, 1 << 17, (8 << 20) / scale()] {
            let input = data(n, 3);
            let ra = aware
                .run_with(n as i64, &input, &[], sweep_mode())
                .expect("run aware");
            let ru = unaware
                .run_with(n as i64, &input, &[], sweep_mode())
                .expect("run unaware");
            let (_, v) = aware.variant_for(n as i64);
            let choice = v
                .choices
                .iter()
                .find_map(|c| match c {
                    adaptic::SegChoice::Reduce { choice } => Some(choice.label()),
                    _ => None,
                })
                .unwrap_or_default();
            println!(
                "{}",
                row(
                    &[
                        device.name.clone(),
                        size_label(n),
                        format!("{:.1}", ru.time_us),
                        format!("{:.1}", ra.time_us),
                        format!("{:.2}x", ru.time_us / ra.time_us.max(1e-9)),
                        choice,
                    ],
                    &widths
                )
            );
        }
        println!(
            "  -> {} variants for {}; sustained across the range without re-tuning\n",
            aware.variant_count(),
            device.name
        );
    }
}
