//! Kernel-management-unit demo: the analytical model deliberately
//! mispredicts a break-even point, and the online KMU walks the boundary
//! back to where measurement says it belongs.
//!
//! The model's prediction of variant 0's cost is skewed 5x low, so the
//! planner-style boundary rebuild overextends variant 0's sub-range deep
//! into its neighbor's territory. Launches in the disputed region then
//! measure 5x worse than predicted; once the per-variant histogram has
//! enough disagreeing samples, recalibration re-locates the break-even
//! from the measurement-corrected curves and the selector flips to the
//! measured-faster variant. The closing telemetry dump is the proof:
//! recalibration moves, per-variant selections, and the model's mean
//! error, straight from the counters.
//!
//! ```sh
//! cargo run --release --bin kmu_demo
//! ```

use adaptic::{compile, ExecMode, InputAxis, KernelManager, RunOptions};
use adaptic_bench::{data, header};
use gpu_sim::DeviceSpec;
use streamir::parse::parse_program;

fn main() {
    header("KMU: measured-feedback recalibration of a mispredicted break-even");
    let program = parse_program(
        r#"pipeline Sum(N) {
            actor Sum(pop N, push 1) {
                acc = 0.0;
                for i in 0..N { acc = acc + pop(); }
                push(acc);
            }
        }"#,
    )
    .expect("parse Sum");
    let device = DeviceSpec::tesla_c2050();
    let axis = InputAxis::total_size("N", 64, 1 << 20);
    let compiled = compile(&program, &device, &axis).expect("compile Sum");
    assert!(compiled.variant_count() >= 2, "need a boundary to move");

    let honest: Vec<(i64, i64)> = compiled.variants.iter().map(|v| (v.lo, v.hi)).collect();
    let true_boundary = honest[1].0;

    // Skew the model: variant 0 predicted 5x cheaper than it measures.
    let mut skews = vec![1.0; compiled.variant_count()];
    skews[0] = 0.2;
    let kmu = KernelManager::new(compiled)
        .with_min_samples(3)
        .with_model_skew(skews);
    let skewed_boundary = kmu.telemetry().boundaries[1].0;
    println!("honest boundary v0|v1 : {true_boundary}");
    println!("mispredicted boundary : {skewed_boundary} (variant 0 overextended)\n");

    // Launch repeatedly in the disputed region and watch the selector.
    let x = ((true_boundary as f64) * (skewed_boundary as f64)).sqrt() as i64;
    let input = data(x as usize, 7);
    let opts = RunOptions::serial(ExecMode::SampledStats(32));
    println!("launching at N = {x} (model says v0, measurement says v1):");
    for launch in 0..8 {
        let rep = kmu.run(x, &input, &[], opts).expect("kmu run");
        let snap = rep.telemetry.as_ref().expect("kmu attaches telemetry");
        println!(
            "  launch {launch}: variant v{} ({:9.1} us measured), boundary at {}, {} moves",
            rep.variant_index,
            rep.time_us + rep.host_time_us,
            snap.boundaries[1].0,
            snap.recalibration_moves
        );
    }

    println!("\nfinal telemetry:\n{}", kmu.telemetry());
    let snap = kmu.telemetry();
    assert!(snap.recalibration_moves >= 1, "demo must recalibrate");
    assert!(
        snap.boundaries[1].0 <= x,
        "boundary must hand the disputed region to variant 1"
    );
    println!(
        "converged: boundary {} -> {} (honest {}), model error seen {:.0}%",
        skewed_boundary,
        snap.boundaries[1].0,
        true_boundary,
        snap.mean_model_error * 100.0
    );
}
