//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. memory restructuring vs shared-memory staging vs nothing (coalesce);
//! 2. reuse-metric super-tile selection vs fixed small tiles;
//! 3. one-kernel vs two-kernel reduction across the array-count spectrum;
//! 4. the warp-tail (L2) loop vs full-barrier tree reduction;
//! 5. thread-coarsening factor sweep.

use adaptic::analysis::reduction::CombineOp;
use adaptic::layout::{restructure, Layout};
use adaptic::templates::{two_kernel_reduce, MapKernel, ReduceSpec, SingleKernelReduce};
use adaptic_bench::{data, header, scale};
use gpu_sim::{launch, DeviceSpec, ExecMode, GlobalMem, Kernel};
use perfmodel::estimate_stats;
use streamir::graph::bindings;
use streamir::parse::parse_program;

fn time_of(device: &DeviceSpec, mem: &mut GlobalMem, k: &dyn gpu_sim::Kernel) -> f64 {
    let stats = launch(device, mem, k, ExecMode::SampledExec(256));
    estimate_stats(device, &stats).time_us
}

fn main() {
    header("Ablations");
    let device = DeviceSpec::tesla_c2050();
    let n = (1usize << 20) / scale();

    // 1. Coalescing strategies on a pop-8 map.
    {
        let src = r#"pipeline P(N) {
            actor M(pop 8, push 8) {
                a = pop(); b = pop(); c = pop(); d = pop();
                e = pop(); f = pop(); g = pop(); h = pop();
                push(a + h); push(b + g); push(c + f); push(d + e);
                push(a - h); push(b - g); push(c - f); push(d - e);
            }
        }"#;
        let program = parse_program(src).unwrap();
        let body = program.actors[0].work.body.clone();
        let input = data(n, 1);
        let units = n / 8;
        println!("--- ablation 1: coalescing a pop-8 map ({units} units) ---");
        for (name, layout, staged, input_data) in [
            (
                "row-major (uncoalesced)",
                Layout::RowMajor,
                false,
                input.clone(),
            ),
            (
                "shared staging (4.1.1 alt)",
                Layout::RowMajor,
                true,
                input.clone(),
            ),
            (
                "restructured (4.1.1)",
                Layout::Transposed,
                false,
                restructure(&input, 8),
            ),
        ] {
            let mut mem = GlobalMem::new();
            let in_buf = mem.alloc_from(&input_data);
            let out_buf = mem.alloc(n);
            let k = MapKernel::new(
                "m",
                body.clone(),
                bindings(&[]),
                None,
                units,
                8,
                8,
                in_buf,
                out_buf,
            )
            .with_layouts(layout, layout)
            .with_staging(staged)
            .with_block_dim(if staged { 128 } else { 256 });
            println!("  {name:28} {:9.1} us", time_of(&device, &mut mem, &k));
        }
    }

    // 2. Super-tile sizing for a five-point stencil.
    {
        let side = 1024usize / scale().clamp(1, 4);
        let src = r#"pipeline P(rows, cols) {
            actor S(pop rows*cols, push rows*cols, peek rows*cols) {
                for idx in 0..rows*cols {
                    r = idx / cols;
                    c = idx % cols;
                    if (r > 0 && r < rows - 1 && c > 0 && c < cols - 1) {
                        push(0.25 * (peek(idx - 1) + peek(idx + 1)
                            + peek(idx - cols) + peek(idx + cols)));
                    } else {
                        push(peek(idx));
                    }
                }
            }
        }"#;
        let program = parse_program(src).unwrap();
        let pat = adaptic::analysis::detect_stencil(&program.actors[0]).unwrap();
        let (hr, hc) = pat.halo();
        let chosen = adaptic::opt::choose_tile(&device, side, side, hr as usize, hc as usize, 5);
        println!("--- ablation 2: super-tile shapes, {side}x{side} five-point ---");
        let input = data(side * side, 2);
        for (name, tile) in [
            ("fixed 8x8", (8usize, 8usize)),
            ("fixed 32x4", (32, 4)),
            ("reuse-metric choice", chosen),
        ] {
            let mut mem = GlobalMem::new();
            let in_buf = mem.alloc_from(&input);
            let out_buf = mem.alloc(side * side);
            let k = adaptic::templates::StencilKernel::new(
                "s",
                pat.body.clone(),
                &pat.loop_var,
                bindings(&[("rows", side as i64), ("cols", side as i64)]),
                side,
                side,
                tile.0,
                tile.1,
                hr as usize,
                hc as usize,
                in_buf,
                out_buf,
            );
            println!(
                "  {name:28} tile {:>3}x{:<3} {:9.1} us",
                tile.0,
                tile.1,
                time_of(&device, &mut mem, &k)
            );
        }
    }

    // 3. Reduction scheme across the array-count spectrum.
    {
        println!("--- ablation 3: one- vs two-kernel reduction, {n} total elements ---");
        println!(
            "  {:>10} {:>12} {:>12}",
            "arrays", "one-kernel", "two-kernel"
        );
        let input = data(n, 3);
        for n_arrays in [1usize, 16, 256, 4096] {
            let n_elements = n / n_arrays;
            let mut one_mem = GlobalMem::new();
            let in1 = one_mem.alloc_from(&input);
            let out1 = one_mem.alloc(n_arrays);
            let one = SingleKernelReduce {
                spec: ReduceSpec::raw(CombineOp::Add, bindings(&[])),
                name: "one".into(),
                n_arrays,
                n_elements,
                arrays_per_block: 1,
                block_dim: 256,
                in_buf: in1,
                in_layout: Layout::RowMajor,
                out_buf: out1,
                apply_post: true,
                out_stride: 1,
                out_offset: 0,
            };
            let t_one = time_of(&device, &mut one_mem, &one);

            let blocks =
                adaptic::opt::pick_initial_blocks(&device, n_arrays, n_elements, 256).max(2);
            let mut two_mem = GlobalMem::new();
            let in2 = two_mem.alloc_from(&input);
            let partials = two_mem.alloc(n_arrays * blocks);
            let out2 = two_mem.alloc(n_arrays);
            let (k1, k2) = two_kernel_reduce(
                ReduceSpec::raw(CombineOp::Add, bindings(&[])),
                n_arrays,
                n_elements,
                blocks,
                256,
                in2,
                Layout::RowMajor,
                partials,
                out2,
            );
            let t_two = time_of(&device, &mut two_mem, &k1) + time_of(&device, &mut two_mem, &k2);
            println!("  {n_arrays:>10} {t_one:>10.1}us {t_two:>10.1}us");
        }
    }

    // 4. Warp-tail (L2) loop: measured as barrier counts of the block tree.
    {
        println!("--- ablation 4: warp-tail reduction (barriers per block) ---");
        let input = data(1 << 16, 4);
        let mut mem = GlobalMem::new();
        let in_buf = mem.alloc_from(&input);
        let out_buf = mem.alloc(1);
        let k = SingleKernelReduce {
            spec: ReduceSpec::raw(CombineOp::Add, bindings(&[])),
            name: "tail".into(),
            n_arrays: 1,
            n_elements: input.len(),
            arrays_per_block: 1,
            block_dim: 256,
            in_buf,
            in_layout: Layout::RowMajor,
            out_buf,
            apply_post: true,
            out_stride: 1,
            out_offset: 0,
        };
        let stats = launch(&device, &mut mem, &k, ExecMode::Full);
        let syncs_per_block = stats.totals.syncs / stats.config.grid_dim as f64;
        // Figure 8's L1 loop barriers: log2(256) - log2(32) = 3 plus the
        // phase barriers; a naive tree would need log2(256) = 8.
        println!(
            "  with warp tail (Fig. 8): {syncs_per_block:.0} barriers/block; naive tree: {} barriers/block",
            (256f64).log2() as u32 + 2
        );
    }

    // 5. Thread-coarsening sweep on a trivial map.
    {
        println!("--- ablation 5: thread coarsening on a pop-1 map ({n} units) ---");
        let src = "pipeline P(N) { actor M(pop 1, push 1) { push(pop() * 1.5 + 2.0); } }";
        let program = parse_program(src).unwrap();
        let input = data(n, 5);
        for coarsen in [1usize, 2, 4, 8, 16, 32] {
            let mut mem = GlobalMem::new();
            let in_buf = mem.alloc_from(&input);
            let out_buf = mem.alloc(n);
            let k = MapKernel::new(
                "m",
                program.actors[0].work.body.clone(),
                bindings(&[]),
                None,
                n,
                1,
                1,
                in_buf,
                out_buf,
            )
            .with_coarsen(coarsen);
            let grid = k.config().grid_dim;
            println!(
                "  coarsen {coarsen:>2}: grid {grid:>6}  {:9.1} us",
                time_of(&device, &mut mem, &k)
            );
        }
    }
}
