//! Figure 1: performance of the input-unaware CUBLAS-style transposed
//! matrix–vector multiplication across matrix shapes at a fixed element
//! count, showing the three regions (low utilization / efficient
//! execution / high overhead).

use adaptic_bench::{data, header, row, scale, size_label, sweep_mode, sweep_policy};
use gpu_sim::DeviceSpec;

fn main() {
    header("Figure 1: CUBLAS-style TMV GFLOPS vs. matrix shape (fixed elements)");
    let device = DeviceSpec::tesla_c2050();
    let total: usize = (4 << 20) / scale();
    let widths = [12usize, 10, 12, 18];
    println!(
        "{}",
        row(
            &[
                "shape".into(),
                "GFLOPS".into(),
                "time(us)".into(),
                "region".into()
            ],
            &widths
        )
    );

    let mut rows_count = 2usize;
    let mut results: Vec<(usize, f64)> = Vec::new();
    while rows_count <= total / 4 {
        let cols = total / rows_count;
        let a = data(rows_count * cols, 1);
        let x = data(cols, 2);
        let run = adaptic_baselines::tmv::tmv_with(
            &device,
            &a,
            &x,
            rows_count,
            cols,
            sweep_mode(),
            sweep_policy(),
            None,
        );
        results.push((rows_count, run.gflops()));
        let region = if rows_count < device.sm_count as usize {
            "low utilization"
        } else if cols <= 64 {
            "high overhead"
        } else {
            "efficient"
        };
        println!(
            "{}",
            row(
                &[
                    format!("{}x{}", size_label(rows_count), size_label(cols)),
                    format!("{:.2}", run.gflops()),
                    format!("{:.1}", run.time_us),
                    region.into(),
                ],
                &widths
            )
        );
        rows_count *= 4;
    }

    // The figure's claim: the middle of the sweep beats both ends by a
    // large factor.
    let peak = results
        .iter()
        .map(|(_, g)| *g)
        .fold(f64::NEG_INFINITY, f64::max);
    let first = results.first().map(|(_, g)| *g).unwrap_or(0.0);
    let last = results.last().map(|(_, g)| *g).unwrap_or(0.0);
    println!(
        "\npeak {:.2} GFLOPS; degradation {:.1}x at the narrow end, {:.1}x at the wide end",
        peak,
        peak / first.max(1e-9),
        peak / last.max(1e-9)
    );
}
