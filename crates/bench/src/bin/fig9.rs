//! Figure 9: Adaptic-generated code speedup over the hand-optimized CUDA
//! baselines across 7 input sizes for the 8 input-sensitive benchmarks.

use adaptic::{compile, CompiledProgram, InputAxis, StateBinding};
use adaptic_apps::programs;
use adaptic_bench::{data, header, row, scale, size_label, sweep_mode, sweep_opts};
use gpu_sim::{DeviceSpec, ExecMode};

struct Point {
    label: String,
    baseline_us: f64,
    adaptic_us: f64,
}

fn speedup_row(name: &str, points: &[Point]) {
    let widths = [24usize, 12, 12, 12, 10];
    for p in points {
        println!(
            "{}",
            row(
                &[
                    format!("{name} {}", p.label),
                    format!("{:.1}", p.baseline_us),
                    format!("{:.1}", p.adaptic_us),
                    format!("{:.2}x", p.baseline_us / p.adaptic_us.max(1e-9)),
                    String::new(),
                ],
                &widths
            )
        );
    }
    let geo: f64 = points
        .iter()
        .map(|p| (p.baseline_us / p.adaptic_us.max(1e-9)).ln())
        .sum::<f64>()
        / points.len() as f64;
    println!("{name}: geometric-mean speedup {:.2}x\n", geo.exp());
}

fn blas_sizes() -> Vec<usize> {
    [
        1 << 10,
        4 << 10,
        16 << 10,
        64 << 10,
        256 << 10,
        1 << 20,
        4 << 20,
    ]
    .into_iter()
    .map(|s: usize| (s / scale()).max(256))
    .collect()
}

fn run_blas1(
    name: &str,
    bench: &adaptic_apps::Bench,
    device: &DeviceSpec,
    zip: bool,
    baseline: impl Fn(&[f32], &[f32], ExecMode) -> f64,
) {
    let sizes = blas_sizes();
    let axis = InputAxis::total_size("N", sizes[0] as i64, *sizes.last().unwrap() as i64);
    let compiled = compile(&bench.program, device, &axis).expect("compile");
    let mut points = Vec::new();
    for &n in &sizes {
        let x = data(n, 3);
        let y = data(n, 4);
        let input = if zip {
            programs::zip2(&x, &y)
        } else {
            x.clone()
        };
        let rep = compiled
            .run_opts(n as i64, &input, &[], sweep_opts(), None)
            .expect("run");
        points.push(Point {
            label: size_label(n),
            baseline_us: baseline(&x, &y, sweep_mode()),
            adaptic_us: rep.time_us,
        });
    }
    speedup_row(name, &points);
}

fn main() {
    header("Figure 9: Adaptic speedup vs hand-optimized code, 7 sizes x 8 benchmarks");
    let device = DeviceSpec::tesla_c2050();
    let widths = [24usize, 12, 12, 12, 10];
    println!(
        "{}",
        row(
            &[
                "benchmark/size".into(),
                "base(us)".into(),
                "adaptic(us)".into(),
                "speedup".into(),
                String::new(),
            ],
            &widths
        )
    );

    // CUBLAS group.
    run_blas1(
        "Isamax/Isamin",
        &programs::isamax(),
        &device,
        false,
        |x, _, m| adaptic_baselines::blas1::isamax_abs(&device, x, m).time_us,
    );
    run_blas1("Snrm2", &programs::snrm2(), &device, false, |x, _, m| {
        adaptic_baselines::blas1::snrm2(&device, x, m).time_us
    });
    run_blas1("Sasum", &programs::sasum(), &device, false, |x, _, m| {
        adaptic_baselines::blas1::sasum(&device, x, m).time_us
    });
    run_blas1("Sdot", &programs::sdot(), &device, true, |x, y, m| {
        adaptic_baselines::blas1::sdot(&device, x, y, m).time_us
    });

    // SDK scalarProd: pairs x elements at fixed total.
    {
        let total = (4 << 20) / scale();
        let bench = programs::scalar_product();
        let t = total as i64;
        let axis = InputAxis::new("pairs", 2, 128, move |pairs| {
            streamir::graph::bindings(&[("E", t / pairs)])
        })
        .with_items(move |_| 2 * t);
        let compiled = compile(&bench.program, &device, &axis).expect("compile scalarProd");
        let mut points = Vec::new();
        let mut pairs = 2usize;
        for _ in 0..7 {
            let elems = total / pairs;
            let x = data(pairs * elems, 5);
            let y = data(pairs * elems, 6);
            let base = adaptic_baselines::sdk::scalar_product(&device, &x, &y, pairs, sweep_mode());
            let rep = compiled
                .run_opts(
                    pairs as i64,
                    &programs::zip2(&x, &y),
                    &[],
                    sweep_opts(),
                    None,
                )
                .expect("run scalarProd");
            points.push(Point {
                label: format!("{}x{}", pairs, size_label(elems)),
                baseline_us: base.time_us,
                adaptic_us: rep.time_us,
            });
            pairs *= 2;
        }
        speedup_row("Scalar Product", &points);
    }

    // SDK MonteCarlo: options x paths at fixed total.
    {
        let total = (256 << 10) / scale();
        let bench = programs::monte_carlo();
        let t = total as i64;
        let axis = InputAxis::new("options", 2, 128, move |options| {
            streamir::graph::bindings(&[("P", t / options)])
        })
        .with_items(move |_| 6 * t);
        let compiled = compile(&bench.program, &device, &axis).expect("compile MonteCarlo");
        let mut points = Vec::new();
        let mut options = 2usize;
        for _ in 0..7 {
            let paths = total / options;
            let params: Vec<f32> = (0..options)
                .flat_map(|i| {
                    vec![
                        90.0 + (i % 20) as f32,
                        95.0,
                        0.5,
                        0.02,
                        0.2 + 0.01 * (i % 10) as f32,
                    ]
                })
                .collect();
            let base =
                adaptic_baselines::sdk::monte_carlo(&device, &params, options, paths, sweep_mode());
            let stream = programs::monte_carlo_stream(&params, options, paths);
            let rep = compiled
                .run_opts(options as i64, &stream, &[], sweep_opts(), None)
                .expect("run MonteCarlo");
            points.push(Point {
                label: format!("{}opt x{}", options, size_label(paths)),
                baseline_us: base.time_us,
                adaptic_us: rep.time_us,
            });
            options *= 2;
        }
        speedup_row("MonteCarlo", &points);
    }

    // SDK oceanFFT + convolutionSeparable: rows x cols at fixed total.
    let grid_shapes: Vec<(usize, usize)> = {
        let total = (4 << 20) / scale();
        let mut rows = 256usize / scale().min(16);
        let mut out = Vec::new();
        for _ in 0..7 {
            out.push((rows, total / rows));
            rows *= 2;
        }
        out
    };

    {
        let bench = programs::ocean();
        let total = grid_shapes[0].0 * grid_shapes[0].1;
        let t = total as i64;
        let (lo, hi) = (
            grid_shapes[0].0 as i64,
            grid_shapes.last().unwrap().0 as i64,
        );
        let axis = InputAxis::new("rows", lo, hi, move |rows| {
            streamir::graph::bindings(&[("rows", rows), ("cols", t / rows)])
        })
        .with_items(move |_| t);
        let compiled = compile(&bench.program, &device, &axis).expect("compile Ocean");
        let mut points = Vec::new();
        for &(rows, cols) in &grid_shapes {
            let spectrum = data(rows * cols, 8);
            let base = adaptic_baselines::sdk::ocean_fft(
                &device,
                &spectrum,
                rows,
                cols,
                2.0,
                sweep_mode(),
            );
            let state = [StateBinding::new("Scale", "amplitude", vec![2.0])];
            let rep = compiled
                .run_opts(rows as i64, &spectrum, &state, sweep_opts(), None)
                .expect("run Ocean");
            points.push(Point {
                label: format!("{}x{}", size_label(rows), size_label(cols)),
                baseline_us: base.time_us,
                adaptic_us: rep.time_us,
            });
        }
        speedup_row("Ocean FFT", &points);
    }

    {
        let bench = programs::convolution_separable();
        let total = grid_shapes[0].0 * grid_shapes[0].1;
        let t = total as i64;
        let (lo, hi) = (
            grid_shapes[0].0 as i64,
            grid_shapes.last().unwrap().0 as i64,
        );
        let axis = InputAxis::new("rows", lo, hi, move |rows| {
            streamir::graph::bindings(&[("rows", rows), ("cols", t / rows)])
        })
        .with_items(move |_| t);
        let compiled = compile(&bench.program, &device, &axis).expect("compile ConvSep");
        let taps: Vec<f32> = (0..17)
            .map(|k| 1.0 / (1.0 + (k as f32 - 8.0).abs()))
            .collect();
        let mut points = Vec::new();
        for &(rows, cols) in &grid_shapes {
            let input = data(rows * cols, 9);
            let base = adaptic_baselines::sdk::convolution_separable(
                &device,
                &input,
                &taps,
                rows,
                cols,
                sweep_mode(),
            );
            let state = [
                StateBinding::new("RowConv", "taps", taps.clone()),
                StateBinding::new("ColConv", "taps", taps.clone()),
            ];
            let rep = compiled
                .run_opts(rows as i64, &input, &state, sweep_opts(), None)
                .expect("run ConvSep");
            points.push(Point {
                label: format!("{}x{}", size_label(rows), size_label(cols)),
                baseline_us: base.time_us,
                adaptic_us: rep.time_us,
            });
        }
        speedup_row("Convolution Separable", &points);
    }

    let _ = CompiledProgram::variant_count;
}
