//! Figure 12: SVM training — Adaptic-compiled trainer relative to the
//! hand-optimized GPUSVM (with its application-specific kernel-row cache)
//! on four datasets and two GPU targets.

use adaptic::CompileOptions;
use adaptic_apps::datasets::svm_datasets;
use adaptic_apps::svm::AdapticSvm;
use adaptic_baselines::gpusvm::{self, SvmConfig};
use adaptic_bench::{header, row, scale, sweep_mode, sweep_opts};
use gpu_sim::DeviceSpec;

fn main() {
    header("Figure 12: SVM training performance relative to GPUSVM");
    let dataset_scale = scale();
    let cfg = SvmConfig {
        iterations: 24,
        cache_rows: 128,
        lr: 0.2,
        ..SvmConfig::default()
    };
    let widths = [8usize, 10, 14, 12, 12, 12, 10];

    for device in [DeviceSpec::tesla_c2050(), DeviceSpec::gtx285()] {
        println!("--- {} ---", device.name);
        println!(
            "{}",
            row(
                &[
                    "set".into(),
                    "n x d".into(),
                    "gpusvm(us)".into(),
                    "hits".into(),
                    "adaptic(us)".into(),
                    "relative".into(),
                    String::new(),
                ],
                &widths
            )
        );
        let mut ratios = Vec::new();
        for ds in svm_datasets(dataset_scale) {
            let base = gpusvm::train(
                &device,
                &ds.data,
                &ds.labels,
                ds.n,
                ds.d,
                &cfg,
                sweep_mode(),
            );
            let svm = AdapticSvm::compile(
                &device,
                64,
                (ds.n as i64).max(128),
                ds.d,
                CompileOptions::default(),
            )
            .expect("compile svm");
            let nocache = SvmConfig {
                cache_rows: 0,
                ..cfg
            };
            let run = svm
                .train_opts(&ds.data, &ds.labels, ds.n, &nocache, sweep_opts())
                .expect("train");
            let relative = base.time_us / run.time_us.max(1e-9);
            ratios.push(relative);
            println!(
                "{}",
                row(
                    &[
                        ds.name.into(),
                        format!("{}x{}", ds.n, ds.d),
                        format!("{:.0}", base.time_us),
                        format!("{}", base.cache_hits),
                        format!("{:.0}", run.time_us),
                        format!("{:.2}", relative),
                        String::new(),
                    ],
                    &widths
                )
            );
        }
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        println!(
            "average Adaptic performance vs GPUSVM: {:.2} (paper: ~0.65)\n",
            avg
        );
    }
}
