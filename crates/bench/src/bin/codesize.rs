//! §5.1 code-size discussion: Adaptic's output binaries carry several
//! kernel versions per actor; the paper reports an average 1.4x (up to
//! 2.5x) size over the input-unaware binaries. We approximate binary size
//! by the emitted CUDA text of every variant, deduplicated per distinct
//! kernel-choice signature.
//!
//! The second table measures the "few fit most" counterweight: per-device
//! plan-artifact bytes before and after variant-set pruning at a 10%
//! overhead tolerance (see `adaptic::fleet`), across the fleet presets.

use std::collections::BTreeSet;

use adaptic::{compile, compile_with_options, CompileOptions, InputAxis};
use adaptic_apps::programs;
use adaptic_bench::{header, row};
use gpu_sim::DeviceSpec;
use perfmodel::prune_variant_set;

fn main() {
    header("Section 5.1: generated code size, Adaptic vs input-unaware");
    let device = DeviceSpec::tesla_c2050();
    let widths = [24usize, 10, 14, 14, 8];
    println!(
        "{}",
        row(
            &[
                "benchmark".into(),
                "variants".into(),
                "adaptic(B)".into(),
                "baseline(B)".into(),
                "ratio".into(),
            ],
            &widths
        )
    );

    let axis = InputAxis::total_size("N", 256, 4 << 20);
    let mut ratios = Vec::new();
    for bench in programs::figure9_benches()
        .into_iter()
        .chain(programs::insensitive_benches())
    {
        // Axes with the right parameter names per benchmark family.
        let axis = match bench.program.params.as_slice() {
            [p] => InputAxis::total_size(p, 256, 4 << 20),
            _ => InputAxis::new("rows", 64, 16 << 10, |x| {
                streamir::graph::bindings(&[("rows", x), ("cols", (4 << 20) / x)])
            }),
        };
        let adaptic = match compile(&bench.program, &device, &axis) {
            Ok(c) => c,
            Err(e) => {
                println!("{:>24}  (skipped: {e})", bench.name);
                continue;
            }
        };
        let baseline =
            compile_with_options(&bench.program, &device, &axis, CompileOptions::baseline())
                .expect("baseline compiles");
        // Deduplicate identical kernel texts: variants differing only in
        // launch parameters share code.
        // Strip the range-comment header so variants that share kernel
        // code (differing only in launch parameters) collapse.
        let strip = |src: String| -> String {
            src.lines()
                .filter(|l| !l.starts_with("/* Adaptic-generated"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let distinct: BTreeSet<String> = adaptic
            .variants
            .iter()
            .map(|v| strip(adaptic::codegen::emit_variant(&adaptic, v)))
            .collect();
        let a_size: usize = distinct.iter().map(String::len).sum();
        let b_size: usize = baseline
            .variants
            .iter()
            .map(|v| adaptic::codegen::emit_variant(&baseline, v).len())
            .sum();
        let ratio = a_size as f64 / b_size.max(1) as f64;
        ratios.push(ratio);
        println!(
            "{}",
            row(
                &[
                    bench.name.into(),
                    format!("{}", adaptic.variant_count()),
                    format!("{a_size}"),
                    format!("{b_size}"),
                    format!("{ratio:.2}"),
                ],
                &widths
            )
        );
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);
    println!("\naverage code-size ratio {avg:.2} (paper: 1.4x), max {max:.2} (paper: up to 2.5x)");

    // Variant-set pruning: per-device artifact bytes, full vs pruned at a
    // 10% predicted-overhead tolerance, over the fleet presets.
    println!("\n--- \"few fit most\": plan-artifact bytes, full vs pruned (10% tolerance) ---\n");
    let pw = [18usize, 10, 10, 10, 10, 8];
    println!(
        "{}",
        row(
            &[
                "device".into(),
                "variants".into(),
                "kept".into(),
                "full(B)".into(),
                "pruned(B)".into(),
                "ratio".into(),
            ],
            &pw
        )
    );
    let bench = programs::sasum();
    let (mut full_total, mut pruned_total) = (0usize, 0usize);
    for device in DeviceSpec::presets() {
        let compiled = compile(&bench.program, &device, &axis).expect("sasum compiles everywhere");
        let (_, costs) = compiled.sample_cost_matrix(64, |_| 1.0);
        let sel = prune_variant_set(&costs, 0.10);
        let pruned = compiled.prune_to(&sel.kept).expect("valid selection");
        let full_b = compiled.export_plan().byte_size();
        let pruned_b = pruned.export_plan().byte_size();
        full_total += full_b;
        pruned_total += pruned_b;
        println!(
            "{}",
            row(
                &[
                    device.name.clone(),
                    format!("{}", compiled.variant_count()),
                    format!("{}", pruned.variant_count()),
                    format!("{full_b}"),
                    format!("{pruned_b}"),
                    format!("{:.2}", pruned_b as f64 / full_b.max(1) as f64),
                ],
                &pw
            )
        );
    }
    println!(
        "\nfleet artifact footprint: {full_total} -> {pruned_total} bytes ({:.1}% of full)",
        pruned_total as f64 / full_total.max(1) as f64 * 100.0
    );
}
