//! Fleet scheduling figure: a skewed request mix over a heterogeneous
//! device fleet, comparing placement policies and "few fit most"
//! variant-set pruning.
//!
//! The fleet is every [`DeviceSpec`] preset — from the iGPU-class part
//! (cheap launches, thin memory) to the HPC-class part (expensive
//! launches, 900 GB/s). The workload is deliberately skewed: mostly tiny
//! reductions where the iGPU wins, a tail of huge ones where the wide
//! part wins — so a scheduler that actually reads the cost model has
//! something to exploit over round-robin.
//!
//! Reported per policy: fleet makespan (busiest device's simulated time)
//! and throughput. Then the cost-predicted fleet is pruned to the
//! smallest per-device variant subset within `TOLERANCE` of the full
//! table and the same workload re-runs — the makespan must stay within
//! the bound while the per-device plan artifacts shrink.
//!
//! With `--assert` the process exits non-zero unless cost-predicted
//! placement beats round-robin and the pruned fleet holds its bound; CI
//! runs exactly that. Writes `results/BENCH_fleet.json` and
//! `results/fleet_throughput.txt`.

use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;

use adaptic::{ExecMode, Fleet, InputAxis, PlacementPolicy, PruneOutcome, RunOptions};
use adaptic_apps::programs;
use adaptic_bench::{bench_json, data, BenchRecord};
use gpu_sim::DeviceSpec;

/// Worst-case per-launch slowdown the pruned variant set may admit.
const TOLERANCE: f64 = 0.10;
/// End-to-end slack on top of `TOLERANCE` for the makespan bound: the
/// per-launch bound is on *predicted* curves, and pruning also re-tiles
/// boundaries, so measured makespan gets a little headroom.
const MAKESPAN_SLACK: f64 = 0.05;
const REQUESTS: usize = 240;
const SEED: u64 = 42;

/// Skewed request sizes: 70% tiny, 20% medium, 10% huge. Deterministic.
fn workload(axis_lo: i64, axis_hi: i64) -> Vec<i64> {
    let mut state = SEED;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as i64
    };
    (0..REQUESTS)
        .map(|_| {
            let (lo, hi) = match next() % 10 {
                0..=6 => (axis_lo, axis_lo * 4),        // tiny
                7 | 8 => (axis_lo * 32, axis_lo * 128), // medium
                _ => (axis_hi / 2, axis_hi),            // huge
            };
            lo + next().rem_euclid(hi - lo + 1)
        })
        .collect()
}

fn build_fleet(axis: &InputAxis) -> Fleet {
    Fleet::compile(&programs::sasum().program, axis, &DeviceSpec::presets())
        .expect("fleet compiles on every preset")
}

/// Run the request mix through `fleet` under `policy` as a burst: every
/// request is admitted (charging backlogs) before any settles, so
/// placement decisions see the queue state a loaded fleet would have.
/// Returns (makespan µs, launches/ms of simulated fleet time).
fn drive(fleet: &Fleet, sizes: &[i64], input: &[f32], policy: PlacementPolicy) -> (f64, f64) {
    let opts = RunOptions {
        mode: ExecMode::SampledExec(64),
        ..RunOptions::default()
    };
    let placements: Vec<_> = sizes
        .iter()
        .map(|&x| fleet.admit(x, policy).expect("admit"))
        .collect();
    for (&x, p) in sizes.iter().zip(placements) {
        fleet
            .settle(p, x, &input[..x as usize], &[], opts)
            .expect("settle");
    }
    let makespan = fleet.makespan_us();
    (makespan, sizes.len() as f64 / (makespan / 1000.0))
}

fn main() -> ExitCode {
    let assert_mode = std::env::args().any(|a| a == "--assert");
    let axis = InputAxis::total_size("N", 256, 1 << 18);
    let sizes = workload(256, 1 << 18);
    let input = data(1 << 18, 7);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Heterogeneous fleet: {} requests (70% tiny / 20% medium / 10% huge), {} devices ===\n",
        sizes.len(),
        DeviceSpec::presets().len()
    );

    let policies = [
        ("round_robin", PlacementPolicy::RoundRobin),
        ("static_affinity", PlacementPolicy::StaticAffinity),
        ("cost_predicted", PlacementPolicy::CostPredicted),
    ];
    let mut records: Vec<BenchRecord> = Vec::new();
    let mut makespans = std::collections::BTreeMap::new();
    for (name, policy) in policies {
        let fleet = build_fleet(&axis);
        let (makespan, throughput) = drive(&fleet, &sizes, &input, policy);
        makespans.insert(name, makespan);
        let _ = writeln!(
            out,
            "{name:>16}: makespan {makespan:>10.1} us  throughput {throughput:>7.2} launches/ms"
        );
        for n in fleet.nodes() {
            let _ = writeln!(
                out,
                "{:>18}- {:<14} {:>4} launches, {:>10.1} us busy",
                "",
                n.name(),
                n.queue().completed(),
                n.queue().busy_us()
            );
        }
        let t = fleet.telemetry().expect("non-empty fleet");
        let _ = writeln!(
            out,
            "{:>18}  fleet telemetry: {} launches, {} recalibration moves, model error {:.1}%",
            "",
            t.launches,
            t.recalibration_moves,
            t.mean_model_error * 100.0
        );
        records.push(BenchRecord {
            name: name.into(),
            mean_ns: makespan * 1000.0,
            min_ns: makespan * 1000.0,
            max_ns: makespan * 1000.0,
            speedup: None,
        });
    }
    let baseline = records[0].clone();
    for r in records.iter_mut().skip(1) {
        *r = r.clone().vs(&baseline);
    }

    // "Few fit most": prune the cost-predicted fleet and re-run.
    let mut pruned_fleet = build_fleet(&axis);
    let outcomes: Vec<PruneOutcome> = pruned_fleet
        .prune(64, TOLERANCE)
        .expect("pruning keeps a valid table per node");
    let (pruned_makespan, pruned_throughput) = drive(
        &pruned_fleet,
        &sizes,
        &input,
        PlacementPolicy::CostPredicted,
    );
    let _ = writeln!(
        out,
        "\n--- variant-set pruning (tolerance {:.0}%) ---",
        TOLERANCE * 100.0
    );
    let (mut full_bytes, mut pruned_bytes) = (0usize, 0usize);
    for o in &outcomes {
        full_bytes += o.full_bytes;
        pruned_bytes += o.pruned_bytes;
        let _ = writeln!(
            out,
            "{:>18}- {:<14} {} -> {} variants, {} -> {} artifact bytes (max overhead {:.1}%)",
            "",
            o.node,
            o.full_variants,
            o.selection.kept.len(),
            o.full_bytes,
            o.pruned_bytes,
            o.selection.max_overhead * 100.0
        );
    }
    let full_makespan = makespans["cost_predicted"];
    let _ = writeln!(
        out,
        "{:>16}: makespan {:>10.1} us  throughput {:>7.2} launches/ms  \
         ({:+.1}% vs full table, bound {:.0}%)",
        "pruned",
        pruned_makespan,
        pruned_throughput,
        (pruned_makespan / full_makespan - 1.0) * 100.0,
        (TOLERANCE + MAKESPAN_SLACK) * 100.0
    );
    let _ = writeln!(
        out,
        "{:>16}  fleet artifact footprint: {} -> {} bytes ({:.1}% of full)",
        "",
        full_bytes,
        pruned_bytes,
        pruned_bytes as f64 / full_bytes.max(1) as f64 * 100.0
    );
    records.push(
        BenchRecord {
            name: "cost_predicted_pruned".into(),
            mean_ns: pruned_makespan * 1000.0,
            min_ns: pruned_makespan * 1000.0,
            max_ns: pruned_makespan * 1000.0,
            speedup: None,
        }
        .vs(&baseline),
    );

    print!("{out}");
    let results = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("results dir");
    std::fs::write(results.join("fleet_throughput.txt"), &out).expect("write fleet_throughput");
    let json = bench_json("fleet", &records).expect("write BENCH_fleet.json");
    println!("wrote {}", json.display());

    if assert_mode {
        let rr = makespans["round_robin"];
        if full_makespan > rr {
            eprintln!(
                "FAIL: cost-predicted makespan {full_makespan:.1} us worse than round-robin {rr:.1} us"
            );
            return ExitCode::FAILURE;
        }
        if pruned_makespan > full_makespan * (1.0 + TOLERANCE + MAKESPAN_SLACK) {
            eprintln!(
                "FAIL: pruned makespan {pruned_makespan:.1} us breaks the {:.0}% bound over {full_makespan:.1} us",
                (TOLERANCE + MAKESPAN_SLACK) * 100.0
            );
            return ExitCode::FAILURE;
        }
        if pruned_bytes > full_bytes {
            eprintln!("FAIL: pruning grew the artifact footprint ({full_bytes} -> {pruned_bytes})");
            return ExitCode::FAILURE;
        }
        println!(
            "asserts hold: cost-predicted beats round-robin ({:.2}x), pruned within bound",
            rr / full_makespan
        );
    }
    ExitCode::SUCCESS
}
