//! Warm-start demo: boot the adaptive pipeline against a persistent
//! artifact store and report hit/miss/reject counters, so two invocations
//! of the same binary in the same workspace demonstrate the warm path
//! end to end.
//!
//! The store directory comes from `ADAPTIC_ARTIFACT_DIR` (default
//! `artifacts/` under the current directory). Each boot compiles three
//! programs through [`compile_with_store`], attaches the store to every
//! [`KernelManager`], runs one launch per program, and persists the
//! learned boundary state on the way out.
//!
//! ```sh
//! ADAPTIC_ARTIFACT_DIR=/tmp/adaptic-store cargo run --release --bin warmstart_demo
//! ADAPTIC_ARTIFACT_DIR=/tmp/adaptic-store cargo run --release --bin warmstart_demo -- --expect-warm
//! ```
//!
//! With `--expect-warm` the process exits non-zero unless every plan came
//! out of the store: artifact hits > 0 and zero misses/rejects (i.e. zero
//! recompiles). CI runs exactly that sequence.

use std::process::ExitCode;
use std::sync::Arc;

use adaptic::{
    compile_with_store, ArtifactStore, CompileOptions, ExecMode, InputAxis, KernelManager,
    RunOptions, StateBinding,
};
use adaptic_apps::programs;
use adaptic_bench::data;
use gpu_sim::DeviceSpec;

fn main() -> ExitCode {
    let expect_warm = std::env::args().any(|a| a == "--expect-warm");
    let store = Arc::new(
        ArtifactStore::from_env()
            .unwrap_or_else(|| ArtifactStore::new(std::path::Path::new("artifacts"))),
    );
    println!("artifact store: {}", store.dir().display());

    let device = DeviceSpec::tesla_c2050();
    let boots: [(_, _, InputAxis, i64, usize, Vec<StateBinding>); 3] = [
        (
            "sasum",
            programs::sasum().program,
            InputAxis::total_size("N", 256, 1 << 18),
            4096,
            4096,
            Vec::new(),
        ),
        (
            "dct8x8",
            programs::dct8x8().program,
            InputAxis::total_size("N", 64, 1 << 16),
            1024,
            1024,
            Vec::new(),
        ),
        (
            "black_scholes",
            programs::black_scholes().program,
            InputAxis::total_size("N", 16, 1 << 16),
            1024,
            3 * 1024,
            vec![StateBinding::new("Price", "rv", vec![0.02, 0.3])],
        ),
    ];

    for (name, program, axis, x, items, state) in boots {
        let compiled =
            compile_with_store(&program, &device, &axis, CompileOptions::default(), &store)
                .expect("compile");
        let kmu = KernelManager::new(compiled).with_artifacts(Arc::clone(&store));
        let input = data(items, 7);
        let report = kmu
            .run(x, &input, &state, RunOptions::serial(ExecMode::Full))
            .expect("first launch");
        kmu.persist_learned().expect("persist learned state");
        println!(
            "{name:>16}: variant {} in {:.1} simulated us",
            report.variant_index, report.time_us
        );
    }

    let c = store.counters();
    println!(
        "artifacts: {} hits, {} misses, {} rejects",
        c.hits, c.misses, c.rejects
    );
    if expect_warm && (c.hits == 0 || c.misses != 0 || c.rejects != 0) {
        eprintln!("expected a fully warm boot (hits > 0, zero recompiles)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
