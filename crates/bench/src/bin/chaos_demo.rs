//! Chaos demo: replay a seeded fault schedule against the resilient launch
//! pipeline and watch every rung of the degradation ladder fire.
//!
//! Two acts, both fully deterministic (the schedule is a pure function of
//! the plan's seed and consultation order, so a rerun replays exactly):
//!
//! 1. **Transient chaos** — a [`FaultPlan`] injects a mix of launch
//!    rejections, mid-block panics, stat corruption, hangs and SM
//!    degradation at a 30% per-attempt rate. Retries and variant fallback
//!    absorb every fault; each run's output is asserted bit-identical to
//!    the fault-free baseline.
//! 2. **Hard failure window** — the plan rejects every launch attempt
//!    inside a window sized to the primary variant's retry budget. The
//!    primary burns its budget, is quarantined by its circuit breaker, a
//!    healthy neighbor serves the next runs, and once the quarantine
//!    window elapses a half-open probe re-admits the primary — the
//!    re-admission the acceptance criteria ask to see.
//!
//! ```sh
//! cargo run --release --bin chaos_demo
//! ```

use adaptic::{
    compile, ExecMode, FaultKind, FaultPlan, InputAxis, KernelManager, RetryPolicy, RunOptions,
};
use adaptic_bench::{data, header};
use gpu_sim::DeviceSpec;
use streamir::parse::parse_program;

fn main() {
    header("Chaos: seeded fault schedule vs. the resilient launch pipeline");
    let program = parse_program(
        r#"pipeline Sum(N) {
            actor Sum(pop N, push 1) {
                acc = 0.0;
                for i in 0..N { acc = acc + pop(); }
                push(acc);
            }
        }"#,
    )
    .expect("parse Sum");
    let device = DeviceSpec::tesla_c2050();
    let axis = InputAxis::total_size("N", 64, 1 << 20);
    let compiled = compile(&program, &device, &axis).expect("compile Sum");
    assert!(compiled.variant_count() >= 2, "need a fallback target");

    // ---- Act 1: transient chaos, absorbed by retry + fallback. ----
    let n = 4096i64;
    let input = data(n as usize, 11);
    let opts = RunOptions::serial(ExecMode::Full);
    // Recovery is bit-identical *per variant*: a retried launch recomputes
    // the exact bytes of the variant that completed (different variants
    // reduce in different orders, so they agree only to rounding). Record
    // one fault-free baseline per variant to compare against.
    let baselines: Vec<Vec<f32>> = (0..compiled.variant_count())
        .map(|v| {
            compiled
                .run_opts(n, &input, &[], opts.with_variant(v), None)
                .expect("fault-free baseline")
                .output
        })
        .collect();

    let kmu = KernelManager::new(compiled.clone());
    let plan = FaultPlan::new(0xADA).with_rate(0.3);
    println!("act 1: 30% per-attempt faults, all kinds, seed 0xADA");
    for round in 0..6 {
        let rep = kmu
            .run(n, &input, &[], opts.with_faults(&plan))
            .expect("the pipeline must absorb transient faults");
        assert_eq!(
            rep.output, baselines[rep.variant_index],
            "recovered output must be bit-identical to the fault-free run \
             of the variant that completed"
        );
        println!(
            "  run {round}: variant v{}, {} retries, {} faults observed \
             (output bit-identical)",
            rep.variant_index, rep.retries, rep.faults_observed
        );
    }
    let snap = kmu.telemetry();
    assert!(snap.faults_injected > 0, "the schedule must actually fire");
    println!(
        "  absorbed: {} injected, {} observed, {} retries, {} fallbacks, \
         {} overruns\n",
        snap.faults_injected,
        snap.faults_observed,
        snap.retries,
        snap.fallbacks,
        snap.deadline_overruns
    );

    // ---- Act 2: hard failure window -> quarantine -> readmission. ----
    let kmu = KernelManager::new(compiled).with_quarantine(1, 3);
    let (lo0, hi0) = kmu.telemetry().boundaries[0];
    let x = n.clamp(lo0, hi0); // an input the table hands to variant 0
    let input = data(x as usize, 11);
    let baselines: Vec<Vec<f32>> = (0..kmu.program().variant_count())
        .map(|v| {
            kmu.program()
                .run_opts(x, &input, &[], opts.with_variant(v), None)
                .expect("fault-free baseline")
                .output
        })
        .collect();
    // Reject exactly the primary's retry budget: its first kernel burns
    // every attempt inside the window, later candidates run fault-free.
    let budget = u64::from(RetryPolicy::default().max_attempts);
    let plan = FaultPlan::new(0xBAD)
        .with_rate(1.0)
        .with_kinds(vec![FaultKind::LaunchReject])
        .with_window(0, budget);
    println!("act 2: reject window of {budget} attempts, quarantine(threshold 1, window 3)");
    for round in 0..5 {
        let rep = kmu
            .run(x, &input, &[], opts.with_faults(&plan))
            .expect("the ladder must complete every run");
        assert_eq!(
            rep.output, baselines[rep.variant_index],
            "bit-identical recovery"
        );
        let snap = rep.telemetry.as_ref().expect("kmu attaches telemetry");
        println!(
            "  run {round}: variant v{}, quarantined {:?}, {} probes, {} readmissions",
            rep.variant_index, snap.quarantined_variants, snap.half_open_probes, snap.readmissions
        );
    }
    let snap = kmu.telemetry();
    assert_eq!(
        snap.quarantines, 1,
        "the primary must have been quarantined"
    );
    assert!(snap.fallbacks >= 1, "a neighbor must have served meanwhile");
    assert_eq!(snap.half_open_probes, 1, "one probe after the window");
    assert_eq!(snap.readmissions, 1, "the probe must re-admit the primary");
    assert!(
        snap.quarantined_variants.is_empty(),
        "nothing left quarantined"
    );

    println!("\nfinal telemetry:\n{}", kmu.telemetry());
    println!("chaos schedule replayed; all recoveries bit-identical");
}
