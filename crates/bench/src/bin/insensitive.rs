//! §5.3: input-insensitive benchmarks — Adaptic-generated code vs the
//! hand-optimized SDK/CUBLAS kernels at a representative size. The paper
//! reports Adaptic within ~5% on average; the point is that the adaptive
//! machinery costs nothing when there is nothing to adapt to.

use adaptic::{compile, InputAxis, StateBinding};
use adaptic_apps::programs::{self, zip2};
use adaptic_bench::{data, header, row, scale, size_label, sweep_mode};
use gpu_sim::DeviceSpec;

fn main() {
    header("Section 5.3: input-insensitive benchmarks (Adaptic vs hand-optimized)");
    let device = DeviceSpec::tesla_c2050();
    let n = (1usize << 20) / scale();
    let widths = [24usize, 12, 12, 12];
    println!(
        "{}",
        row(
            &[
                "benchmark".into(),
                "base(us)".into(),
                "adaptic(us)".into(),
                "ratio".into(),
            ],
            &widths
        )
    );
    let mut ratios: Vec<f64> = Vec::new();
    let mut emit = |name: &str, base_us: f64, adaptic_us: f64| {
        let ratio = adaptic_us / base_us.max(1e-9);
        ratios.push(ratio);
        println!(
            "{}",
            row(
                &[
                    name.into(),
                    format!("{base_us:.1}"),
                    format!("{adaptic_us:.1}"),
                    format!("{ratio:.2}"),
                ],
                &widths
            )
        );
    };

    let axis = InputAxis::total_size("N", 256, (4 << 20) as i64);
    let mode = sweep_mode();

    // BlackScholes.
    {
        let b = programs::black_scholes();
        let compiled = compile(&b.program, &device, &axis).unwrap();
        let prices: Vec<f32> = (0..n)
            .flat_map(|i| vec![80.0 + (i % 40) as f32, 100.0, 0.25 + 0.01 * (i % 50) as f32])
            .collect();
        let base = adaptic_baselines::sdk::black_scholes(&device, &prices, 0.02, 0.3, mode);
        let state = [StateBinding::new("Price", "rv", vec![0.02, 0.3])];
        let rep = compiled.run_with(n as i64, &prices, &state, mode).unwrap();
        emit(b.name, base.time_us, rep.time_us);
    }
    // VectorAdd.
    {
        let b = programs::vector_add();
        let compiled = compile(&b.program, &device, &axis).unwrap();
        let (x, y) = (data(n, 1), data(n, 2));
        let base = adaptic_baselines::sdk::vector_add(&device, &x, &y, mode);
        let rep = compiled
            .run_with(n as i64, &zip2(&x, &y), &[], mode)
            .unwrap();
        emit(b.name, base.time_us, rep.time_us);
    }
    // Saxpy / Scopy / Sscal / Sswap / Srot.
    {
        use adaptic_baselines::blas1::{map_l1, MapOp};
        let (x, y) = (data(n, 3), data(n, 4));
        let cases: Vec<(adaptic_apps::Bench, MapOp, bool, Vec<StateBinding>)> = vec![
            (
                programs::saxpy(),
                MapOp::Saxpy { a: 2.0 },
                true,
                vec![StateBinding::new("Axpy", "a", vec![2.0])],
            ),
            (programs::scopy(), MapOp::Scopy, false, vec![]),
            (
                programs::sscal(),
                MapOp::Sscal { a: 0.5 },
                false,
                vec![StateBinding::new("Scal", "a", vec![0.5])],
            ),
            (programs::sswap(), MapOp::Sswap, true, vec![]),
            (
                programs::srot(),
                MapOp::Srot { c: 0.6, s: 0.8 },
                true,
                vec![StateBinding::new("Rot", "cs", vec![0.6, 0.8])],
            ),
        ];
        for (bench, op, zip, state) in cases {
            let compiled = compile(&bench.program, &device, &axis).unwrap();
            let (base, _, _) = map_l1(&device, op, &x, Some(&y), mode);
            let input = if zip { zip2(&x, &y) } else { x.clone() };
            let rep = compiled.run_with(n as i64, &input, &state, mode).unwrap();
            emit(bench.name, base.time_us, rep.time_us);
        }
    }
    // DCT8x8.
    {
        let b = programs::dct8x8();
        let compiled = compile(&b.program, &device, &axis).unwrap();
        let tiles = data((n / 64) * 64, 5);
        let base = adaptic_baselines::sdk::dct8x8(&device, &tiles, mode);
        let rep = compiled
            .run_with((tiles.len() / 64) as i64, &tiles, &[], mode)
            .unwrap();
        emit(b.name, base.time_us, rep.time_us);
    }
    // QuasiRandomGenerator.
    {
        let b = programs::quasirandom();
        let compiled = compile(&b.program, &device, &axis).unwrap();
        let indices: Vec<f32> = (0..n).map(|i| i as f32 + 1.0).collect();
        let base = adaptic_baselines::sdk::quasirandom(&device, n, 0.618_034, mode);
        let rep = compiled.run_with(n as i64, &indices, &[], mode).unwrap();
        emit(b.name, base.time_us, rep.time_us);
    }

    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!(
        "\naverage Adaptic/base ratio at {}: {:.2} (paper: within ~5% of 1.0)",
        size_label(n),
        avg
    );
    println!(
        "note: Histogram64 is baseline-only in this reproduction (the DSL \
         subset has no scatter-reduction; see EXPERIMENTS.md)"
    );
}
