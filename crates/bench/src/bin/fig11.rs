//! Figure 11: BiCGSTAB — Adaptic at cumulative optimization levels,
//! normalized to the CUBLAS-composed implementation, on two GPU targets
//! across matrix sizes.

use adaptic::CompileOptions;
use adaptic_apps::bicgstab::{self, AdapticBicgstab};
use adaptic_bench::{header, row, scale, sweep_mode, sweep_opts};
use gpu_sim::DeviceSpec;

fn main() {
    header("Figure 11: BiCGSTAB speedup over CUBLAS composition (cumulative opts)");
    let iters = 2usize;
    let sizes: Vec<usize> = [512usize, 1024, 2048, 4096, 8192]
        .into_iter()
        .map(|s| (s / scale().min(8)).max(128))
        .collect();
    let levels: [(&str, CompileOptions); 4] = [
        ("baseline", CompileOptions::baseline()),
        (
            "+segmentation",
            CompileOptions {
                segmentation: true,
                memory: false,
                integration: false,
                probes: 17,
            },
        ),
        (
            "+memory",
            CompileOptions {
                segmentation: true,
                memory: true,
                integration: false,
                probes: 17,
            },
        ),
        (
            "+integration",
            CompileOptions {
                segmentation: true,
                memory: true,
                integration: true,
                probes: 17,
            },
        ),
    ];
    let widths = [10usize, 12, 14, 14, 12, 12];

    for device in [DeviceSpec::tesla_c2050(), DeviceSpec::gtx285()] {
        println!("--- {} ---", device.name);
        println!(
            "{}",
            row(
                &[
                    "size".into(),
                    "cublas(us)".into(),
                    "level".into(),
                    "adaptic(us)".into(),
                    "speedup".into(),
                    String::new(),
                ],
                &widths
            )
        );
        let lo = *sizes.first().unwrap() as i64;
        let hi = *sizes.last().unwrap() as i64;
        let solvers: Vec<(&str, AdapticBicgstab)> = levels
            .iter()
            .map(|(name, opts)| {
                (
                    *name,
                    AdapticBicgstab::compile(&device, lo, hi, *opts).expect("compile bicgstab"),
                )
            })
            .collect();
        for &n in &sizes {
            let (a, b) = bicgstab::synth_system(n, 13);
            let (_, cublas_us) = bicgstab::solve_cublas(&device, &a, &b, n, iters, sweep_mode());
            for (name, solver) in &solvers {
                let (_, us) = solver
                    .solve_opts(&a, &b, n, iters, sweep_opts())
                    .expect("adaptic solve");
                println!(
                    "{}",
                    row(
                        &[
                            format!("{n}x{n}"),
                            format!("{cublas_us:.0}"),
                            (*name).into(),
                            format!("{us:.0}"),
                            format!("{:.2}x", cublas_us / us.max(1e-9)),
                            String::new(),
                        ],
                        &widths
                    )
                );
            }
        }
        println!();
    }
}
