//! Figure 10: transposed matrix–vector multiplication — Adaptic's
//! input-aware kernels vs. the CUBLAS-style baseline, swept across matrix
//! shapes at three fixed element counts.
//!
//! The sweep runs on the parallel engine ([`sweep_policy`]) and routes
//! every launch through a shared [`ShardedLaunchCache`]: each (kernel,
//! geometry, shape) point simulates once, and the closing memoized
//! re-sweep replays the whole figure from cached statistics to show the
//! concurrent cache at work.

use adaptic::{compile, InputAxis, StateBinding};
use adaptic_apps::programs;
use adaptic_bench::{data, header, row, scale, size_label, sweep_opts, sweep_policy};
use gpu_sim::{DeviceSpec, ShardedLaunchCache};

fn main() {
    header("Figure 10: TMV GFLOPS, Adaptic vs CUBLAS, across shapes");
    let device = DeviceSpec::tesla_c2050();
    let bench = programs::tmv();
    let widths = [12usize, 12, 12, 10, 24];
    let cache = ShardedLaunchCache::default();

    for base in [1usize << 20, 4 << 20, 16 << 20] {
        let total = base / scale();
        println!("--- {} elements ---", size_label(total));
        println!(
            "{}",
            row(
                &[
                    "shape".into(),
                    "cublas".into(),
                    "adaptic".into(),
                    "speedup".into(),
                    "adaptic variant".into(),
                ],
                &widths
            )
        );
        let t = total as i64;
        let axis = InputAxis::new("rows", 4, t / 4, move |rows| {
            streamir::graph::bindings(&[("rows", rows), ("cols", t / rows)])
        })
        .with_items(move |_| t);
        let compiled = compile(&bench.program, &device, &axis).expect("compile TMV");

        let mut rows_count = 4usize;
        let mut won = 0usize;
        let mut points = 0usize;
        while rows_count <= total / 4 {
            let cols = total / rows_count;
            let a = data(total, 1);
            let x = data(cols, 2);

            let base_run = adaptic_baselines::tmv::tmv_with(
                &device,
                &a,
                &x,
                rows_count,
                cols,
                sweep_opts().mode,
                sweep_policy(),
                Some(&cache),
            );
            let state = [StateBinding::new("RowDot", "x", x)];
            let rep = compiled
                .run_opts(rows_count as i64, &a, &state, sweep_opts(), Some(&cache))
                .expect("run TMV");
            let (vi, variant) = compiled.variant_for(rows_count as i64);
            let label = variant
                .choices
                .first()
                .map(|c| format!("{c:?}"))
                .unwrap_or_default();
            let label = label.chars().take(24).collect::<String>();
            let speedup = base_run.time_us / rep.time_us.max(1e-9);
            if speedup >= 0.95 {
                won += 1;
            }
            points += 1;
            println!(
                "{}",
                row(
                    &[
                        format!("{}x{}", size_label(rows_count), size_label(cols)),
                        format!("{:.2}", base_run.gflops()),
                        format!("{:.2}", rep.gflops()),
                        format!("{:.2}x", speedup),
                        format!("v{vi}:{label}"),
                    ],
                    &widths
                )
            );
            rows_count *= 8;
        }
        println!(
            "Adaptic >= 0.95x CUBLAS at {won}/{points} shapes; {} kernel variants generated\n",
            compiled.variant_count()
        );
    }

    // Memoized re-sweep: replay the whole figure through the shared cache.
    // Every launch was already simulated above, so this pass must be pure
    // cache hits — it demonstrates (and exercises) the launch-stats
    // memoization that makes repeated sweeps cheap.
    let miss_before = cache.misses();
    let hit_before = cache.hits();
    let start = std::time::Instant::now();
    for base in [1usize << 20, 4 << 20, 16 << 20] {
        let total = base / scale();
        let t = total as i64;
        let axis = InputAxis::new("rows", 4, t / 4, move |rows| {
            streamir::graph::bindings(&[("rows", rows), ("cols", t / rows)])
        })
        .with_items(move |_| t);
        let compiled = compile(&bench.program, &device, &axis).expect("compile TMV");
        let mut rows_count = 4usize;
        while rows_count <= total / 4 {
            let cols = total / rows_count;
            let a = data(total, 1);
            let x = data(cols, 2);
            adaptic_baselines::tmv::tmv_with(
                &device,
                &a,
                &x,
                rows_count,
                cols,
                sweep_opts().mode,
                sweep_policy(),
                Some(&cache),
            );
            let state = [StateBinding::new("RowDot", "x", x)];
            let rep = compiled
                .run_opts(rows_count as i64, &a, &state, sweep_opts(), Some(&cache))
                .expect("re-run TMV");
            assert_eq!(rep.cache_misses, 0, "re-sweep must be fully memoized");
            rows_count *= 8;
        }
    }
    let new_hits = cache.hits() - hit_before;
    let new_misses = cache.misses() - miss_before;
    println!(
        "Launch-stats cache: {} memoized launches across {} shards; first sweep \
         {} misses / {} hits; re-sweep {} hits / {} misses / {} evictions in {:.1} ms",
        cache.len(),
        cache.shard_count(),
        miss_before,
        hit_before,
        new_hits,
        new_misses,
        cache.evictions(),
        start.elapsed().as_secs_f64() * 1e3,
    );
}
