//! Serving-plane figure: an open-loop arrival sweep through two serving
//! configurations, demonstrating graceful degradation under overload.
//!
//! Both systems are the *same* [`adaptic_serve::Server`] — two tenants
//! over the default two-device fleet — and serve the identical
//! fixed-seed request trace (sizes interleaved from the
//! [`adaptic_bench::workloads::bursty`] and
//! [`adaptic_bench::workloads::diurnal`] generators). Only the overload
//! posture differs:
//!
//! * `bounded` — small per-tenant queues, a global cap, and a per-request
//!   deadline, so admission control rejects what cannot finish in time
//!   and the queues shed requests whose deadline passes while they wait;
//! * `unbounded` — effectively infinite queues and no declared deadline:
//!   every request is accepted and eventually served, however late. The
//!   same deadline is applied *externally* when scoring, so both systems
//!   are judged by the identical service-level objective.
//!
//! Offered load is calibrated, not hard-coded: a closed-loop warm-up
//! measures the plane's mean service time on this machine and profile,
//! and the sweep offers multiples (0.5x .. 3x) of the measured capacity.
//! The figure of merit is **goodput** — deadline-met completions per
//! second of wall clock — and the **deadline-hit rate** over everything
//! offered.
//!
//! With `--assert` the process exits non-zero unless, at every load at or
//! beyond 2x capacity, the bounded plane's goodput stays within 20% of
//! its own peak across the sweep, while the unbounded baseline's hit rate
//! at the top load has collapsed to at most half the bounded plane's; the
//! CI `serve` job runs exactly that. Writes `results/BENCH_serve.json`
//! and `results/serve_goodput.txt`. Seed comes from `ADAPTIC_SERVE_SEED`
//! (default 42).

use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use adaptic::InputAxis;
use adaptic_apps::programs;
use adaptic_bench::workloads::{bursty, diurnal};
use adaptic_bench::{bench_json, data, BenchRecord};
use adaptic_serve::{Outcome, RejectReason, Request, Server, ServerConfig, TenantPolicy};
use streamir::Program;

/// Requests per run: long enough that an unbounded queue's wait grows
/// far past the deadline before the trace ends.
const REQUESTS: usize = 480;
/// Closed-loop warm-up requests per calibration thread. Calibration
/// error shifts every offered load together, so more samples here buy
/// stability for the whole sweep.
const CALIBRATION: usize = 60;
/// Offered-load multipliers over the calibrated capacity.
const LOADS: [f64; 4] = [0.5, 1.0, 2.0, 3.0];
/// Deadline per request, as a multiple of the calibrated effective
/// (concurrent) service time: generous at low load, hopeless once a
/// queue grows unboundedly.
const DEADLINE_X: u64 = 8;
/// Bounded posture: per-tenant queue depth and the global cap. Sized so
/// a full queue's wait (cap x effective service) stays near half the
/// deadline — a request the queue accepts can still finish on time.
const TENANT_QUEUE_CAP: usize = 4;
const GLOBAL_QUEUE_CAP: usize = 16;
/// Required goodput retention at >= 2x load, relative to the bounded
/// plane's peak. The peak is estimated robustly as the mean goodput
/// across the saturated (>= 1x) loads — a graceful plane's goodput
/// curve is flat there, so the mean *is* the peak, and averaging keeps
/// single-run scheduler noise from inflating the reference the way a
/// max over noisy runs would.
const RETENTION: f64 = 0.8;
/// Somewhere in the overloaded (>= 2x) band, the unbounded baseline's
/// hit rate must fall to at most this fraction of the bounded plane's.
const COLLAPSE: f64 = 0.5;

fn seed() -> u64 {
    match std::env::var("ADAPTIC_SERVE_SEED") {
        Err(_) => 42,
        Ok(raw) => {
            let raw = raw.trim();
            let parsed =
                if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
                    u64::from_str_radix(hex, 16)
                } else {
                    raw.parse()
                };
            parsed.unwrap_or_else(|_| panic!("bad ADAPTIC_SERVE_SEED: {raw:?}"))
        }
    }
}

fn sasum() -> Program {
    programs::sasum().program
}

fn axis() -> InputAxis {
    InputAxis::total_size("N", 256, 1 << 15)
}

/// Request sizes: the bursty and diurnal generators interleaved, so one
/// trace exercises both traffic shapes.
fn sizes(n: usize, seed: u64) -> Vec<i64> {
    let half = n.div_ceil(2);
    let b = bursty(half, (1024, 4096), (8192, 16384), 16, 4, seed);
    let d = diurnal(half, 1024, 16384, 32, 0.15, seed ^ 0x9e3779b97f4a7c15);
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let src = if i % 2 == 0 { &b } else { &d };
        out.push(src[i / 2]);
    }
    out
}

fn start(bounded: bool) -> Server {
    let (tenant_cap, global_cap) = if bounded {
        (TENANT_QUEUE_CAP, GLOBAL_QUEUE_CAP)
    } else {
        (1 << 20, 1 << 20)
    };
    let server = Server::start(ServerConfig {
        global_queue_cap: global_cap,
        ..ServerConfig::default()
    });
    let program = sasum();
    let axis = axis();
    for name in ["alpha", "beta"] {
        server
            .register_tenant(
                name,
                &program,
                &axis,
                TenantPolicy::default()
                    .with_queue_cap(tenant_cap)
                    .with_quota(1e9, 1e9),
            )
            .expect("tenant registers");
    }
    server
}

/// Measured capacity (requests/s) of the plane on this machine and
/// build profile: `workers` concurrent closed loops, so the yardstick
/// includes the CPU contention the open-loop sweep will actually see.
fn calibrate(trace: &[i64], inputs: &[Arc<Vec<f32>>]) -> f64 {
    let server = start(true);
    let workers = ServerConfig::default().workers;
    let t0 = server.now_us();
    std::thread::scope(|scope| {
        for t in 0..workers {
            let server = &server;
            scope.spawn(move || {
                let tenant = if t % 2 == 0 { "alpha" } else { "beta" };
                for i in 0..CALIBRATION {
                    let k = (t + i * workers) % trace.len();
                    let ticket = server
                        .submit(tenant, Request::new(trace[k], Arc::clone(&inputs[k])))
                        .expect("calibration admits");
                    match ticket.wait() {
                        Outcome::Completed(_) => {}
                        other => panic!("calibration request failed: {other:?}"),
                    }
                }
            });
        }
    });
    let elapsed_us = (server.now_us() - t0).max(1);
    (workers * CALIBRATION) as f64 * 1e6 / elapsed_us as f64
}

#[derive(Debug, Default)]
struct RunStat {
    offered: u64,
    on_time: u64,
    late: u64,
    failed: u64,
    shed: u64,
    rejected_quota: u64,
    rejected_full: u64,
    rejected_deadline: u64,
    makespan_us: u64,
    lat_sum_us: u64,
    lat_max_us: u64,
    lat_min_us: u64,
}

impl RunStat {
    fn admitted(&self) -> u64 {
        self.on_time + self.late + self.failed + self.shed
    }

    fn rejected(&self) -> u64 {
        self.rejected_quota + self.rejected_full + self.rejected_deadline
    }

    fn goodput_rps(&self) -> f64 {
        self.on_time as f64 / (self.makespan_us.max(1) as f64 / 1e6)
    }

    fn hit_rate(&self) -> f64 {
        self.on_time as f64 / self.offered.max(1) as f64
    }

    fn mean_lat_us(&self) -> f64 {
        let served = self.on_time + self.late;
        self.lat_sum_us as f64 / served.max(1) as f64
    }
}

/// Offer the trace open-loop at `rate_rps` and score it against a
/// `deadline_us` service objective. Bounded mode declares the deadline on
/// each request (arming admission control and shedding); unbounded mode
/// submits best-effort and is scored externally against the same budget.
fn offer(
    bounded: bool,
    trace: &[i64],
    inputs: &[Arc<Vec<f32>>],
    rate_rps: f64,
    deadline_us: u64,
) -> RunStat {
    let server = start(bounded);
    let inter_us = (1e6 / rate_rps).max(1.0) as u64;
    let mut stat = RunStat {
        offered: trace.len() as u64,
        lat_min_us: u64::MAX,
        ..RunStat::default()
    };
    let t0 = server.now_us();
    let mut pending: Vec<(u64, adaptic_serve::Ticket)> = Vec::with_capacity(trace.len());
    for (i, &x) in trace.iter().enumerate() {
        // Absolute arrival targets: oversleeping batches arrivals but
        // preserves the offered rate over the whole trace.
        let target = t0 + i as u64 * inter_us;
        let now = server.now_us();
        if now < target {
            std::thread::sleep(Duration::from_micros(target - now));
        }
        let tenant = if i % 2 == 0 { "alpha" } else { "beta" };
        let submitted = server.now_us();
        let mut req = Request::new(x, Arc::clone(&inputs[i]));
        if bounded {
            req = req.with_deadline_at(submitted + deadline_us);
        }
        match server.submit(tenant, req) {
            Ok(ticket) => pending.push((submitted, ticket)),
            Err(RejectReason::QuotaExhausted) => stat.rejected_quota += 1,
            Err(RejectReason::QueueFull) => stat.rejected_full += 1,
            Err(RejectReason::DeadlineInfeasible) => stat.rejected_deadline += 1,
            Err(other) => panic!("unexpected rejection: {other:?}"),
        }
    }
    let mut last_finish = t0;
    for (submitted, ticket) in pending {
        match ticket.wait() {
            Outcome::Completed(c) => {
                let lat = c.finished_at_us.saturating_sub(submitted);
                let hit = if bounded {
                    c.deadline_met
                } else {
                    lat <= deadline_us
                };
                if hit {
                    stat.on_time += 1;
                } else {
                    stat.late += 1;
                }
                stat.lat_sum_us += lat;
                stat.lat_max_us = stat.lat_max_us.max(lat);
                stat.lat_min_us = stat.lat_min_us.min(lat);
                last_finish = last_finish.max(c.finished_at_us);
            }
            // Failures here are launches that raced the deadline watchdog
            // and lost — expected under overload, and scored as misses.
            Outcome::Shed(_) => stat.shed += 1,
            Outcome::Failed(_) => stat.failed += 1,
        }
    }
    stat.makespan_us = (last_finish - t0).max(1);
    if stat.lat_min_us == u64::MAX {
        stat.lat_min_us = 0;
    }
    stat
}

fn main() -> ExitCode {
    let assert_mode = std::env::args().any(|a| a == "--assert");
    let seed = seed();
    let trace = sizes(REQUESTS, seed);
    let inputs: Vec<Arc<Vec<f32>>> = trace
        .iter()
        .enumerate()
        .map(|(i, &x)| Arc::new(data(x as usize, seed.wrapping_add(i as u64))))
        .collect();

    let capacity_rps = calibrate(&trace, &inputs);
    let workers = ServerConfig::default().workers as f64;
    // Effective per-request service time under full concurrency.
    let service_us = workers * 1e6 / capacity_rps;
    let deadline_us = DEADLINE_X * service_us as u64;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== Serving-plane overload sweep: {REQUESTS} requests/run, seed {seed} ===\n\
         calibrated capacity {capacity_rps:.0} req/s ({workers:.0} workers, effective \
         service {service_us:.0} us); deadline {deadline_us} us ({DEADLINE_X}x service)\n"
    );

    let mut records: Vec<BenchRecord> = Vec::new();
    // (load multiplier, bounded stat, unbounded stat)
    let mut runs: Vec<(f64, RunStat, RunStat)> = Vec::new();
    for &mult in &LOADS {
        let rate = mult * capacity_rps;
        let mut pair: Vec<RunStat> = Vec::new();
        for bounded in [true, false] {
            let stat = offer(bounded, &trace, &inputs, rate, deadline_us);
            let name = if bounded { "bounded" } else { "unbounded" };
            let _ = writeln!(
                out,
                "{name:>9} @ {mult:>3.1}x: goodput {:>7.1} req/s  hit {:>5.1}%  \
                 ({:>3} on-time, {:>3} late, {:>3} shed, {:>3} rejected [{}q/{}f/{}d], {} failed)  \
                 mean lat {:>8.0} us",
                stat.goodput_rps(),
                100.0 * stat.hit_rate(),
                stat.on_time,
                stat.late,
                stat.shed,
                stat.rejected(),
                stat.rejected_quota,
                stat.rejected_full,
                stat.rejected_deadline,
                stat.failed,
                stat.mean_lat_us(),
            );
            records.push(BenchRecord {
                name: format!("{name}@{mult}x"),
                mean_ns: stat.mean_lat_us() * 1000.0,
                min_ns: stat.lat_min_us as f64 * 1000.0,
                max_ns: stat.lat_max_us as f64 * 1000.0,
                speedup: Some(stat.goodput_rps()),
            });
            pair.push(stat);
        }
        let unbounded = pair.pop().expect("unbounded stat");
        let bounded = pair.pop().expect("bounded stat");
        runs.push((mult, bounded, unbounded));
    }

    let saturated: Vec<f64> = runs
        .iter()
        .filter(|(m, _, _)| *m >= 1.0)
        .map(|(_, b, _)| b.goodput_rps())
        .collect();
    let peak = saturated.iter().sum::<f64>() / saturated.len().max(1) as f64;
    let (top_mult, top_bounded, top_unbounded) = runs
        .last()
        .map(|(m, b, u)| (*m, b, u))
        .expect("at least one load");
    let _ = writeln!(
        out,
        "\npeak bounded goodput {peak:.1} req/s (mean over >=1x loads); at {top_mult}x: \
         bounded holds {:.0}% of peak with {:.1}% hit rate, unbounded hit rate {:.1}%",
        100.0 * top_bounded.goodput_rps() / peak.max(1e-9),
        100.0 * top_bounded.hit_rate(),
        100.0 * top_unbounded.hit_rate(),
    );

    print!("{out}");
    let results = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("results dir");
    std::fs::write(results.join("serve_goodput.txt"), &out).expect("write serve_goodput");
    let json = bench_json("serve", &records).expect("write BENCH_serve.json");
    println!("wrote {}", json.display());

    if assert_mode {
        for (mult, bounded, _) in &runs {
            // Exactly-once, observed from the outside: every admitted
            // request produced exactly one terminal outcome.
            let accounted = bounded.admitted() + bounded.rejected();
            if accounted != bounded.offered {
                eprintln!(
                    "FAIL: bounded @ {mult}x accounted {accounted} of {} offered",
                    bounded.offered
                );
                return ExitCode::FAILURE;
            }
            if *mult >= 2.0 && bounded.goodput_rps() < RETENTION * peak {
                eprintln!(
                    "FAIL: bounded goodput {:.1} req/s @ {mult}x fell below {RETENTION}x \
                     its peak {peak:.1} req/s",
                    bounded.goodput_rps()
                );
                return ExitCode::FAILURE;
            }
        }
        if top_bounded.on_time == 0 {
            eprintln!("FAIL: bounded plane served nothing on time at {top_mult}x");
            return ExitCode::FAILURE;
        }
        // The baseline must collapse somewhere in the overload band. A
        // single load point's ratio is noisy — the calibration itself
        // varies run to run, so a "3x" sweep can land less deep into
        // overload than its label — but a queue with no admission
        // control degrades across the whole >= 2x band, so the
        // *deepest* collapse over that band is the stable signal.
        let collapse = runs
            .iter()
            .filter(|(m, _, _)| *m >= 2.0)
            .map(|(_, b, u)| u.hit_rate() / b.hit_rate().max(1e-9))
            .fold(f64::INFINITY, f64::min);
        if collapse > COLLAPSE {
            eprintln!(
                "FAIL: unbounded hit rate held {:.0}% of bounded at every >= 2x load \
                 (must collapse below {:.0}% somewhere)",
                100.0 * collapse,
                100.0 * COLLAPSE
            );
            return ExitCode::FAILURE;
        }
        println!(
            "asserts hold: bounded keeps {:.0}% of peak goodput at {top_mult}x while \
             the unbounded hit rate collapses to {:.0}% of bounded under overload",
            100.0 * top_bounded.goodput_rps() / peak.max(1e-9),
            100.0 * collapse
        );
    }
    ExitCode::SUCCESS
}
