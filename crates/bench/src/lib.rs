//! Shared harness utilities for the figure-reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one figure or table of the
//! paper's evaluation (see `DESIGN.md` for the index and `EXPERIMENTS.md`
//! for recorded results). Sizes are scaled down from the paper's
//! GPU-scale inputs by [`scale`] (override with the `ADAPTIC_SCALE`
//! environment variable; `1` reproduces the paper's sizes at the cost of
//! long simulation times).

pub mod workloads;

use std::path::{Path, PathBuf};
use std::time::Instant;

use adaptic::RunOptions;
use gpu_sim::{ExecMode, ExecPolicy};

/// Global size divisor for the sweeps (default 4).
pub fn scale() -> usize {
    std::env::var("ADAPTIC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|s| *s >= 1)
        .unwrap_or(4)
}

/// Execution mode used by timing sweeps: sampled execution keeps
/// figure-scale launches tractable while preserving aggregate statistics.
pub fn sweep_mode() -> ExecMode {
    ExecMode::SampledExec(256)
}

/// Execution engine used by the sweeps: deterministic parallel block
/// execution sized to the host by default. Override with the
/// `ADAPTIC_WORKERS` environment variable — `1` forces the serial engine,
/// `n > 1` pins the worker count. Results are identical under every
/// policy; only wall-clock changes.
pub fn sweep_policy() -> ExecPolicy {
    match std::env::var("ADAPTIC_WORKERS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(0) | None => ExecPolicy::auto(),
        Some(1) => ExecPolicy::Serial,
        Some(n) => ExecPolicy::Parallel(n),
    }
}

/// [`sweep_mode`] + [`sweep_policy`] bundled for `run_opts`.
pub fn sweep_opts() -> RunOptions<'static> {
    RunOptions {
        mode: sweep_mode(),
        policy: sweep_policy(),
        ..RunOptions::serial(sweep_mode())
    }
}

/// Deterministic pseudo-random data in [-1, 1).
pub fn data(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
        .collect()
}

/// Human-readable size label (1K, 4M, ...).
pub fn size_label(n: usize) -> String {
    if n >= 1 << 20 && n.is_multiple_of(1 << 20) {
        format!("{}M", n >> 20)
    } else if n >= 1 << 10 && n.is_multiple_of(1 << 10) {
        format!("{}K", n >> 10)
    } else {
        n.to_string()
    }
}

/// Print a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Print a figure header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
    println!(
        "(sizes scaled by 1/{}; set ADAPTIC_SCALE=1 for paper-scale)\n",
        scale()
    );
}

/// One measured benchmark for [`bench_json`].
#[derive(Debug, Clone)]
pub struct BenchRecord {
    pub name: String,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
    /// Mean-over-mean speedup relative to a baseline record (set via
    /// [`BenchRecord::vs`]); `None` marks a baseline itself.
    pub speedup: Option<f64>,
}

impl BenchRecord {
    /// Tag this record with its speedup over `baseline` (baseline mean /
    /// this mean, so > 1 means faster than the baseline).
    pub fn vs(mut self, baseline: &BenchRecord) -> BenchRecord {
        self.speedup = Some(baseline.mean_ns / self.mean_ns);
        self
    }
}

/// Time `samples` invocations of `f` (after one warm-up call) and return
/// min/mean/max wall-clock nanoseconds as a [`BenchRecord`].
pub fn measure(name: &str, samples: usize, mut f: impl FnMut()) -> BenchRecord {
    assert!(samples > 0, "at least one sample");
    f();
    let (mut min, mut max, mut sum) = (f64::INFINITY, 0.0f64, 0.0f64);
    for _ in 0..samples {
        let t = Instant::now();
        f();
        let ns = t.elapsed().as_nanos() as f64;
        min = min.min(ns);
        max = max.max(ns);
        sum += ns;
    }
    BenchRecord {
        name: name.to_string(),
        mean_ns: sum / samples as f64,
        min_ns: min,
        max_ns: max,
        speedup: None,
    }
}

/// Current git revision, or `"unknown"` outside a repository.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Render bench records as the machine-readable JSON document written by
/// [`bench_json`] (no serde in the dependency set, so it is assembled by
/// hand; names must be plain ASCII without quotes or backslashes).
pub fn render_bench_json(stem: &str, rev: &str, records: &[BenchRecord]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"bench\": \"{stem}\",\n"));
    s.push_str(&format!("  \"git_rev\": \"{rev}\",\n"));
    s.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        debug_assert!(
            !r.name.contains(['"', '\\']),
            "bench names must not need JSON escaping"
        );
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}",
            r.name, r.mean_ns, r.min_ns, r.max_ns
        ));
        if let Some(sp) = r.speedup {
            s.push_str(&format!(", \"speedup\": {sp:.3}"));
        }
        s.push('}');
        if i + 1 < records.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    s
}

/// Write `records` to `<dir>/BENCH_<stem>.json` and return the path.
///
/// # Errors
///
/// Propagates filesystem errors from creating the directory or writing.
pub fn bench_json_to(dir: &Path, stem: &str, records: &[BenchRecord]) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{stem}.json"));
    std::fs::write(&path, render_bench_json(stem, &git_rev(), records))?;
    Ok(path)
}

/// Write `records` to `results/BENCH_<stem>.json` at the workspace root,
/// alongside the prose `results/*.txt` records.
///
/// # Errors
///
/// Propagates filesystem errors from creating the directory or writing.
pub fn bench_json(stem: &str, records: &[BenchRecord]) -> std::io::Result<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    bench_json_to(&dir, stem, records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(size_label(1 << 10), "1K");
        assert_eq!(size_label(4 << 20), "4M");
        assert_eq!(size_label(1000), "1000");
    }

    #[test]
    fn data_is_deterministic_and_bounded() {
        let a = data(100, 1);
        let b = data(100, 1);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-1.0..1.0).contains(v)));
        assert_ne!(a, data(100, 2));
    }

    #[test]
    fn scale_is_positive() {
        assert!(scale() >= 1);
    }

    #[test]
    fn sweep_opts_bundle_is_consistent() {
        let opts = sweep_opts();
        assert_eq!(opts.mode, sweep_mode());
        assert!(opts.policy.workers() >= 1);
    }

    #[test]
    fn measure_reports_ordered_bounds() {
        let mut n = 0u64;
        let r = measure("spin", 5, || {
            for i in 0..10_000u64 {
                n = n.wrapping_add(i);
            }
        });
        std::hint::black_box(n);
        assert!(r.min_ns > 0.0);
        assert!(r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns);
        assert!(r.speedup.is_none());
    }

    #[test]
    fn bench_json_renders_and_writes() {
        let base = BenchRecord {
            name: "base".into(),
            mean_ns: 200.0,
            min_ns: 150.0,
            max_ns: 260.0,
            speedup: None,
        };
        let fast = BenchRecord {
            name: "fast".into(),
            mean_ns: 50.0,
            min_ns: 40.0,
            max_ns: 61.0,
            speedup: None,
        }
        .vs(&base);
        assert_eq!(fast.speedup, Some(4.0));

        let doc = render_bench_json("demo", "deadbeef", &[base.clone(), fast.clone()]);
        assert!(doc.contains("\"bench\": \"demo\""));
        assert!(doc.contains("\"git_rev\": \"deadbeef\""));
        assert!(doc.contains("\"name\": \"base\", \"mean_ns\": 200.0"));
        assert!(doc.contains("\"speedup\": 4.000"));

        let dir = std::env::temp_dir().join(format!("bench_json_test_{}", std::process::id()));
        let path = bench_json_to(&dir, "demo", &[base, fast]).unwrap();
        assert_eq!(path.file_name().unwrap(), "BENCH_demo.json");
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert!(on_disk.contains("\"results\": ["));
        std::fs::remove_dir_all(&dir).ok();
    }
}
