//! Shared harness utilities for the figure-reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one figure or table of the
//! paper's evaluation (see `DESIGN.md` for the index and `EXPERIMENTS.md`
//! for recorded results). Sizes are scaled down from the paper's
//! GPU-scale inputs by [`scale`] (override with the `ADAPTIC_SCALE`
//! environment variable; `1` reproduces the paper's sizes at the cost of
//! long simulation times).

use adaptic::RunOptions;
use gpu_sim::{ExecMode, ExecPolicy};

/// Global size divisor for the sweeps (default 4).
pub fn scale() -> usize {
    std::env::var("ADAPTIC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|s| *s >= 1)
        .unwrap_or(4)
}

/// Execution mode used by timing sweeps: sampled execution keeps
/// figure-scale launches tractable while preserving aggregate statistics.
pub fn sweep_mode() -> ExecMode {
    ExecMode::SampledExec(256)
}

/// Execution engine used by the sweeps: deterministic parallel block
/// execution sized to the host by default. Override with the
/// `ADAPTIC_WORKERS` environment variable — `1` forces the serial engine,
/// `n > 1` pins the worker count. Results are identical under every
/// policy; only wall-clock changes.
pub fn sweep_policy() -> ExecPolicy {
    match std::env::var("ADAPTIC_WORKERS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(0) | None => ExecPolicy::auto(),
        Some(1) => ExecPolicy::Serial,
        Some(n) => ExecPolicy::Parallel(n),
    }
}

/// [`sweep_mode`] + [`sweep_policy`] bundled for `run_opts`.
pub fn sweep_opts() -> RunOptions<'static> {
    RunOptions {
        mode: sweep_mode(),
        policy: sweep_policy(),
        ..RunOptions::serial(sweep_mode())
    }
}

/// Deterministic pseudo-random data in [-1, 1).
pub fn data(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
        .collect()
}

/// Human-readable size label (1K, 4M, ...).
pub fn size_label(n: usize) -> String {
    if n >= 1 << 20 && n.is_multiple_of(1 << 20) {
        format!("{}M", n >> 20)
    } else if n >= 1 << 10 && n.is_multiple_of(1 << 10) {
        format!("{}K", n >> 10)
    } else {
        n.to_string()
    }
}

/// Print a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Print a figure header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
    println!(
        "(sizes scaled by 1/{}; set ADAPTIC_SCALE=1 for paper-scale)\n",
        scale()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(size_label(1 << 10), "1K");
        assert_eq!(size_label(4 << 20), "4M");
        assert_eq!(size_label(1000), "1000");
    }

    #[test]
    fn data_is_deterministic_and_bounded() {
        let a = data(100, 1);
        let b = data(100, 1);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-1.0..1.0).contains(v)));
        assert_ne!(a, data(100, 2));
    }

    #[test]
    fn scale_is_positive() {
        assert!(scale() >= 1);
    }

    #[test]
    fn sweep_opts_bundle_is_consistent() {
        let opts = sweep_opts();
        assert_eq!(opts.mode, sweep_mode());
        assert!(opts.policy.workers() >= 1);
    }
}
