//! Criterion benchmark of the execution engines: serial vs. deterministic
//! parallel block execution on a Figure-9-scale TMV launch.
//!
//! Both engines produce bit-identical statistics (see the differential
//! property test in `gpu-sim`); this bench measures host wall-clock only.
//! The expected speedup tracks the host core count — on a single-core
//! runner the parallel engine degrades to the serial path plus scope
//! overhead. Recorded numbers live in `results/parallel_speedup.txt`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use adaptic_baselines::tmv::tmv_with;
use adaptic_bench::data;
use gpu_sim::{DeviceSpec, ExecMode, ExecPolicy};

/// Fig.9-scale shape: 4K rows x 1K cols = 4M elements, 4096 blocks.
const ROWS: usize = 4 << 10;
const COLS: usize = 1 << 10;

fn bench_engines(c: &mut Criterion) {
    let device = DeviceSpec::tesla_c2050();
    let a = data(ROWS * COLS, 1);
    let x = data(COLS, 2);
    let mode = ExecMode::SampledExec(512);

    let mut group = c.benchmark_group("tmv_engine");
    for (label, policy) in [
        ("serial", ExecPolicy::Serial),
        ("parallel_auto", ExecPolicy::auto()),
        ("parallel_4", ExecPolicy::Parallel(4)),
    ] {
        group.bench_function(BenchmarkId::new("sampled", label), |b| {
            b.iter(|| {
                tmv_with(
                    &device,
                    std::hint::black_box(&a),
                    &x,
                    ROWS,
                    COLS,
                    mode,
                    policy,
                    None,
                )
            })
        });
    }
    // Full execution exercises every block — the best case for the
    // parallel engine (most work per launch).
    for (label, policy) in [
        ("serial", ExecPolicy::Serial),
        ("parallel_auto", ExecPolicy::auto()),
    ] {
        group.bench_function(BenchmarkId::new("full", label), |b| {
            b.iter(|| {
                tmv_with(
                    &device,
                    std::hint::black_box(&a),
                    &x,
                    ROWS,
                    COLS,
                    ExecMode::Full,
                    policy,
                    None,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engines
);
criterion_main!(benches);
