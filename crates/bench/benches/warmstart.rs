//! Warm-start benchmark: cold boot (full plan-time compile + first
//! launch) against warm boot (artifact-store hit + learned-state seed +
//! first launch) for a map program and a reduction program.
//!
//! Cold pays bytecode lowering for every segment plus the planner's
//! geometric probe sweep and binary-search boundary refinement (a dense
//! 769-point offline tune here, each probe a full rate-match + cost
//! estimate); warm pays one cheap structure rebuild and a
//! length-prefixed decode. The measured
//! quantity is the paper-relevant one — *time to first useful result* on
//! process boot — so each sample is `compile + KernelManager + first
//! launch`.
//!
//! Results land in `results/BENCH_warmstart.json` (machine-readable, with
//! `speedup` = cold mean / warm mean) and `results/warmstart_speedup.txt`
//! (prose record). The acceptance bar is a ≥ 5x reduction in
//! plan+first-launch time; the bench asserts it.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use adaptic::{
    compile_with_options, compile_with_store, ArtifactStore, CompileOptions, ExecMode, InputAxis,
    KernelManager, RunOptions, StateBinding,
};
use adaptic_apps::programs;
use adaptic_bench::{bench_json, data, measure, BenchRecord};
use gpu_sim::DeviceSpec;
use streamir::graph::Program;

/// First launch executed by every boot sample.
const FIRST_LAUNCH: ExecMode = ExecMode::Full;

/// Plan-time configuration: a thorough offline tune (dense probe sweep)
/// — the cost the artifact store amortizes away.
fn tuned() -> CompileOptions {
    CompileOptions {
        probes: 769,
        ..CompileOptions::default()
    }
}

struct Workload {
    name: &'static str,
    program: Program,
    axis: InputAxis,
    /// First-launch axis value and input length.
    x: i64,
    items: usize,
    state: Vec<StateBinding>,
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "sasum",
            program: programs::sasum().program,
            axis: InputAxis::total_size("N", 256, 1 << 18),
            x: 256,
            items: 256,
            state: Vec::new(),
        },
        Workload {
            name: "dct8x8",
            program: programs::dct8x8().program,
            axis: InputAxis::total_size("N", 64, 1 << 16),
            x: 64,
            items: 64,
            state: Vec::new(),
        },
        Workload {
            name: "black_scholes",
            program: programs::black_scholes().program,
            axis: InputAxis::total_size("N", 16, 1 << 16),
            x: 16,
            items: 3 * 16,
            state: vec![StateBinding::new("Price", "rv", vec![0.02, 0.3])],
        },
    ]
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adaptic_warmstart_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Cold boot: compile from nothing, stand up the manager, run once.
fn cold_boot(w: &Workload, device: &DeviceSpec, input: &[f32]) {
    let compiled = compile_with_options(&w.program, device, &w.axis, tuned()).unwrap();
    let kmu = KernelManager::new(compiled);
    kmu.run(w.x, input, &w.state, RunOptions::serial(FIRST_LAUNCH))
        .unwrap();
}

/// Warm boot: load the plan from the store (a hit skips lowering and the
/// probe sweep), seed the KMU from persisted learned state, run once.
fn warm_boot(w: &Workload, device: &DeviceSpec, input: &[f32], store: &Arc<ArtifactStore>) {
    let compiled = compile_with_store(&w.program, device, &w.axis, tuned(), store).unwrap();
    let kmu = KernelManager::new(compiled).with_artifacts(Arc::clone(store));
    kmu.run(w.x, input, &w.state, RunOptions::serial(FIRST_LAUNCH))
        .unwrap();
}

fn main() {
    let device = DeviceSpec::tesla_c2050();
    let samples = 10;
    let mut records: Vec<BenchRecord> = Vec::new();
    let mut prose = String::from(
        "Warm-start benchmark: cold boot (full plan-time compile + first launch)\n\
         vs warm boot (artifact-store hit + learned-state seed + first launch),\n\
         Tesla C2050 preset, ExecMode::Full first launch.\n\n",
    );

    for w in workloads() {
        let input = data(w.items, 11);
        let dir = fresh_dir(w.name);
        let store = Arc::new(ArtifactStore::new(&dir));

        // Seed the store: one cold compile-with-store writes the plan,
        // one short-lived manager persists learned state.
        {
            let compiled =
                compile_with_store(&w.program, &device, &w.axis, tuned(), &store).unwrap();
            let kmu = KernelManager::new(compiled).with_artifacts(Arc::clone(&store));
            kmu.run(w.x, &input, &w.state, RunOptions::serial(FIRST_LAUNCH))
                .unwrap();
            kmu.persist_learned().unwrap();
        }

        let cold = measure(&format!("warmstart/{}_cold_boot", w.name), samples, || {
            cold_boot(&w, &device, &input)
        });
        let hits_before = store.counters().hits;
        let warm = measure(&format!("warmstart/{}_warm_boot", w.name), samples, || {
            warm_boot(&w, &device, &input, &store)
        })
        .vs(&cold);
        assert!(
            store.counters().hits > hits_before,
            "warm boots must hit the artifact store"
        );

        let speedup = cold.mean_ns / warm.mean_ns;
        println!(
            "{:>28}: cold {:>10.1} us  warm {:>8.1} us  speedup {speedup:>5.1}x",
            w.name,
            cold.mean_ns / 1e3,
            warm.mean_ns / 1e3,
        );
        prose.push_str(&format!(
            "{}: cold {:.1} us, warm {:.1} us -> {speedup:.1}x\n",
            w.name,
            cold.mean_ns / 1e3,
            warm.mean_ns / 1e3,
        ));
        assert!(
            speedup >= 5.0,
            "{}: warm boot must be >= 5x faster than cold, got {speedup:.1}x",
            w.name
        );
        records.push(cold);
        records.push(warm);
        let _ = std::fs::remove_dir_all(&dir);
    }

    let path = bench_json("warmstart", &records).expect("write BENCH_warmstart.json");
    println!("wrote {}", path.display());
    let txt = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/warmstart_speedup.txt");
    std::fs::write(&txt, prose).expect("write warmstart_speedup.txt");
    println!("wrote {}", txt.display());
}
