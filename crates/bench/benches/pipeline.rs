//! Criterion benchmarks of the implementation itself (wall-clock of our
//! compiler + simulator, for regression tracking — the *simulated* device
//! timings live in the figure binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use adaptic::{compile, CompileOptions, InputAxis};
use adaptic_bench::data;
use gpu_sim::{DeviceSpec, ExecMode};
use streamir::interp::Interpreter;
use streamir::parse::parse_program;
use streamir::schedule::rate_match;

const SUM_SRC: &str = r#"pipeline Sum(N) {
    actor Sum(pop N, push 1) {
        acc = 0.0;
        for i in 0..N { acc = acc + pop(); }
        push(acc);
    }
}"#;

fn bench_parse(c: &mut Criterion) {
    c.bench_function("parse_sum_program", |b| {
        b.iter(|| parse_program(std::hint::black_box(SUM_SRC)).unwrap())
    });
}

fn bench_schedule(c: &mut Criterion) {
    let program = parse_program(SUM_SRC).unwrap();
    let fg = program.flatten().unwrap();
    let binds = streamir::graph::bindings(&[("N", 1 << 20)]);
    c.bench_function("rate_match_sum", |b| {
        b.iter(|| rate_match(std::hint::black_box(&fg), &binds).unwrap())
    });
}

fn bench_compile(c: &mut Criterion) {
    let program = parse_program(SUM_SRC).unwrap();
    let device = DeviceSpec::tesla_c2050();
    let axis = InputAxis::total_size("N", 1 << 8, 1 << 22);
    c.bench_function("compile_sum_full_range", |b| {
        b.iter(|| compile(&program, &device, std::hint::black_box(&axis)).unwrap())
    });
    let opts = CompileOptions {
        probes: 9,
        ..CompileOptions::default()
    };
    c.bench_function("compile_sum_coarse_probes", |b| {
        b.iter(|| {
            adaptic::compile_with_options(&program, &device, std::hint::black_box(&axis), opts)
                .unwrap()
        })
    });
}

fn bench_run(c: &mut Criterion) {
    let program = parse_program(SUM_SRC).unwrap();
    let device = DeviceSpec::tesla_c2050();
    let axis = InputAxis::total_size("N", 1 << 8, 1 << 22);
    let compiled = compile(&program, &device, &axis).unwrap();
    let mut group = c.benchmark_group("run_sum");
    for &n in &[1usize << 10, 1 << 14, 1 << 18] {
        let input = data(n, 7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| {
                compiled
                    .run_with(input.len() as i64, input, &[], ExecMode::SampledExec(64))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_interp(c: &mut Criterion) {
    let program = parse_program(SUM_SRC).unwrap();
    let input = data(1 << 14, 9);
    c.bench_function("interpret_sum_16k", |b| {
        b.iter(|| {
            let mut it = Interpreter::new(&program);
            it.bind_param("N", input.len() as i64);
            it.run(std::hint::black_box(&input)).unwrap()
        })
    });
}

fn bench_baseline_kernel(c: &mut Criterion) {
    let device = DeviceSpec::tesla_c2050();
    let x = data(1 << 16, 3);
    let y = data(1 << 16, 4);
    c.bench_function("simulate_cublas_sdot_64k", |b| {
        b.iter(|| {
            adaptic_baselines::blas1::sdot(
                &device,
                std::hint::black_box(&x),
                &y,
                ExecMode::SampledExec(64),
            )
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parse, bench_schedule, bench_compile, bench_run, bench_interp,
        bench_baseline_kernel
);
criterion_main!(benches);
