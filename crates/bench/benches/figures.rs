//! Criterion benches of the end-to-end figure pipelines at small scale —
//! one group per paper experiment, for tracking regressions in the
//! *implementation's* wall-clock (the simulated device times live in the
//! `src/bin/fig*` harnesses).
//!
//! Policy: these harnesses run the way the figure sweeps do in anger —
//! the deterministic parallel engine ([`RunOptions::parallel`]) plus a
//! [`LaunchCache`] created outside the measurement loop, so steady-state
//! iterations exercise the memoized path. Engine choice and caching
//! never change results, only wall-clock; benches that measure the
//! cold simulation path should opt out explicitly.

use criterion::{criterion_group, criterion_main, Criterion};

use adaptic::{compile, CompileOptions, InputAxis, RunOptions, StateBinding};
use adaptic_apps::bicgstab::{self, AdapticBicgstab};
use adaptic_apps::programs::{self, zip2};
use adaptic_bench::data;
use gpu_sim::{DeviceSpec, ExecMode, ExecPolicy, LaunchCache};

fn bench_fig1_tmv_baseline(c: &mut Criterion) {
    let device = DeviceSpec::tesla_c2050();
    let (rows, cols) = (256usize, 256usize);
    let a = data(rows * cols, 1);
    let x = data(cols, 2);
    let cache = LaunchCache::new();
    c.bench_function("fig1_tmv_baseline_256x256", |b| {
        b.iter(|| {
            adaptic_baselines::tmv::tmv_with(
                &device,
                &a,
                &x,
                rows,
                cols,
                ExecMode::SampledExec(32),
                ExecPolicy::auto(),
                Some(&cache),
            )
        })
    });
}

fn bench_fig9_sdot_point(c: &mut Criterion) {
    let device = DeviceSpec::tesla_c2050();
    let bench = programs::sdot();
    let axis = InputAxis::total_size("N", 256, 1 << 16);
    let compiled = compile(&bench.program, &device, &axis).unwrap();
    let n = 1 << 14;
    let input = zip2(&data(n, 3), &data(n, 4));
    let cache = LaunchCache::new();
    c.bench_function("fig9_sdot_adaptic_16k", |b| {
        b.iter(|| {
            compiled
                .run_opts(
                    n as i64,
                    &input,
                    &[],
                    RunOptions::parallel(ExecMode::SampledExec(32)),
                    Some(&cache),
                )
                .unwrap()
        })
    });
}

fn bench_fig10_tmv_adaptic_point(c: &mut Criterion) {
    let device = DeviceSpec::tesla_c2050();
    let total: i64 = 1 << 16;
    let axis = InputAxis::new("rows", 4, total / 4, move |rows| {
        streamir::graph::bindings(&[("rows", rows), ("cols", total / rows)])
    })
    .with_items(move |_| total);
    let compiled = compile(&programs::tmv().program, &device, &axis).unwrap();
    let rows = 256usize;
    let cols = total as usize / rows;
    let a = data(total as usize, 5);
    let x = data(cols, 6);
    let cache = LaunchCache::new();
    c.bench_function("fig10_tmv_adaptic_256rows", |b| {
        b.iter(|| {
            compiled
                .run_opts(
                    rows as i64,
                    &a,
                    &[StateBinding::new("RowDot", "x", x.clone())],
                    RunOptions::parallel(ExecMode::SampledExec(32)),
                    Some(&cache),
                )
                .unwrap()
        })
    });
}

fn bench_fig11_bicgstab_iteration(c: &mut Criterion) {
    let device = DeviceSpec::tesla_c2050();
    let n = 128usize;
    let (a, b_vec) = bicgstab::synth_system(n, 3);
    let solver = AdapticBicgstab::compile(&device, 64, 1024, CompileOptions::default()).unwrap();
    c.bench_function("fig11_bicgstab_128_1iter", |bch| {
        bch.iter(|| {
            // Iterative solver: each launch consumes the previous output,
            // so only the engine policy applies (no launch cache).
            solver
                .solve_opts(
                    &a,
                    &b_vec,
                    n,
                    1,
                    RunOptions::parallel(ExecMode::SampledExec(32)),
                )
                .unwrap()
        })
    });
}

fn bench_variant_selection(c: &mut Criterion) {
    // The runtime kernel-management decision itself must be cheap: the
    // paper hides it under the host-to-device transfer.
    let device = DeviceSpec::tesla_c2050();
    let axis = InputAxis::total_size("N", 256, 1 << 22);
    let compiled = compile(&programs::sasum().program, &device, &axis).unwrap();
    c.bench_function("runtime_variant_lookup", |b| {
        b.iter(|| compiled.variant_for(std::hint::black_box(123_456)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1_tmv_baseline, bench_fig9_sdot_point, bench_fig10_tmv_adaptic_point,
        bench_fig11_bicgstab_iteration, bench_variant_selection
);
criterion_main!(benches);
