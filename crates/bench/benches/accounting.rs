//! Criterion benchmark of the warp-accounting hot path.
//!
//! Every figure sweep funnels millions of simulated accesses through the
//! per-block recorder, so its cost dominates reproduction wall-clock.
//! Three kernels stress the distinct accounting paths:
//!
//! * `coalesced` — unit-stride global loads/stores (the common case);
//! * `scattered` — large-stride loads that defeat coalescing (many
//!   transactions per warp instruction);
//! * `shared_heavy` — staging plus multi-round shared-memory traffic with
//!   barriers (bank-conflict accounting).
//!
//! All three run under full recording (`ExecMode::Full`) on the serial
//! engine, isolating recorder cost from thread fan-out. Before/after
//! numbers for the streaming accounting engine are recorded in
//! `results/accounting_speedup.txt`; the trailing JSON pass writes a
//! machine-readable copy of the latest run to
//! `results/BENCH_accounting.json`.

use adaptic_bench::{bench_json, measure};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gpu_sim::{
    launch_with_policy, BlockCtx, BufId, DeviceSpec, ExecMode, ExecPolicy, GlobalMem, Kernel,
    LaunchConfig,
};

const GRID: u32 = 512;
const BLOCK_DIM: u32 = 256;

/// b[i] = a[i] + 1: unit-stride, fully coalesced sweep.
struct Coalesced {
    a: BufId,
    b: BufId,
    n: usize,
}

impl Kernel for Coalesced {
    fn name(&self) -> &str {
        "coalesced"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new(GRID, BLOCK_DIM, 0)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        for t in ctx.threads() {
            let i = (block * BLOCK_DIM + t) as usize % self.n;
            let v = ctx.ld_global(0, t, self.a, i);
            ctx.st_global(1, t, self.b, i, v + 1.0);
            ctx.compute(t, 1);
            ctx.count_flops(1);
        }
    }
}

/// Strided gather: every lane lands in its own memory segment.
struct Scattered {
    a: BufId,
    b: BufId,
    n: usize,
}

impl Kernel for Scattered {
    fn name(&self) -> &str {
        "scattered"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new(GRID, BLOCK_DIM, 0)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        for t in ctx.threads() {
            let gid = (block * BLOCK_DIM + t) as usize;
            let mut acc = 0.0;
            for r in 0..4u32 {
                let idx = (gid * 97 + r as usize * 331) % self.n;
                acc += ctx.ld_global(r, t, self.a, idx);
                ctx.compute(t, 1);
                ctx.count_flops(1);
            }
            ctx.st_global(4, t, self.b, gid % self.n, acc);
        }
    }
}

/// Stage into shared memory, then several neighbor-exchange rounds.
struct SharedHeavy {
    a: BufId,
    b: BufId,
    n: usize,
}

impl Kernel for SharedHeavy {
    fn name(&self) -> &str {
        "shared_heavy"
    }

    fn config(&self) -> LaunchConfig {
        LaunchConfig::new(GRID, BLOCK_DIM, BLOCK_DIM)
    }

    fn run_block(&self, block: u32, ctx: &mut BlockCtx<'_>) {
        let bd = BLOCK_DIM as usize;
        for t in ctx.threads() {
            let gid = (block * BLOCK_DIM + t) as usize % self.n;
            let v = ctx.ld_global(0, t, self.a, gid);
            ctx.st_shared(1, t, t as usize, v);
        }
        ctx.sync();
        for r in 0..6u32 {
            for t in ctx.threads() {
                let j = (t as usize + (1 << r)) % bd;
                let v = ctx.ld_shared(2 + r, t, t as usize) + ctx.ld_shared(8 + r, t, j);
                ctx.st_shared(14 + r, t, t as usize, v);
                ctx.compute(t, 1);
                ctx.count_flops(1);
            }
            ctx.sync();
        }
        for t in ctx.threads() {
            let gid = (block * BLOCK_DIM + t) as usize % self.n;
            let v = ctx.ld_shared(20, t, t as usize);
            ctx.st_global(21, t, self.b, gid, v);
        }
    }
}

fn bench_accounting(c: &mut Criterion) {
    let device = DeviceSpec::tesla_c2050();
    let n = (GRID * BLOCK_DIM) as usize;

    let mut group = c.benchmark_group("accounting");
    let run = |kernel: &(dyn Kernel + Sync), mem: &mut GlobalMem| {
        launch_with_policy(&device, mem, kernel, ExecMode::Full, ExecPolicy::Serial)
    };

    {
        let mut mem = GlobalMem::new();
        let a = mem.alloc_from(&vec![1.0; n]);
        let b = mem.alloc(n);
        let k = Coalesced { a, b, n };
        group.bench_function(BenchmarkId::new("full", "coalesced"), |bch| {
            bch.iter(|| run(std::hint::black_box(&k), &mut mem))
        });
    }
    {
        let mut mem = GlobalMem::new();
        let a = mem.alloc_from(&vec![1.0; n]);
        let b = mem.alloc(n);
        let k = Scattered { a, b, n };
        group.bench_function(BenchmarkId::new("full", "scattered"), |bch| {
            bch.iter(|| run(std::hint::black_box(&k), &mut mem))
        });
    }
    {
        let mut mem = GlobalMem::new();
        let a = mem.alloc_from(&vec![1.0; n]);
        let b = mem.alloc(n);
        let k = SharedHeavy { a, b, n };
        group.bench_function(BenchmarkId::new("full", "shared_heavy"), |bch| {
            bch.iter(|| run(std::hint::black_box(&k), &mut mem))
        });
    }
    // Launch-name identity: the engine memoizes kernel names, so repeated
    // launches of one kernel must hand back the *same* `Arc<str>` (no
    // per-launch allocation on the stats path).
    {
        let mut mem = GlobalMem::new();
        let a = mem.alloc_from(&vec![1.0; n]);
        let b = mem.alloc(n);
        let k = Coalesced { a, b, n };
        let first = run(&k, &mut mem);
        let second = run(&k, &mut mem);
        assert!(
            std::sync::Arc::ptr_eq(&first.name, &second.name),
            "kernel name must be interned, not re-allocated per launch"
        );
    }
    group.finish();
}

/// Re-measure the three kernels with plain wall-clock timing and write
/// `results/BENCH_accounting.json` (speedups are relative to the
/// coalesced sweep, the recorder's best case).
fn emit_json(_c: &mut Criterion) {
    let device = DeviceSpec::tesla_c2050();
    let n = (GRID * BLOCK_DIM) as usize;

    let mut mem = GlobalMem::new();
    let a = mem.alloc_from(&vec![1.0; n]);
    let b = mem.alloc(n);
    let run = |kernel: &(dyn Kernel + Sync), mem: &mut GlobalMem| {
        launch_with_policy(&device, mem, kernel, ExecMode::Full, ExecPolicy::Serial);
    };

    let coalesced = Coalesced { a, b, n };
    let scattered = Scattered { a, b, n };
    let shared = SharedHeavy { a, b, n };
    let base = measure("accounting/full/coalesced", 10, || {
        run(&coalesced, &mut mem)
    });
    let records = [
        base.clone(),
        measure("accounting/full/scattered", 10, || {
            run(&scattered, &mut mem)
        })
        .vs(&base),
        measure("accounting/full/shared_heavy", 10, || {
            run(&shared, &mut mem)
        })
        .vs(&base),
    ];
    let path = bench_json("accounting", &records).expect("write BENCH_accounting.json");
    println!("wrote {}", path.display());
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_accounting, emit_json
);
criterion_main!(benches);
