//! Criterion benchmark of work-body evaluation: AST walking vs bytecode.
//!
//! Every simulated thread of every launch ultimately evaluates an actor's
//! work body, so the evaluator is the inner loop of the whole
//! reproduction. Two levels are measured on a Horner-style polynomial
//! map body (a 16-iteration loop per element):
//!
//! * `ast_walk` / `bytecode` — the raw evaluators head-to-head over many
//!   firings: a fresh `HashMap` of locals plus recursive AST walk per
//!   firing, against one pooled register [`Frame`] reset per firing and a
//!   flat opcode loop.
//! * `pipeline_*` — the same body through the full compiled pipeline
//!   (`ExecMode::Full`, every element executed), flipping only
//!   [`RunOptions::with_ast_oracle`] so the two runs share planning,
//!   memory movement, and accounting.
//!
//! Before/after numbers are recorded in `results/interp_speedup.txt`.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, Criterion};

use adaptic::bytecode::{self, compile_body, Frame};
use adaptic::exec_ir::{exec_body, VecIo};
use adaptic::{compile, InputAxis, RunOptions};
use gpu_sim::{DeviceSpec, ExecMode};
use streamir::parse::parse_program;

const HORNER_SRC: &str = "pipeline P(N) {
    actor H(pop 1, push 1) {
        x = pop();
        acc = 0.0;
        for i in 0..16 { acc = acc * x + 0.5; }
        push(acc * 0.001);
    }
}";

const FIRINGS: usize = 4096;

fn horner_input(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((i * 31) % 97) as f32 / 97.0 - 0.5)
        .collect()
}

fn bench_evaluators(c: &mut Criterion) {
    let program = parse_program(HORNER_SRC).unwrap();
    let body = program.actor("H").unwrap().work.body.clone();
    let binds = streamir::graph::bindings(&[("N", FIRINGS as i64)]);
    let input = horner_input(FIRINGS);

    let mut io = VecIo {
        input: input.clone(),
        ..VecIo::default()
    };
    c.bench_function("interp/ast_walk_4k_firings", |b| {
        b.iter(|| {
            io.cursor = 0;
            io.output.clear();
            for _ in 0..FIRINGS {
                let mut locals = HashMap::new();
                exec_body(&body, &mut locals, &binds, &mut io).unwrap();
            }
            io.output.len()
        })
    });

    let prog = compile_body(&body, &binds, &[]).unwrap();
    let proto = prog.bind(&binds).unwrap();
    let mut frame = Frame::default();
    frame.fit(&prog);
    let mut io = VecIo {
        input,
        ..VecIo::default()
    };
    c.bench_function("interp/bytecode_4k_firings", |b| {
        b.iter(|| {
            io.cursor = 0;
            io.output.clear();
            for _ in 0..FIRINGS {
                frame.reset(&proto);
                bytecode::eval(&prog, &mut frame, &mut io);
            }
            io.output.len()
        })
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let device = DeviceSpec::tesla_c2050();
    let program = parse_program(HORNER_SRC).unwrap();
    let axis = InputAxis::total_size("N", 256, 1 << 16);
    let compiled = compile(&program, &device, &axis).unwrap();
    let n = 1usize << 14;
    let input = horner_input(n);

    let fast = RunOptions::serial(ExecMode::Full);
    c.bench_function("interp/pipeline_bytecode_16k", |b| {
        b.iter(|| {
            compiled
                .run_opts(n as i64, &input, &[], fast, None)
                .unwrap()
        })
    });
    let oracle = fast.with_ast_oracle(true);
    c.bench_function("interp/pipeline_ast_16k", |b| {
        b.iter(|| {
            compiled
                .run_opts(n as i64, &input, &[], oracle, None)
                .unwrap()
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_evaluators, bench_pipeline
);
criterion_main!(benches);
