//! Criterion benchmark of work-body evaluation: AST walking vs bytecode
//! vs warp-batched bytecode.
//!
//! Every simulated thread of every launch ultimately evaluates an actor's
//! work body, so the evaluator is the inner loop of the whole
//! reproduction. Two levels are measured on a Horner-style polynomial
//! map body (a 16-iteration loop per element):
//!
//! * `ast_walk` / `bytecode` / `warp` — the raw evaluators head-to-head
//!   over many firings: a fresh `HashMap` of locals plus recursive AST
//!   walk per firing, against one pooled register [`Frame`] reset per
//!   firing and a flat opcode loop, against one [`WarpFrame`] evaluating
//!   32 lanes per opcode dispatch.
//! * `pipeline_*` — the same body through the full compiled pipeline
//!   (`ExecMode::Full`, every element executed), flipping only
//!   [`RunOptions::with_backend`] so the three runs share planning,
//!   memory movement, and accounting.
//!
//! Before/after numbers are recorded in `results/interp_speedup.txt` and
//! `results/warp_speedup.txt`; a machine-readable copy of the latest run
//! is written to `results/BENCH_interp.json` by the trailing JSON pass.
//!
//! [`WarpFrame`]: adaptic::warp::WarpFrame

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, Criterion};

use adaptic::bytecode::{self, compile_body, Frame};
use adaptic::exec_ir::{exec_body, VecIo};
use adaptic::warp::{self, full_mask, VecWarpIo, WarpFrame};
use adaptic::{compile, EvalBackend, InputAxis, RunOptions};
use adaptic_bench::{bench_json, measure};
use gpu_sim::{DeviceSpec, ExecMode};
use streamir::parse::parse_program;

const HORNER_SRC: &str = "pipeline P(N) {
    actor H(pop 1, push 1) {
        x = pop();
        acc = 0.0;
        for i in 0..16 { acc = acc * x + 0.5; }
        push(acc * 0.001);
    }
}";

const FIRINGS: usize = 4096;
const LANES: usize = 32;

fn horner_input(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((i * 31) % 97) as f32 / 97.0 - 0.5)
        .collect()
}

/// Evaluate `FIRINGS` firings scalar-style: one frame, one firing at a
/// time.
fn run_scalar(
    prog: &bytecode::Program,
    proto: &[streamir::value::Value],
    frame: &mut Frame,
    io: &mut VecIo,
) {
    io.cursor = 0;
    io.output.clear();
    for _ in 0..FIRINGS {
        frame.reset(proto);
        bytecode::eval(prog, frame, io);
    }
}

/// Evaluate `FIRINGS` firings warp-style: 32 lanes per eval call.
fn run_warp(
    prog: &bytecode::Program,
    proto: &[streamir::value::Value],
    wf: &mut WarpFrame,
    io: &mut VecWarpIo,
) {
    let mask = full_mask(LANES);
    for round in 0..FIRINGS / LANES {
        let base = round * LANES;
        for l in 0..LANES {
            io.cursor[l] = base + l;
            io.out_pos[l] = base + l;
        }
        wf.reset(proto);
        warp::eval(prog, wf, mask, io);
    }
}

fn bench_evaluators(c: &mut Criterion) {
    let program = parse_program(HORNER_SRC).unwrap();
    let body = program.actor("H").unwrap().work.body.clone();
    let binds = streamir::graph::bindings(&[("N", FIRINGS as i64)]);
    let input = horner_input(FIRINGS);

    let mut io = VecIo {
        input: input.clone(),
        ..VecIo::default()
    };
    c.bench_function("interp/ast_walk_4k_firings", |b| {
        b.iter(|| {
            io.cursor = 0;
            io.output.clear();
            for _ in 0..FIRINGS {
                let mut locals = HashMap::new();
                exec_body(&body, &mut locals, &binds, &mut io).unwrap();
            }
            io.output.len()
        })
    });

    let prog = compile_body(&body, &binds, &[]).unwrap();
    let proto = prog.bind(&binds).unwrap();
    let mut frame = Frame::default();
    frame.fit(&prog);
    let mut io = VecIo {
        input: input.clone(),
        ..VecIo::default()
    };
    c.bench_function("interp/bytecode_4k_firings", |b| {
        b.iter(|| {
            run_scalar(&prog, &proto, &mut frame, &mut io);
            io.output.len()
        })
    });

    let mut wf = WarpFrame::default();
    wf.fit(&prog, LANES);
    let mut wio = VecWarpIo {
        input,
        cursor: vec![0; LANES],
        output: vec![0.0; FIRINGS],
        out_pos: vec![0; LANES],
        state: HashMap::new(),
    };
    c.bench_function("interp/warp_4k_firings", |b| {
        b.iter(|| {
            run_warp(&prog, &proto, &mut wf, &mut wio);
            wio.output.len()
        })
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let device = DeviceSpec::tesla_c2050();
    let program = parse_program(HORNER_SRC).unwrap();
    let axis = InputAxis::total_size("N", 256, 1 << 16);
    let compiled = compile(&program, &device, &axis).unwrap();
    let n = 1usize << 14;
    let input = horner_input(n);

    let warp = RunOptions::serial(ExecMode::Full);
    c.bench_function("interp/pipeline_warp_16k", |b| {
        b.iter(|| {
            compiled
                .run_opts(n as i64, &input, &[], warp, None)
                .unwrap()
        })
    });
    let scalar = warp.with_backend(EvalBackend::Scalar);
    c.bench_function("interp/pipeline_bytecode_16k", |b| {
        b.iter(|| {
            compiled
                .run_opts(n as i64, &input, &[], scalar, None)
                .unwrap()
        })
    });
    let oracle = warp.with_backend(EvalBackend::Ast);
    c.bench_function("interp/pipeline_ast_16k", |b| {
        b.iter(|| {
            compiled
                .run_opts(n as i64, &input, &[], oracle, None)
                .unwrap()
        })
    });
}

/// Re-measure the same workloads with plain wall-clock timing and write
/// `results/BENCH_interp.json` (name, min/mean/max ns, speedup vs the
/// matching baseline, git rev) for machines to read.
fn emit_json(_c: &mut Criterion) {
    let program = parse_program(HORNER_SRC).unwrap();
    let body = program.actor("H").unwrap().work.body.clone();
    let binds = streamir::graph::bindings(&[("N", FIRINGS as i64)]);
    let input = horner_input(FIRINGS);

    let mut io = VecIo {
        input: input.clone(),
        ..VecIo::default()
    };
    let ast = measure("interp/ast_walk_4k_firings", 10, || {
        io.cursor = 0;
        io.output.clear();
        for _ in 0..FIRINGS {
            let mut locals = HashMap::new();
            exec_body(&body, &mut locals, &binds, &mut io).unwrap();
        }
    });

    let prog = compile_body(&body, &binds, &[]).unwrap();
    let proto = prog.bind(&binds).unwrap();
    let mut frame = Frame::default();
    frame.fit(&prog);
    let mut sio = VecIo {
        input: input.clone(),
        ..VecIo::default()
    };
    let scalar = measure("interp/bytecode_4k_firings", 10, || {
        run_scalar(&prog, &proto, &mut frame, &mut sio)
    })
    .vs(&ast);

    let mut wf = WarpFrame::default();
    wf.fit(&prog, LANES);
    let mut wio = VecWarpIo {
        input,
        cursor: vec![0; LANES],
        output: vec![0.0; FIRINGS],
        out_pos: vec![0; LANES],
        state: HashMap::new(),
    };
    let warp_raw = measure("interp/warp_4k_firings", 10, || {
        run_warp(&prog, &proto, &mut wf, &mut wio)
    })
    .vs(&scalar);

    let device = DeviceSpec::tesla_c2050();
    let axis = InputAxis::total_size("N", 256, 1 << 16);
    let compiled = compile(&program, &device, &axis).unwrap();
    let n = 1usize << 14;
    let pinput = horner_input(n);
    let run = |opts: RunOptions<'static>| {
        compiled
            .run_opts(n as i64, &pinput, &[], opts, None)
            .unwrap()
    };
    let full = RunOptions::serial(ExecMode::Full);
    let p_ast = measure("interp/pipeline_ast_16k", 5, || {
        run(full.with_backend(EvalBackend::Ast));
    });
    let p_scalar = measure("interp/pipeline_bytecode_16k", 5, || {
        run(full.with_backend(EvalBackend::Scalar));
    })
    .vs(&p_ast);
    let p_warp = measure("interp/pipeline_warp_16k", 5, || {
        run(full);
    })
    .vs(&p_scalar);

    let path = bench_json("interp", &[ast, scalar, warp_raw, p_ast, p_scalar, p_warp])
        .expect("write BENCH_interp.json");
    println!("wrote {}", path.display());
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_evaluators, bench_pipeline, emit_json
);
criterion_main!(benches);
