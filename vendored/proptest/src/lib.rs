//! Offline, API-compatible subset of [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no route to a crates registry, so the real
//! proptest cannot be downloaded. This vendored stand-in implements exactly
//! the surface this workspace uses:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * range strategies over the primitive integer and float types,
//! * [`collection::vec`], [`sample::select`], [`arbitrary::any`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Semantics differ from real proptest in one deliberate way: there is no
//! shrinking. Inputs are drawn from a deterministic per-test RNG (seeded
//! from the test's module path and name), so failures are reproducible
//! run-to-run without a persistence file.

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64: tiny, deterministic, good-enough distribution for test
    /// input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic RNG for one named test: the seed is a hash of the
        /// test's full path, so every run of the same test sees the same
        /// input sequence.
        pub fn for_test(name: &str) -> TestRng {
            let mut seed = 0xcbf29ce484222325u64; // FNV offset basis
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100000001b3);
            }
            TestRng { state: seed }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type. The stub equivalent of
    /// proptest's `Strategy`; `sample` replaces `new_tree` + simplification.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident/$i:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/0, B/1);
        (A/0, B/1, C/2);
        (A/0, B/1, C/2, D/3);
        (A/0, B/1, C/2, D/3, E/4);
    }

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let f = rng.next_f64() as $t;
                    self.start + f * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// Strategy over a type's whole domain (`any::<bool>()` etc.).
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length distribution for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a random length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing uniformly from a fixed set of options.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// `prop::sample::select(vec![..])`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty set");
        Select { options }
    }
}

/// Run each property as `config.cases` random cases.
///
/// Supports the two forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     /// doc
///     #[test]
///     fn prop(x in 0u32..10, v in proptest::collection::vec(0f32..1.0, 1..8)) { .. }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)
     $( $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// Reject the current case when its inputs don't satisfy a precondition.
/// The stub skips to the next case instead of drawing a replacement, so a
/// property whose assumption mostly fails runs fewer effective cases.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// `assert!` under a proptest-compatible name (no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirror of real proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("x");
        let mut b = crate::test_runner::TestRng::for_test("x");
        let mut c = crate::test_runner::TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Ranges respect their bounds; vec lengths respect theirs.
        #[test]
        fn ranges_in_bounds(
            x in -5i64..7,
            y in 1u32..3,
            f in 0.0f64..1.0,
            v in crate::collection::vec(0u64..10, 1..4),
            pick in prop::sample::select(vec![2usize, 4, 8]),
            b in any::<bool>(),
        ) {
            prop_assert!((-5..7).contains(&x));
            prop_assert!((1..3).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|e| *e < 10));
            prop_assert!([2usize, 4, 8].contains(&pick));
            let _ = b;
        }
    }
}
