//! Offline, API-compatible subset of [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no route to a crates registry, so the real
//! criterion cannot be downloaded. This vendored stand-in keeps the
//! workspace's benches compiling and *measuring*: each benchmark runs a
//! warm-up pass plus `sample_size` timed samples of the routine and prints
//! min/mean/max wall-clock per iteration. There are no plots, no
//! statistical analysis, and no baseline persistence — just honest timings
//! on stdout, which is what the repo's `results/` records consume.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Top-level benchmark driver (stub of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    /// Smoke mode (`cargo bench ... -- --test`, like real criterion):
    /// run every routine exactly once to prove it works, skip the timed
    /// samples and the report.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

/// One measured sample set, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
struct Measurement {
    min: f64,
    mean: f64,
    max: f64,
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark a routine under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.test_mode {
            smoke(id, &mut f);
            return self;
        }
        let m = run_bench(self.sample_size, &mut f);
        report(id, m);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// One untimed pass (smoke mode).
fn smoke<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    println!("Testing {id}: ok");
}

fn run_bench<F: FnMut(&mut Bencher)>(samples: usize, f: &mut F) -> Measurement {
    // Warm-up: one untimed pass.
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters > 0 {
            per_iter.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
        }
    }
    let n = per_iter.len().max(1) as f64;
    let mean = per_iter.iter().sum::<f64>() / n;
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().copied().fold(0.0, f64::max);
    Measurement {
        min: if min.is_finite() { min } else { 0.0 },
        mean,
        max,
    }
}

fn report(id: &str, m: Measurement) {
    println!(
        "{id:<48} time: [{} {} {}]",
        fmt_ns(m.min),
        fmt_ns(m.mean),
        fmt_ns(m.max)
    );
}

/// Hands the routine to the measurement loop (stub of `criterion::Bencher`).
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, keeping its output alive to prevent the optimizer
    /// from deleting the work.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        black_box(out);
    }
}

/// Identifier for a parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/function_id/parameter`-style id.
    pub fn new<D: Display>(function_id: &str, parameter: D) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter<D: Display>(parameter: D) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named set of related benchmarks (stub of criterion's group).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a routine that consumes a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full_id = format!("{}/{}", self.name, id.id);
        let mut g = |b: &mut Bencher| f(b, input);
        if self.criterion.test_mode {
            smoke(&full_id, &mut g);
            return self;
        }
        let m = run_bench(self.criterion.sample_size, &mut g);
        report(&full_id, m);
        self
    }

    /// Benchmark a routine under `id` within the group. Accepts both a
    /// plain `&str` and a [`BenchmarkId`], like real criterion.
    pub fn bench_function<ID: Display, F>(&mut self, id: ID, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{id}", self.name);
        if self.criterion.test_mode {
            smoke(&full_id, &mut f);
            return self;
        }
        let m = run_bench(self.criterion.sample_size, &mut f);
        report(&full_id, m);
        self
    }

    /// Finish the group (no-op beyond dropping it).
    pub fn finish(self) {}
}

/// Define a benchmark group function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A driver with the given knobs, independent of the process args
    /// (the test harness's own flags must not flip smoke mode).
    fn criterion(sample_size: usize, test_mode: bool) -> Criterion {
        Criterion {
            sample_size,
            test_mode,
        }
    }

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = criterion(3, false);
        let mut ran = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                42u64
            })
        });
        // Warm-up + 3 samples.
        assert_eq!(ran, 4);
    }

    #[test]
    fn test_mode_runs_each_routine_once() {
        let mut c = criterion(20, true);
        let mut ran = 0u32;
        c.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert_eq!(ran, 1);
        let mut group_ran = 0u32;
        let mut group = c.benchmark_group("g");
        group.bench_function("noop", |b| {
            b.iter(|| {
                group_ran += 1;
            })
        });
        group.finish();
        assert_eq!(group_ran, 1);
    }

    #[test]
    fn groups_and_ids_work() {
        let mut c = criterion(2, false);
        let mut group = c.benchmark_group("g");
        let input = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::from_parameter(3), &input, |b, input| {
            b.iter(|| input.iter().sum::<u64>())
        });
        group.finish();
        assert_eq!(BenchmarkId::new("f", 7).id, "f/7");
    }
}
